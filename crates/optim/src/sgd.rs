use crate::OptimError;
use apt_nn::{Network, Param, ParamKind};
use apt_quant::RoundingMode;
use apt_tensor::{ops, rng as trng, Tensor};
use rand::rngs::StdRng;

/// SGD hyper-parameters (paper §IV: momentum 0.9, weight decay 1e-4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdConfig {
    /// Momentum coefficient µ (0 disables the velocity buffer).
    pub momentum: f32,
    /// L2 weight decay λ, applied to [`ParamKind::Weight`] tensors only
    /// (the usual convention — BN affine and biases are not decayed).
    pub weight_decay: f32,
    /// Rounding mode for quantised parameter updates (paper: truncation,
    /// Eq. 3).
    pub rounding: RoundingMode,
    /// Per-tensor gradient-norm clipping threshold (`None` disables).
    /// Clipping rescales a gradient whose L2 norm exceeds the threshold —
    /// the usual guard against the loss spikes small-batch edge training
    /// is prone to. Applied *before* weight decay and momentum.
    pub clip_grad_norm: Option<f32>,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            momentum: 0.9,
            weight_decay: 1e-4,
            rounding: RoundingMode::Truncate,
            clip_grad_norm: None,
        }
    }
}

/// Aggregate statistics of one optimisation step across all parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StepStats {
    /// Quantised elements whose update underflowed (Eq. 3 quantised to 0).
    pub underflowed: usize,
    /// Quantised elements that triggered range expansion.
    pub expanded: usize,
    /// Quantised elements left on a grid rail after the step (integer
    /// saturation; see [`apt_quant::UpdateStats::saturated`]).
    pub saturated: usize,
    /// Total quantised elements updated.
    pub quantized_total: usize,
    /// Parameters (tensors) visited.
    pub params: usize,
}

impl StepStats {
    /// Fraction of quantised elements that underflowed this step.
    pub fn underflow_rate(&self) -> f64 {
        if self.quantized_total == 0 {
            0.0
        } else {
            self.underflowed as f64 / self.quantized_total as f64
        }
    }
}

/// Stochastic gradient descent with momentum and weight decay, aware of
/// quantised parameter stores.
///
/// The velocity buffer `v ← µ·v + (g + λ·w)` is kept in fp32 on every
/// store kind — it is optimiser state, not model state, and the paper's
/// memory figure (Fig. 5) counts the *model* representation. The update
/// actually applied to a quantised store still goes through Eq. 3, which
/// executes directly against the bit-packed (or `i8`/`i16`-tiered)
/// physical code store — no i64 shadow copy of the codes is materialised
/// for the step, so velocity cannot smuggle sub-ε changes into the weights
/// and the step does not inflate the resident footprint beyond the fp32
/// buffers it owns. Once momentum allocates velocity, those `4·N` bytes
/// show up in [`Param::resident_bytes`] / `Network::resident_bytes`.
#[derive(Debug)]
pub struct Sgd {
    cfg: SgdConfig,
    seed: u64,
    steps: u64,
    /// Transient rounding-stream salt, XORed into the seed (see
    /// [`Sgd::reroll_rounding`]). Deliberately **not** part of [`SgdState`]:
    /// it exists only as a recovery measure within a live process, and a
    /// resumed run restarts it at 0 so checkpoint payloads stay stable.
    salt: u64,
}

/// Serialisable SGD progress. Velocity buffers live on the network's
/// parameters (checkpointed alongside them); the only state owned by the
/// optimiser itself is the step counter, from which the per-step stochastic
/// rounding stream is re-derived — so restoring the counter restores the
/// stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SgdState {
    /// Number of completed optimisation steps.
    pub steps: u64,
}

impl Sgd {
    /// Creates an SGD optimiser; `seed` drives stochastic rounding (unused
    /// by the default truncation mode, but kept so runs are reproducible
    /// under every [`RoundingMode`]).
    pub fn new(cfg: SgdConfig, seed: u64) -> Self {
        Sgd {
            cfg,
            seed,
            steps: 0,
            salt: 0,
        }
    }

    /// Re-randomises the stochastic-rounding stream by folding `salt` into
    /// the seed for every subsequent step.
    ///
    /// This is the middle rung of the trainer's self-healing ladder: when a
    /// step keeps tripping the integrity guard, drawing a fresh rounding
    /// stream breaks any unlucky interaction between the corruption pattern
    /// and the quantised update before the heavier full-rollback rung. The
    /// salt is transient — it is not serialised into [`SgdState`], and a
    /// checkpoint-resumed run starts back at salt 0.
    pub fn reroll_rounding(&mut self, salt: u64) {
        self.salt = salt;
    }

    /// The active configuration.
    pub fn config(&self) -> &SgdConfig {
        &self.cfg
    }

    /// The serialisable progress state.
    pub fn state(&self) -> SgdState {
        SgdState { steps: self.steps }
    }

    /// Restores progress previously captured by [`state`](Sgd::state).
    pub fn restore(&mut self, state: SgdState) {
        self.steps = state.steps;
    }

    /// The rounding stream for one step: a pure function of (seed, step),
    /// so a resumed run draws the exact bits the interrupted run would
    /// have.
    fn step_rng(seed: u64, step: u64) -> StdRng {
        trng::substream(seed ^ step.wrapping_mul(0x9E37_79B9_7F4A_7C15), 0x56D)
    }

    /// Applies one step to every parameter of `net` at learning rate `lr`,
    /// consuming the accumulated gradients (which are left untouched — call
    /// [`Network::zero_grads`] before the next accumulation).
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::BadConfig`] for a non-finite/negative `lr` and
    /// propagates parameter-store errors (e.g. NaN gradients).
    pub fn step(&mut self, net: &mut Network, lr: f32) -> crate::Result<StepStats> {
        if !lr.is_finite() || lr < 0.0 {
            return Err(OptimError::BadConfig {
                reason: format!("invalid lr {lr}"),
            });
        }
        let mut stats = StepStats::default();
        let mut first_err: Option<OptimError> = None;
        let cfg = self.cfg;
        let mut rng = Self::step_rng(self.seed ^ self.salt, self.steps);
        net.visit_params(&mut |p: &mut Param| {
            if first_err.is_some() {
                return;
            }
            if let Err(e) = Self::step_param(p, lr, &cfg, &mut rng, &mut stats) {
                first_err = Some(e);
            }
        });
        match first_err {
            Some(e) => Err(e),
            None => {
                self.steps += 1;
                Ok(stats)
            }
        }
    }

    fn step_param(
        p: &mut Param,
        lr: f32,
        cfg: &SgdConfig,
        rng: &mut StdRng,
        stats: &mut StepStats,
    ) -> crate::Result<()> {
        stats.params += 1;
        // Effective gradient: clip, then g + λ·w (weights only), then
        // momentum.
        let mut g = p.grad().clone();
        if let Some(max_norm) = cfg.clip_grad_norm {
            if !(max_norm.is_finite() && max_norm > 0.0) {
                return Err(OptimError::BadConfig {
                    reason: format!("invalid clip_grad_norm {max_norm}"),
                });
            }
            let norm = g.l2_norm();
            if norm > max_norm {
                ops::scale_in_place(&mut g, max_norm / norm);
            }
        }
        if cfg.weight_decay != 0.0 && p.kind() == ParamKind::Weight {
            let w = p.value();
            ops::axpy(cfg.weight_decay, &w, &mut g).map_err(apt_nn::NnError::from)?;
        }
        let effective: Tensor = if cfg.momentum != 0.0 {
            let v = p.velocity_mut();
            ops::scale_in_place(v, cfg.momentum);
            ops::add_in_place(v, &g).map_err(apt_nn::NnError::from)?;
            v.clone()
        } else {
            g
        };
        if let Some(us) = p.apply_update(&effective, lr, cfg.rounding, rng)? {
            stats.underflowed += us.underflowed;
            stats.expanded += us.expanded;
            stats.saturated += us.saturated;
            stats.quantized_total += us.total;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_nn::{models, Mode, QuantScheme};
    use apt_tensor::ops::softmax::cross_entropy;
    use apt_tensor::rng::{normal, seeded};

    fn loss_of(net: &mut Network, x: &Tensor, labels: &[usize]) -> f32 {
        let logits = net.forward(x, Mode::Eval).unwrap();
        cross_entropy(&logits, labels).unwrap().loss
    }

    #[test]
    fn sgd_reduces_loss_on_float_mlp() {
        let mut net =
            models::mlp("m", &[4, 16, 3], &QuantScheme::float32(), &mut seeded(0)).unwrap();
        let x = normal(&[8, 4], 1.0, &mut seeded(1));
        let labels = vec![0, 1, 2, 0, 1, 2, 0, 1];
        let mut sgd = Sgd::new(
            SgdConfig {
                momentum: 0.9,
                weight_decay: 0.0,
                rounding: RoundingMode::Truncate,
                clip_grad_norm: None,
            },
            0,
        );
        let before = loss_of(&mut net, &x, &labels);
        for _ in 0..50 {
            net.zero_grads();
            let logits = net.forward(&x, Mode::Train).unwrap();
            let ce = cross_entropy(&logits, &labels).unwrap();
            net.backward(&ce.grad_logits).unwrap();
            sgd.step(&mut net, 0.1).unwrap();
        }
        let after = loss_of(&mut net, &x, &labels);
        assert!(after < before * 0.5, "before={before} after={after}");
    }

    #[test]
    fn momentum_step_grows_resident_bytes_by_velocity_only() {
        // Eq. 3 runs in the packed domain: after the first momentum step
        // the only new resident memory is the fp32 velocity buffers (4·N
        // bytes per parameter) — the code stores themselves do not grow.
        let mut net =
            models::mlp("m", &[4, 16, 3], &QuantScheme::paper_apt(), &mut seeded(7)).unwrap();
        let before = net.resident_bytes();
        let x = normal(&[8, 4], 1.0, &mut seeded(8));
        let labels = vec![0, 1, 2, 0, 1, 2, 0, 1];
        let mut sgd = Sgd::new(
            SgdConfig {
                momentum: 0.9,
                ..SgdConfig::default()
            },
            0,
        );
        net.zero_grads();
        let logits = net.forward(&x, Mode::Train).unwrap();
        let ce = cross_entropy(&logits, &labels).unwrap();
        net.backward(&ce.grad_logits).unwrap();
        sgd.step(&mut net, 0.05).unwrap();
        let velocity_bytes = 4 * net.num_params() as u64;
        assert_eq!(
            net.resident_bytes(),
            before + velocity_bytes,
            "first momentum step must add exactly the velocity buffers"
        );
        // Further steps allocate nothing new.
        net.zero_grads();
        let logits = net.forward(&x, Mode::Train).unwrap();
        let ce = cross_entropy(&logits, &labels).unwrap();
        net.backward(&ce.grad_logits).unwrap();
        sgd.step(&mut net, 0.05).unwrap();
        assert_eq!(net.resident_bytes(), before + velocity_bytes);
    }

    #[test]
    fn sgd_trains_quantized_mlp_and_reports_underflow() {
        let mut net =
            models::mlp("m", &[4, 16, 3], &QuantScheme::paper_apt(), &mut seeded(2)).unwrap();
        let x = normal(&[8, 4], 1.0, &mut seeded(3));
        let labels = vec![0, 1, 2, 0, 1, 2, 0, 1];
        let mut sgd = Sgd::new(SgdConfig::default(), 0);
        let mut total_underflow = 0usize;
        let before = loss_of(&mut net, &x, &labels);
        for _ in 0..60 {
            net.zero_grads();
            let logits = net.forward(&x, Mode::Train).unwrap();
            let ce = cross_entropy(&logits, &labels).unwrap();
            net.backward(&ce.grad_logits).unwrap();
            let stats = sgd.step(&mut net, 0.1).unwrap();
            assert!(stats.quantized_total > 0);
            total_underflow += stats.underflowed;
        }
        let after = loss_of(&mut net, &x, &labels);
        assert!(after < before, "before={before} after={after}");
        assert!(
            total_underflow > 0,
            "6-bit weights should underflow sometimes"
        );
    }

    #[test]
    fn momentum_accelerates_on_quadratic() {
        // One fp32 weight, constant gradient: with momentum the effective
        // step grows ⇒ larger total displacement after k steps.
        let run = |momentum: f32| -> f32 {
            let mut net =
                models::mlp("m", &[2, 2], &QuantScheme::float32(), &mut seeded(4)).unwrap();
            let mut sgd = Sgd::new(
                SgdConfig {
                    momentum,
                    weight_decay: 0.0,
                    rounding: RoundingMode::Truncate,
                    clip_grad_norm: None,
                },
                0,
            );
            let mut first = Tensor::default();
            net.visit_params_ref(&mut |p| {
                if p.kind() == ParamKind::Weight {
                    first = p.value();
                }
            });
            for _ in 0..10 {
                net.zero_grads();
                net.visit_params(&mut |p| {
                    let ones = Tensor::ones(p.dims());
                    p.accumulate_grad(&ones).unwrap();
                });
                sgd.step(&mut net, 0.01).unwrap();
            }
            let mut moved = 0.0;
            net.visit_params_ref(&mut |p| {
                if p.kind() == ParamKind::Weight {
                    moved += ops::sub(&p.value(), &first).unwrap().l2_norm();
                }
            });
            moved
        };
        assert!(run(0.9) > run(0.0) * 2.0);
    }

    #[test]
    fn weight_decay_shrinks_weights_not_biases() {
        let mut net = models::mlp("m", &[3, 3], &QuantScheme::float32(), &mut seeded(5)).unwrap();
        let mut sgd = Sgd::new(
            SgdConfig {
                momentum: 0.0,
                weight_decay: 0.1,
                rounding: RoundingMode::Truncate,
                clip_grad_norm: None,
            },
            0,
        );
        // give the bias a non-zero value first
        net.visit_params(&mut |p| {
            if p.kind() == ParamKind::Bias {
                let g = Tensor::full(p.dims(), -1.0);
                p.apply_update(&g, 1.0, RoundingMode::Truncate, &mut seeded(0))
                    .unwrap();
            }
        });
        let mut w_before = 0.0;
        let mut b_before = 0.0;
        net.visit_params_ref(&mut |p| match p.kind() {
            ParamKind::Weight => w_before += p.value().l2_norm(),
            ParamKind::Bias => b_before += p.value().l2_norm(),
            _ => {}
        });
        for _ in 0..20 {
            net.zero_grads();
            sgd.step(&mut net, 0.1).unwrap(); // zero gradients, decay only
        }
        let mut w_after = 0.0;
        let mut b_after = 0.0;
        net.visit_params_ref(&mut |p| match p.kind() {
            ParamKind::Weight => w_after += p.value().l2_norm(),
            ParamKind::Bias => b_after += p.value().l2_norm(),
            _ => {}
        });
        assert!(w_after < w_before * 0.9, "weights should decay");
        assert!((b_after - b_before).abs() < 1e-6, "biases must not decay");
    }

    #[test]
    fn invalid_lr_rejected() {
        let mut net = models::mlp("m", &[2, 2], &QuantScheme::float32(), &mut seeded(6)).unwrap();
        let mut sgd = Sgd::new(SgdConfig::default(), 0);
        assert!(sgd.step(&mut net, f32::NAN).is_err());
        assert!(sgd.step(&mut net, -0.1).is_err());
        assert_eq!(sgd.config().momentum, 0.9);
    }

    #[test]
    fn reroll_changes_stochastic_stream_only() {
        let run = |salt: Option<u64>, mode: RoundingMode| -> Vec<f32> {
            let mut net =
                models::mlp("m", &[4, 32, 3], &QuantScheme::paper_apt(), &mut seeded(8)).unwrap();
            let mut sgd = Sgd::new(
                SgdConfig {
                    momentum: 0.0,
                    weight_decay: 0.0,
                    rounding: mode,
                    clip_grad_norm: None,
                },
                42,
            );
            if let Some(s) = salt {
                sgd.reroll_rounding(s);
            }
            for _ in 0..4 {
                net.zero_grads();
                net.visit_params(&mut |p| {
                    if p.kind() == ParamKind::Weight {
                        let eps = p.eps().unwrap();
                        let g = Tensor::full(p.dims(), eps * 0.5);
                        p.accumulate_grad(&g).unwrap();
                    }
                });
                sgd.step(&mut net, 1.0).unwrap();
            }
            let mut out = Vec::new();
            net.visit_params_ref(&mut |p| out.extend_from_slice(p.value().data()));
            out
        };
        // Salt 0 is the identity; a non-zero salt redraws the stochastic
        // stream; truncation ignores the rng entirely.
        assert_eq!(
            run(None, RoundingMode::Stochastic),
            run(Some(0), RoundingMode::Stochastic)
        );
        assert_ne!(
            run(None, RoundingMode::Stochastic),
            run(Some(0xDEAD_BEEF), RoundingMode::Stochastic)
        );
        assert_eq!(
            run(None, RoundingMode::Truncate),
            run(Some(0xDEAD_BEEF), RoundingMode::Truncate)
        );
    }

    #[test]
    fn step_stats_report_saturation() {
        let mut net =
            models::mlp("m", &[4, 16, 3], &QuantScheme::paper_apt(), &mut seeded(9)).unwrap();
        let mut sgd = Sgd::new(SgdConfig::default(), 0);
        let stats = sgd.step(&mut net, 0.1).unwrap();
        // Calibration keeps each tensor's extremes near the rails, so a
        // healthy step reports a small but non-zero saturated count.
        assert!(stats.saturated > 0);
        assert!(stats.saturated < stats.quantized_total / 4);
    }

    #[test]
    fn nan_gradient_surfaces_as_error() {
        let mut net = models::mlp("m", &[2, 2], &QuantScheme::paper_apt(), &mut seeded(7)).unwrap();
        net.visit_params(&mut |p| {
            if p.kind() == ParamKind::Weight {
                p.grad_mut().data_mut()[0] = f32::NAN;
            }
        });
        let mut sgd = Sgd::new(
            SgdConfig {
                momentum: 0.0,
                weight_decay: 0.0,
                rounding: RoundingMode::Truncate,
                clip_grad_norm: None,
            },
            0,
        );
        assert!(sgd.step(&mut net, 0.1).is_err());
    }
}

#[cfg(test)]
mod clip_tests {
    use super::*;
    use apt_nn::{models, QuantScheme};
    use apt_tensor::rng::seeded;

    fn net_with_big_grads() -> Network {
        let mut net = models::mlp("m", &[2, 2], &QuantScheme::float32(), &mut seeded(1)).unwrap();
        net.visit_params(&mut |p| {
            p.grad_mut().fill(100.0);
        });
        net
    }

    #[test]
    fn clipping_bounds_the_applied_step() {
        let before = |net: &Network| {
            let mut v = Vec::new();
            net.visit_params_ref(&mut |p| v.push(p.value()));
            v
        };
        // Unclipped: weights move by lr·100 per element.
        let mut free = net_with_big_grads();
        let w0 = before(&free);
        let mut sgd = Sgd::new(
            SgdConfig {
                momentum: 0.0,
                weight_decay: 0.0,
                ..Default::default()
            },
            0,
        );
        sgd.step(&mut free, 0.01).unwrap();
        // Clipped to norm 1: the whole tensor's step has L2 norm ≤ lr.
        let mut clipped = net_with_big_grads();
        let c0 = before(&clipped);
        let mut sgd_c = Sgd::new(
            SgdConfig {
                momentum: 0.0,
                weight_decay: 0.0,
                clip_grad_norm: Some(1.0),
                ..Default::default()
            },
            0,
        );
        sgd_c.step(&mut clipped, 0.01).unwrap();

        let moved = |net: &Network, base: &[apt_tensor::Tensor]| -> f32 {
            let mut i = 0;
            let mut total = 0.0;
            net.visit_params_ref(&mut |p| {
                total += ops::sub(&p.value(), &base[i]).unwrap().l2_norm();
                i += 1;
            });
            total
        };
        let free_move = moved(&free, &w0);
        let clip_move = moved(&clipped, &c0);
        assert!(
            clip_move < free_move / 50.0,
            "clipped={clip_move} free={free_move}"
        );
        // Per-tensor step norm ≤ lr·max_norm (+ float slack).
        assert!(clip_move <= 0.01 * 1.0 * 3.0 + 1e-5);
    }

    #[test]
    fn small_gradients_pass_through_unclipped() {
        let run = |clip: Option<f32>| -> Vec<f32> {
            let mut net =
                models::mlp("m", &[2, 2], &QuantScheme::float32(), &mut seeded(2)).unwrap();
            net.visit_params(&mut |p| p.grad_mut().fill(1e-3));
            let mut sgd = Sgd::new(
                SgdConfig {
                    momentum: 0.0,
                    weight_decay: 0.0,
                    clip_grad_norm: clip,
                    ..Default::default()
                },
                0,
            );
            sgd.step(&mut net, 0.1).unwrap();
            let mut out = Vec::new();
            net.visit_params_ref(&mut |p| out.extend_from_slice(p.value().data()));
            out
        };
        assert_eq!(run(None), run(Some(10.0)));
    }

    #[test]
    fn invalid_clip_threshold_rejected() {
        let mut net = net_with_big_grads();
        let mut sgd = Sgd::new(
            SgdConfig {
                clip_grad_norm: Some(-1.0),
                ..Default::default()
            },
            0,
        );
        assert!(sgd.step(&mut net, 0.1).is_err());
        let mut sgd = Sgd::new(
            SgdConfig {
                clip_grad_norm: Some(f32::NAN),
                ..Default::default()
            },
            0,
        );
        assert!(sgd.step(&mut net, 0.1).is_err());
    }
}
