use crate::QuantError;
use std::fmt;

/// A validated parameter bitwidth in `[2, 32]` bits.
///
/// Algorithm 1 of the paper clamps layer precision to exactly this range
/// (`k_i > 2` before decrementing, `k_i < 32` before incrementing), so the
/// type makes out-of-range precisions unrepresentable.
///
/// ```
/// use apt_quant::Bitwidth;
/// let k = Bitwidth::new(6)?;
/// assert_eq!(k.get(), 6);
/// assert_eq!(k.num_levels(), 64);
/// assert_eq!(k.increment().get(), 7);
/// # Ok::<(), apt_quant::QuantError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bitwidth(u8);

impl Bitwidth {
    /// Smallest supported precision (2 bits), per Algorithm 1.
    pub const MIN: Bitwidth = Bitwidth(2);
    /// Largest supported precision (32 bits), per Algorithm 1.
    pub const MAX: Bitwidth = Bitwidth(32);
    /// The paper's default initial precision for APT runs (§IV: "we set
    /// initial bitwidth to 6").
    pub const PAPER_INITIAL: Bitwidth = Bitwidth(6);

    /// Creates a bitwidth.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidBitwidth`] unless `2 ≤ bits ≤ 32`.
    pub fn new(bits: u32) -> crate::Result<Self> {
        if !(2..=32).contains(&bits) {
            return Err(QuantError::InvalidBitwidth { bits });
        }
        Ok(Bitwidth(bits as u8))
    }

    /// The raw bit count.
    pub fn get(self) -> u32 {
        u32::from(self.0)
    }

    /// Number of representable code points, `2^k` (exact up to k = 32).
    pub fn num_levels(self) -> u64 {
        1u64 << self.0
    }

    /// Number of quantisation steps across the range, `2^k − 1` — the
    /// denominator of the paper's Eq. 2.
    pub fn num_steps(self) -> u64 {
        self.num_levels() - 1
    }

    /// One step up, saturating at [`Bitwidth::MAX`] (Alg. 1 line 3).
    pub fn increment(self) -> Bitwidth {
        Bitwidth((self.0 + 1).min(32))
    }

    /// One step down, saturating at [`Bitwidth::MIN`] (Alg. 1 line 6).
    pub fn decrement(self) -> Bitwidth {
        Bitwidth((self.0 - 1).max(2))
    }

    /// `true` at the 32-bit ceiling.
    pub fn is_max(self) -> bool {
        self.0 == 32
    }

    /// `true` at the 2-bit floor.
    pub fn is_min(self) -> bool {
        self.0 == 2
    }
}

impl Default for Bitwidth {
    /// Defaults to the paper's initial APT precision, 6 bits.
    fn default() -> Self {
        Bitwidth::PAPER_INITIAL
    }
}

impl fmt::Display for Bitwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-bit", self.0)
    }
}

impl TryFrom<u32> for Bitwidth {
    type Error = QuantError;
    fn try_from(bits: u32) -> crate::Result<Self> {
        Bitwidth::new(bits)
    }
}

impl From<Bitwidth> for u32 {
    fn from(b: Bitwidth) -> u32 {
        b.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_supported_range() {
        for bits in 2..=32 {
            assert_eq!(Bitwidth::new(bits).unwrap().get(), bits);
        }
    }

    #[test]
    fn rejects_out_of_range() {
        for bits in [0u32, 1, 33, 64, 1000] {
            assert_eq!(
                Bitwidth::new(bits),
                Err(QuantError::InvalidBitwidth { bits })
            );
        }
    }

    #[test]
    fn levels_and_steps() {
        assert_eq!(Bitwidth::new(2).unwrap().num_levels(), 4);
        assert_eq!(Bitwidth::new(8).unwrap().num_steps(), 255);
        assert_eq!(Bitwidth::MAX.num_levels(), 1u64 << 32);
    }

    #[test]
    fn increment_decrement_saturate() {
        assert_eq!(Bitwidth::MAX.increment(), Bitwidth::MAX);
        assert_eq!(Bitwidth::MIN.decrement(), Bitwidth::MIN);
        assert_eq!(Bitwidth::new(6).unwrap().increment().get(), 7);
        assert_eq!(Bitwidth::new(6).unwrap().decrement().get(), 5);
        assert!(Bitwidth::MAX.is_max());
        assert!(Bitwidth::MIN.is_min());
    }

    #[test]
    fn default_is_paper_initial() {
        assert_eq!(Bitwidth::default(), Bitwidth::PAPER_INITIAL);
        assert_eq!(Bitwidth::default().get(), 6);
    }

    #[test]
    fn ordering_and_conversions() {
        assert!(Bitwidth::new(4).unwrap() < Bitwidth::new(8).unwrap());
        assert_eq!(u32::from(Bitwidth::new(5).unwrap()), 5);
        assert!(Bitwidth::try_from(7u32).is_ok());
        assert!(Bitwidth::try_from(1u32).is_err());
        assert_eq!(Bitwidth::new(8).unwrap().to_string(), "8-bit");
    }
}
