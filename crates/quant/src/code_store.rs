//! Physical storage backends for quantised integer codes.
//!
//! The paper's central resource claim is that training a layer at `k` bits
//! costs `k` bits per weight of training memory (§III-B, Table I, Fig. 5).
//! Storing every code in a `Vec<i64>` — the original layout of
//! [`crate::QuantizedTensor`] — only *simulates* that saving: a "6-bit"
//! layer physically occupies 64 bits per element. This module makes the
//! saving physical:
//!
//! * [`PackedCodes`] — `k`-bit **signed** codes packed end-to-end into
//!   little-endian `u64` words, with branch-free two-word extract/insert
//!   and sign extension. Works for every `k` in `[2, 32]` and doubles as
//!   the canonical (backend-independent) serialisation of a store.
//! * [`CodeStore`] — the tiered container the rest of the crate holds
//!   codes in: an `i8` fast tier for `k ≤ 8`, an `i16` tier for `k ≤ 16`,
//!   [`PackedCodes`] above that, and the legacy one-`i64`-per-code layout
//!   kept as the differential reference backend.
//!
//! ## Representation
//!
//! The affine grid code `q` is unsigned, `q ∈ [0, 2^k − 1]`. The packed
//! tiers store the **centered** code `c = q − 2^(k−1)` as a `k`-bit
//! two's-complement field. The two encodings differ only in an inverted
//! most-significant bit (`pattern(c) = q XOR 2^(k−1)`, offset-binary vs.
//! two's complement), so flipping *any* physical stored bit `b` — a
//! single-event upset in real memory — changes the logical code by exactly
//! `q ^= 1 << b`, matching the SEU model the fault-injection campaign
//! documents. Bits above `k` in the `i8`/`i16` tiers are sign copies; the
//! SEU model targets the `k` payload bits in every tier.
//!
//! ## Backend selection
//!
//! New stores pick their representation through a process-wide
//! [`StoreBackend`] (default [`StoreBackend::Tiered`]; the environment
//! variable `APT_CODE_BACKEND=i64` or [`set_store_backend`] forces the
//! legacy layout). The differential test trains the same model under both
//! backends and asserts byte-identical results.

use crate::{Bitwidth, QuantError};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Which physical representation newly created code stores use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreBackend {
    /// Narrowest tier for the bitwidth: `i8` for `k ≤ 8`, `i16` for
    /// `k ≤ 16`, bit-packed `u64` words above. The default.
    #[default]
    Tiered,
    /// One `i64` per code — the legacy layout, kept as the differential
    /// reference.
    I64,
}

const FORCED_UNSET: u8 = 0;
const FORCED_TIERED: u8 = 1;
const FORCED_I64: u8 = 2;

/// Process-wide override installed by [`set_store_backend`].
static FORCED: AtomicU8 = AtomicU8::new(FORCED_UNSET);

/// Backend implied by the `APT_CODE_BACKEND` environment variable, read
/// once per process.
fn env_backend() -> StoreBackend {
    static ENV: OnceLock<StoreBackend> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("APT_CODE_BACKEND").as_deref() {
        Ok("i64") => StoreBackend::I64,
        _ => StoreBackend::Tiered,
    })
}

/// The backend new stores are created with: an explicit
/// [`set_store_backend`] override if one was installed, else
/// `APT_CODE_BACKEND=i64` from the environment, else
/// [`StoreBackend::Tiered`].
pub fn store_backend() -> StoreBackend {
    match FORCED.load(Ordering::Relaxed) {
        FORCED_TIERED => StoreBackend::Tiered,
        FORCED_I64 => StoreBackend::I64,
        _ => env_backend(),
    }
}

/// Forces the process-wide backend for newly created stores.
///
/// Existing stores keep their representation. Intended for differential
/// tests and benches that own their process; library code should not call
/// this (unit tests use [`CodeStore::with_backend`] instead, which cannot
/// leak across parallel tests).
pub fn set_store_backend(backend: StoreBackend) {
    let v = match backend {
        StoreBackend::Tiered => FORCED_TIERED,
        StoreBackend::I64 => FORCED_I64,
    };
    FORCED.store(v, Ordering::Relaxed);
}

/// `k`-bit signed codes packed end-to-end into little-endian `u64` words.
///
/// Element `i` occupies bits `[i·k, i·k + k)` of the word stream; the
/// field holds the `k`-bit two's-complement pattern of a signed code in
/// `[−2^(k−1), 2^(k−1) − 1]`. One always-zero word is kept past the data
/// words so extract/insert can read an aligned two-word window without
/// branching on word boundaries. Trailing bits beyond `len·k` are kept
/// zero at all times, so equal logical content means equal words — the
/// property checkpoint byte-determinism and integrity digests rely on.
///
/// ```
/// use apt_quant::{Bitwidth, PackedCodes};
/// let p = PackedCodes::from_signed(&[-4, -1, 0, 3], Bitwidth::new(3)?)?;
/// assert_eq!(p.to_signed_vec(), vec![-4, -1, 0, 3]);
/// assert_eq!(p.resident_bytes(), 16); // 1 data word + 1 padding word
/// # Ok::<(), apt_quant::QuantError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedCodes {
    /// Data words followed by one always-zero padding word.
    words: Vec<u64>,
    len: usize,
    bits: Bitwidth,
}

impl PackedCodes {
    /// Low-`k` bitmask (valid for `k ≤ 32`).
    fn mask(bits: Bitwidth) -> u64 {
        (1u64 << bits.get()) - 1
    }

    /// Number of `u64` data words needed for `len` codes at `k` bits
    /// (excludes the padding word).
    fn data_word_count(len: usize, bits: Bitwidth) -> usize {
        (len * bits.get() as usize).div_ceil(64)
    }

    /// Packs signed codes, validating each against the `k`-bit
    /// two's-complement range.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::CorruptStore`] if any code is outside
    /// `[−2^(k−1), 2^(k−1) − 1]`.
    pub fn from_signed(codes: &[i64], bits: Bitwidth) -> crate::Result<Self> {
        let half = 1i64 << (bits.get() - 1);
        if codes.iter().any(|&c| c < -half || c >= half) {
            return Err(QuantError::CorruptStore {
                reason: "signed code outside the k-bit two's-complement range",
            });
        }
        let mut p = PackedCodes {
            words: vec![0u64; Self::data_word_count(codes.len(), bits) + 1],
            len: codes.len(),
            bits,
        };
        for (i, &c) in codes.iter().enumerate() {
            p.set(i, c);
        }
        Ok(p)
    }

    /// Number of stored codes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no codes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Field width.
    pub fn bits(&self) -> Bitwidth {
        self.bits
    }

    /// Extracts element `i`, sign-extended to `i64`.
    ///
    /// Branch-free: reads the two words the field can straddle as one
    /// `u128` window (the padding word makes `words[w + 1]` always valid),
    /// shifts the field down, and sign-extends via a left/right shift
    /// pair.
    #[inline]
    pub fn get(&self, i: usize) -> i64 {
        debug_assert!(i < self.len);
        let k = self.bits.get();
        let bit = i * k as usize;
        let (w, off) = (bit / 64, (bit % 64) as u32);
        let pair = self.words[w] as u128 | ((self.words[w + 1] as u128) << 64);
        let field = (pair >> off) as u64 & Self::mask(self.bits);
        let shift = 64 - k;
        ((field << shift) as i64) >> shift
    }

    /// Stores signed code `c` into element `i` (low `k` bits of `c`).
    #[inline]
    pub fn set(&mut self, i: usize, c: i64) {
        debug_assert!(i < self.len);
        let k = self.bits.get();
        debug_assert!({
            let half = 1i64 << (k - 1);
            (-half..half).contains(&c)
        });
        let mask = Self::mask(self.bits);
        let field = (c as u64) & mask;
        let bit = i * k as usize;
        let (w, off) = (bit / 64, (bit % 64) as u32);
        let pair = self.words[w] as u128 | ((self.words[w + 1] as u128) << 64);
        let merged = (pair & !((mask as u128) << off)) | ((field as u128) << off);
        self.words[w] = merged as u64;
        self.words[w + 1] = (merged >> 64) as u64;
    }

    /// Flips physical bit `bit` (`< k`) of element `i` — one XOR on the
    /// stored word, exactly what a single-event upset does to the RAM cell
    /// holding that bit. Returns the new signed value of the element.
    pub fn flip_bit(&mut self, i: usize, bit: u32) -> i64 {
        debug_assert!(i < self.len && bit < self.bits.get());
        let pos = i * self.bits.get() as usize + bit as usize;
        self.words[pos / 64] ^= 1u64 << (pos % 64);
        self.get(i)
    }

    /// Unpacks every element, sign-extended.
    pub fn to_signed_vec(&self) -> Vec<i64> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// The data words (padding word excluded) — the canonical serialised
    /// form used by checkpoint format v3.
    pub fn data_words(&self) -> &[u64] {
        &self.words[..self.words.len() - 1]
    }

    /// Rebuilds a store from serialised data words (checkpoint loading).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::CorruptStore`] if the word count disagrees
    /// with `len · k` or any trailing bit beyond `len · k` is set. Every
    /// in-range bit pattern decodes to a valid field, so no per-element
    /// validation is needed.
    pub fn from_data_words(words: Vec<u64>, len: usize, bits: Bitwidth) -> crate::Result<Self> {
        if words.len() != Self::data_word_count(len, bits) {
            return Err(QuantError::CorruptStore {
                reason: "packed word count disagrees with the logical length",
            });
        }
        let rem = (len * bits.get() as usize) % 64;
        if rem != 0 {
            if let Some(&last) = words.last() {
                if last >> rem != 0 {
                    return Err(QuantError::CorruptStore {
                        reason: "nonzero padding bits in packed payload",
                    });
                }
            }
        }
        let mut words = words;
        words.push(0);
        Ok(PackedCodes { words, len, bits })
    }

    /// Physical bytes held by this store (data words plus the one padding
    /// word).
    pub fn resident_bytes(&self) -> u64 {
        self.words.len() as u64 * 8
    }
}

/// Private representation behind [`CodeStore`].
#[derive(Debug, Clone, PartialEq)]
enum Repr {
    /// Legacy reference tier: one `i64` per raw grid code `q`.
    I64(Vec<i64>),
    /// `k ≤ 8`: centered code `c = q − 2^(k−1)` as one byte.
    I8(Vec<i8>),
    /// `k ≤ 16`: centered code as one `i16`.
    I16(Vec<i16>),
    /// `k > 16`: centered codes bit-packed into `u64` words.
    Packed(PackedCodes),
}

/// The physical container for a tensor's quantised codes.
///
/// The public API speaks raw affine grid codes `q ∈ [0, 2^k − 1]` — the
/// same values [`crate::AffineQuantizer`] produces — while the tiered
/// representations store the centered signed form internally (see the
/// module docs for the encoding and its SEU property).
///
/// ```
/// use apt_quant::{Bitwidth, CodeStore, StoreBackend};
/// let k6 = Bitwidth::new(6)?;
/// let s = CodeStore::with_backend(StoreBackend::Tiered, &[0, 31, 63], k6);
/// assert_eq!(s.to_vec(), vec![0, 31, 63]);
/// assert_eq!(s.resident_bytes(), 3); // i8 tier: one byte per code
/// let r = CodeStore::with_backend(StoreBackend::I64, &[0, 31, 63], k6);
/// assert_eq!(r.resident_bytes(), 24);
/// # Ok::<(), apt_quant::QuantError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CodeStore {
    repr: Repr,
    bits: Bitwidth,
}

impl CodeStore {
    /// `2^(k−1)`, the offset between raw and centered codes.
    fn half(bits: Bitwidth) -> i64 {
        1i64 << (bits.get() - 1)
    }

    /// Builds a store from raw grid codes using the process-wide backend
    /// ([`store_backend`]). Codes must already be on the `[0, 2^k − 1]`
    /// grid; callers validate (debug builds assert).
    pub fn from_codes(codes: &[i64], bits: Bitwidth) -> Self {
        Self::with_backend(store_backend(), codes, bits)
    }

    /// Builds a store from raw grid codes with an explicit backend
    /// (unit tests; immune to the process-wide override).
    pub fn with_backend(backend: StoreBackend, codes: &[i64], bits: Bitwidth) -> Self {
        debug_assert!({
            let max = bits.num_steps() as i64;
            codes.iter().all(|&q| (0..=max).contains(&q))
        });
        let half = Self::half(bits);
        let repr = match (backend, bits.get()) {
            (StoreBackend::I64, _) => Repr::I64(codes.to_vec()),
            (StoreBackend::Tiered, ..=8) => {
                Repr::I8(codes.iter().map(|&q| (q - half) as i8).collect())
            }
            (StoreBackend::Tiered, ..=16) => {
                Repr::I16(codes.iter().map(|&q| (q - half) as i16).collect())
            }
            (StoreBackend::Tiered, _) => {
                let centered: Vec<i64> = codes.iter().map(|&q| q - half).collect();
                Repr::Packed(
                    PackedCodes::from_signed(&centered, bits)
                        .expect("centered grid codes fit the k-bit range"),
                )
            }
        };
        CodeStore { repr, bits }
    }

    /// Number of stored codes.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::I64(v) => v.len(),
            Repr::I8(v) => v.len(),
            Repr::I16(v) => v.len(),
            Repr::Packed(p) => p.len(),
        }
    }

    /// `true` if no codes are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Logical precision of the stored codes.
    pub fn bits(&self) -> Bitwidth {
        self.bits
    }

    /// Reads the raw grid code of element `i`.
    #[inline]
    pub fn get(&self, i: usize) -> i64 {
        let half = Self::half(self.bits);
        match &self.repr {
            Repr::I64(v) => v[i],
            Repr::I8(v) => i64::from(v[i]) + half,
            Repr::I16(v) => i64::from(v[i]) + half,
            Repr::Packed(p) => p.get(i) + half,
        }
    }

    /// Writes raw grid code `q` (must be on the grid) into element `i`.
    #[inline]
    pub fn set(&mut self, i: usize, q: i64) {
        debug_assert!((0..=self.bits.num_steps() as i64).contains(&q));
        let half = Self::half(self.bits);
        match &mut self.repr {
            Repr::I64(v) => v[i] = q,
            Repr::I8(v) => v[i] = (q - half) as i8,
            Repr::I16(v) => v[i] = (q - half) as i16,
            Repr::Packed(p) => p.set(i, q - half),
        }
    }

    /// Materialises every raw grid code.
    pub fn to_vec(&self) -> Vec<i64> {
        let half = Self::half(self.bits);
        match &self.repr {
            Repr::I64(v) => v.clone(),
            Repr::I8(v) => v.iter().map(|&c| i64::from(c) + half).collect(),
            Repr::I16(v) => v.iter().map(|&c| i64::from(c) + half).collect(),
            Repr::Packed(p) => (0..p.len()).map(|i| p.get(i) + half).collect(),
        }
    }

    /// Counts codes sitting on a grid rail (`q == 0` or `q == max_code`),
    /// compared in each tier's native domain.
    pub fn count_rails(&self, max_code: i64) -> usize {
        let half = Self::half(self.bits);
        match &self.repr {
            Repr::I64(v) => v.iter().filter(|&&q| q == 0 || q == max_code).count(),
            Repr::I8(v) => {
                let (lo, hi) = ((-half) as i8, (max_code - half) as i8);
                v.iter().filter(|&&c| c == lo || c == hi).count()
            }
            Repr::I16(v) => {
                let (lo, hi) = ((-half) as i16, (max_code - half) as i16);
                v.iter().filter(|&&c| c == lo || c == hi).count()
            }
            Repr::Packed(p) => {
                let (lo, hi) = (-half, max_code - half);
                (0..p.len())
                    .filter(|&i| {
                        let c = p.get(i);
                        c == lo || c == hi
                    })
                    .count()
            }
        }
    }

    /// Flips bit `bit` (`< k`) of element `elem`'s stored pattern and
    /// returns the new raw grid code.
    ///
    /// In every tier the logical effect is `q ^= 1 << bit` (the centered
    /// pattern is `q XOR 2^(k−1)`, so pattern-bit flips and raw-code bit
    /// flips coincide); in the packed tier this is literally one XOR on
    /// the resident `u64` word.
    pub fn flip_bit(&mut self, elem: usize, bit: u32) -> i64 {
        let k = self.bits.get();
        debug_assert!(bit < k);
        let half = Self::half(self.bits);
        match &mut self.repr {
            Repr::I64(v) => {
                v[elem] ^= 1i64 << bit;
                v[elem]
            }
            Repr::I8(v) => {
                // Flip the pattern bit, then re-sign-extend the byte from
                // bit k−1 so the tier invariant (sign-copied high bits)
                // holds.
                let sh = 8 - k;
                let flipped = (v[elem] as u8) ^ (1u8 << bit);
                v[elem] = ((flipped << sh) as i8) >> sh;
                i64::from(v[elem]) + half
            }
            Repr::I16(v) => {
                let sh = 16 - k;
                let flipped = (v[elem] as u16) ^ (1u16 << bit);
                v[elem] = ((flipped << sh) as i16) >> sh;
                i64::from(v[elem]) + half
            }
            Repr::Packed(p) => p.flip_bit(elem, bit) + half,
        }
    }

    /// Physical bytes resident in this store: `8N` for the `i64` tier,
    /// `N`/`2N` for `i8`/`i16`, and the word count (padding included) for
    /// the packed tier.
    pub fn resident_bytes(&self) -> u64 {
        match &self.repr {
            Repr::I64(v) => v.len() as u64 * 8,
            Repr::I8(v) => v.len() as u64,
            Repr::I16(v) => v.len() as u64 * 2,
            Repr::Packed(p) => p.resident_bytes(),
        }
    }

    /// Physical bits occupied per code, rounded up — what a memory-energy
    /// model should charge for traffic, as opposed to the logical `k`.
    /// Empty stores report the tier's element width.
    pub fn resident_bits_per_code(&self) -> u32 {
        match &self.repr {
            Repr::I64(_) => 64,
            Repr::I8(_) => 8,
            Repr::I16(_) => 16,
            Repr::Packed(p) => {
                if p.is_empty() {
                    64
                } else {
                    (p.resident_bytes() * 8).div_ceil(p.len() as u64) as u32
                }
            }
        }
    }

    /// Name of the active tier (`"i64"`, `"i8"`, `"i16"`, `"packed"`) for
    /// diagnostics and bench output.
    pub fn tier_name(&self) -> &'static str {
        match &self.repr {
            Repr::I64(_) => "i64",
            Repr::I8(_) => "i8",
            Repr::I16(_) => "i16",
            Repr::Packed(_) => "packed",
        }
    }

    /// Feeds the physical representation to `f` word by word — the basis
    /// of integrity digests, which must change when any resident bit
    /// flips. The `i64` tier emits one word per code (preserving the
    /// legacy digest definition); `i8`/`i16` chunk their bytes
    /// little-endian, zero-padded; the packed tier emits its data words.
    pub fn for_each_word(&self, mut f: impl FnMut(u64)) {
        match &self.repr {
            Repr::I64(v) => {
                for &q in v {
                    f(q as u64);
                }
            }
            Repr::I8(v) => {
                for chunk in v.chunks(8) {
                    let mut w = 0u64;
                    for (j, &c) in chunk.iter().enumerate() {
                        w |= u64::from(c as u8) << (8 * j);
                    }
                    f(w);
                }
            }
            Repr::I16(v) => {
                for chunk in v.chunks(4) {
                    let mut w = 0u64;
                    for (j, &c) in chunk.iter().enumerate() {
                        w |= u64::from(c as u16) << (16 * j);
                    }
                    f(w);
                }
            }
            Repr::Packed(p) => {
                for &w in p.data_words() {
                    f(w);
                }
            }
        }
    }

    /// Converts to the canonical bit-packed form — identical words for
    /// identical logical content regardless of the active tier, which is
    /// what checkpoint v3 serialises.
    pub fn to_packed(&self) -> PackedCodes {
        if let Repr::Packed(p) = &self.repr {
            return p.clone();
        }
        let half = Self::half(self.bits);
        let centered: Vec<i64> = match &self.repr {
            Repr::I64(v) => v.iter().map(|&q| q - half).collect(),
            Repr::I8(v) => v.iter().map(|&c| i64::from(c)).collect(),
            Repr::I16(v) => v.iter().map(|&c| i64::from(c)).collect(),
            Repr::Packed(_) => unreachable!(),
        };
        PackedCodes::from_signed(&centered, self.bits).expect("grid codes fit the k-bit range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_tensor::rng;
    use rand::Rng;

    fn b(k: u32) -> Bitwidth {
        Bitwidth::new(k).unwrap()
    }

    /// Random grid codes at `k` bits with the rails always present.
    fn grid_codes(k: u32, n: usize, seed: u64) -> Vec<i64> {
        let max = b(k).num_steps() as i64;
        let mut r = rng::seeded(seed);
        let mut v: Vec<i64> = (0..n).map(|_| r.gen_range(0..=max)).collect();
        if n >= 2 {
            v[0] = 0;
            v[1] = max;
        }
        v
    }

    #[test]
    fn packed_roundtrips_every_bitwidth() {
        for k in 2..=32u32 {
            let half = 1i64 << (k - 1);
            let mut r = rng::seeded(u64::from(k));
            let mut signed: Vec<i64> = (0..257).map(|_| r.gen_range(-half..half)).collect();
            signed[0] = -half;
            signed[1] = half - 1;
            signed[2] = 0;
            let p = PackedCodes::from_signed(&signed, b(k)).unwrap();
            assert_eq!(p.to_signed_vec(), signed, "k={k}");
            assert_eq!(p.len(), 257);
            // Exactly ceil(257k/64) data words plus one padding word.
            assert_eq!(
                p.resident_bytes(),
                ((257 * k as u64).div_ceil(64) + 1) * 8,
                "k={k}"
            );
        }
    }

    #[test]
    fn packed_rejects_out_of_range_and_corrupt_words() {
        assert!(PackedCodes::from_signed(&[4], b(3)).is_err());
        assert!(PackedCodes::from_signed(&[-5], b(3)).is_err());
        let p = PackedCodes::from_signed(&[1, -2, 3], b(5)).unwrap();
        // Wrong word count.
        assert!(PackedCodes::from_data_words(vec![0, 0], 3, b(5)).is_err());
        // Nonzero padding bit beyond 15 used bits.
        let mut words = p.data_words().to_vec();
        words[0] |= 1u64 << 40;
        assert!(PackedCodes::from_data_words(words, 3, b(5)).is_err());
        // Clean words round-trip.
        let re = PackedCodes::from_data_words(p.data_words().to_vec(), 3, b(5)).unwrap();
        assert_eq!(re, p);
    }

    #[test]
    fn packed_set_keeps_neighbours_and_padding_intact() {
        for k in [3u32, 7, 13, 17, 31] {
            let half = 1i64 << (k - 1);
            let mut r = rng::seeded(100 + u64::from(k));
            let signed: Vec<i64> = (0..100).map(|_| r.gen_range(-half..half)).collect();
            let mut p = PackedCodes::from_signed(&signed, b(k)).unwrap();
            for _ in 0..500 {
                let i = r.gen_range(0..100usize);
                let c = r.gen_range(-half..half);
                p.set(i, c);
                assert_eq!(p.get(i), c);
            }
            // Trailing/padding bits never became nonzero.
            let rem = (100 * k as usize) % 64;
            if rem != 0 {
                let last = *p.data_words().last().unwrap();
                assert_eq!(last >> rem, 0, "k={k}");
            }
            assert_eq!(*p.words.last().unwrap(), 0, "padding word k={k}");
        }
    }

    #[test]
    fn tiering_matches_bitwidth() {
        let s = |k: u32| CodeStore::with_backend(StoreBackend::Tiered, &grid_codes(k, 16, 1), b(k));
        assert_eq!(s(2).tier_name(), "i8");
        assert_eq!(s(8).tier_name(), "i8");
        assert_eq!(s(9).tier_name(), "i16");
        assert_eq!(s(16).tier_name(), "i16");
        assert_eq!(s(17).tier_name(), "packed");
        assert_eq!(s(32).tier_name(), "packed");
        let r = CodeStore::with_backend(StoreBackend::I64, &grid_codes(6, 16, 1), b(6));
        assert_eq!(r.tier_name(), "i64");
    }

    #[test]
    fn all_backends_agree_on_content() {
        for k in 2..=32u32 {
            let codes = grid_codes(k, 129, 7 + u64::from(k));
            let tiered = CodeStore::with_backend(StoreBackend::Tiered, &codes, b(k));
            let legacy = CodeStore::with_backend(StoreBackend::I64, &codes, b(k));
            assert_eq!(tiered.to_vec(), codes, "k={k}");
            assert_eq!(legacy.to_vec(), codes, "k={k}");
            for i in 0..codes.len() {
                assert_eq!(tiered.get(i), codes[i]);
            }
            let max = b(k).num_steps() as i64;
            assert_eq!(tiered.count_rails(max), legacy.count_rails(max), "k={k}");
            assert_eq!(
                tiered.to_packed().data_words(),
                legacy.to_packed().data_words(),
                "canonical packing must be backend-independent (k={k})"
            );
        }
    }

    #[test]
    fn set_and_get_roundtrip_across_tiers() {
        for k in [2u32, 8, 9, 16, 17, 32] {
            let codes = grid_codes(k, 65, 11);
            let max = b(k).num_steps() as i64;
            let mut s = CodeStore::with_backend(StoreBackend::Tiered, &codes, b(k));
            let mut r = rng::seeded(13);
            for _ in 0..200 {
                let i = r.gen_range(0..65usize);
                let q = r.gen_range(0..=max);
                s.set(i, q);
                assert_eq!(s.get(i), q, "k={k}");
            }
        }
    }

    #[test]
    fn flip_bit_matches_logical_xor_in_every_tier() {
        for k in [2u32, 5, 8, 11, 16, 21, 32] {
            let codes = grid_codes(k, 33, 17 + u64::from(k));
            for backend in [StoreBackend::Tiered, StoreBackend::I64] {
                let mut s = CodeStore::with_backend(backend, &codes, b(k));
                let mut expect = codes.clone();
                let mut r = rng::seeded(19);
                for _ in 0..300 {
                    let i = r.gen_range(0..33usize);
                    let bit = r.gen_range(0..k);
                    let got = s.flip_bit(i, bit);
                    expect[i] ^= 1i64 << bit;
                    assert_eq!(got, expect[i], "k={k} backend={backend:?}");
                    assert!((0..=b(k).num_steps() as i64).contains(&got));
                }
                assert_eq!(s.to_vec(), expect);
            }
        }
    }

    #[test]
    fn packed_flip_is_physically_one_word_bit() {
        let k = 21u32; // fields straddle word boundaries
        let codes = grid_codes(k, 40, 23);
        let mut s = CodeStore::with_backend(StoreBackend::Tiered, &codes, b(k));
        let before = s.to_packed();
        let elem = 3usize; // bits [63, 84): straddles words 0 and 1
        let bit = 2u32;
        s.flip_bit(elem, bit);
        let after = s.to_packed();
        let pos = elem * k as usize + bit as usize;
        let mut diff_bits = 0u32;
        for (i, (a, b_)) in before
            .data_words()
            .iter()
            .zip(after.data_words())
            .enumerate()
        {
            let d = a ^ b_;
            diff_bits += d.count_ones();
            if d != 0 {
                assert_eq!(i, pos / 64);
                assert_eq!(d, 1u64 << (pos % 64));
            }
        }
        assert_eq!(diff_bits, 1, "exactly one physical bit must change");
    }

    #[test]
    fn resident_bytes_shrink_with_the_tier() {
        let n = 1000usize;
        let k6 = CodeStore::with_backend(StoreBackend::Tiered, &grid_codes(6, n, 29), b(6));
        let k12 = CodeStore::with_backend(StoreBackend::Tiered, &grid_codes(12, n, 29), b(12));
        let k20 = CodeStore::with_backend(StoreBackend::Tiered, &grid_codes(20, n, 29), b(20));
        let ref64 = CodeStore::with_backend(StoreBackend::I64, &grid_codes(6, n, 29), b(6));
        assert_eq!(k6.resident_bytes(), 1000);
        assert_eq!(k12.resident_bytes(), 2000);
        assert_eq!(k20.resident_bytes(), (((1000 * 20) / 64) + 1 + 1) * 8);
        assert_eq!(ref64.resident_bytes(), 8000);
        assert!(k6.resident_bytes() * 4 <= ref64.resident_bytes());
        assert_eq!(k6.resident_bits_per_code(), 8);
        assert_eq!(k12.resident_bits_per_code(), 16);
        assert_eq!(ref64.resident_bits_per_code(), 64);
        // Packed: 20 logical bits cost ~20.2 physical (padding amortised).
        assert!(k20.resident_bits_per_code() >= 20 && k20.resident_bits_per_code() <= 22);
    }

    #[test]
    fn for_each_word_covers_every_resident_bit() {
        // A digest built on for_each_word must see any single stored-bit
        // change; spot-check by flipping one code bit per tier.
        for k in [6u32, 12, 24] {
            let codes = grid_codes(k, 50, 31);
            let mut s = CodeStore::with_backend(StoreBackend::Tiered, &codes, b(k));
            let collect = |s: &CodeStore| {
                let mut v = Vec::new();
                s.for_each_word(|w| v.push(w));
                v
            };
            let before = collect(&s);
            s.flip_bit(49, k - 1); // sign bit of the last element
            let after = collect(&s);
            assert_ne!(before, after, "k={k}");
            assert_eq!(before.len(), after.len());
        }
    }

    #[test]
    fn backend_override_round_trips() {
        // Serialised: this test owns the global for its duration only in
        // the sense that it restores the env-derived default afterwards.
        let initial = store_backend();
        set_store_backend(StoreBackend::I64);
        assert_eq!(store_backend(), StoreBackend::I64);
        set_store_backend(StoreBackend::Tiered);
        assert_eq!(store_backend(), StoreBackend::Tiered);
        set_store_backend(initial);
    }

    #[test]
    fn empty_store_is_well_behaved() {
        let s = CodeStore::with_backend(StoreBackend::Tiered, &[], b(6));
        assert!(s.is_empty());
        assert_eq!(s.resident_bytes(), 0);
        assert_eq!(s.to_vec(), Vec::<i64>::new());
        assert_eq!(s.count_rails(63), 0);
        assert_eq!(s.to_packed().data_words().len(), 0);
        let p = PackedCodes::from_signed(&[], b(20)).unwrap();
        assert_eq!(p.resident_bytes(), 8); // just the padding word
    }
}
