use std::error::Error;
use std::fmt;

/// Error type for quantisation operations.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantError {
    /// A bitwidth outside the supported `[2, 32]` range.
    InvalidBitwidth {
        /// The rejected bitwidth.
        bits: u32,
    },
    /// The tensor range used for calibration is not finite.
    NonFiniteRange {
        /// Calibrated minimum.
        min: f32,
        /// Calibrated maximum.
        max: f32,
    },
    /// The operand shapes disagree (e.g. gradient vs. parameter).
    ShapeMismatch {
        /// Human-readable operation name.
        op: &'static str,
        /// Left/parameter shape.
        lhs: Vec<usize>,
        /// Right/gradient shape.
        rhs: Vec<usize>,
    },
    /// The gradient (or another operand) contained NaN/Inf.
    NonFiniteOperand {
        /// Human-readable operation name.
        op: &'static str,
    },
    /// A physical code-store payload failed validation (wrong word count,
    /// nonzero padding bits, or a code outside the k-bit range).
    CorruptStore {
        /// Human-readable description of the inconsistency.
        reason: &'static str,
    },
    /// An underlying tensor kernel failed.
    Tensor(apt_tensor::TensorError),
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::InvalidBitwidth { bits } => {
                write!(f, "bitwidth {bits} outside supported range [2, 32]")
            }
            QuantError::NonFiniteRange { min, max } => {
                write!(f, "calibration range [{min}, {max}] is not finite")
            }
            QuantError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: incompatible shapes {lhs:?} and {rhs:?}")
            }
            QuantError::NonFiniteOperand { op } => {
                write!(f, "{op}: operand contains NaN or infinity")
            }
            QuantError::CorruptStore { reason } => {
                write!(f, "corrupt code store: {reason}")
            }
            QuantError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl Error for QuantError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            QuantError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<apt_tensor::TensorError> for QuantError {
    fn from(e: apt_tensor::TensorError) -> Self {
        QuantError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = vec![
            QuantError::InvalidBitwidth { bits: 1 },
            QuantError::NonFiniteRange {
                min: f32::NAN,
                max: 1.0,
            },
            QuantError::ShapeMismatch {
                op: "sgd_update",
                lhs: vec![2],
                rhs: vec![3],
            },
            QuantError::NonFiniteOperand { op: "sgd_update" },
            QuantError::CorruptStore {
                reason: "nonzero padding",
            },
            QuantError::Tensor(apt_tensor::TensorError::IndexOutOfBounds { index: 1, bound: 0 }),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn source_chains_tensor_error() {
        let e = QuantError::from(apt_tensor::TensorError::IndexOutOfBounds { index: 1, bound: 0 });
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&QuantError::InvalidBitwidth { bits: 0 }).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QuantError>();
    }
}
