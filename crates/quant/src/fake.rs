//! One-shot "fake quantisation" and extreme-quantisation helpers.
//!
//! These power the Table I comparators, which — unlike APT — keep an fp32
//! master copy and only *view* the parameters through a quantised lens:
//!
//! * [`fake_quantize`] — quantise→dequantise at `k` bits (DoReFa/TTQ-style
//!   weight views, WAGE-style activations).
//! * [`ternarize`] — TWN/TernGrad-style `{−s, 0, +s}` projection.
//! * [`binarize`] — BNN-style `{−s, +s}` projection.
//!
//! These helpers work entirely in the float domain and never materialise a
//! [`crate::CodeStore`]: the baselines they model keep the fp32 master copy
//! resident, so their training memory stays 32 bits per weight. That is
//! precisely the contrast to APT's packed stores that the `memory` bench
//! measures.

use crate::{AffineQuantizer, Bitwidth};
use apt_tensor::{par, Tensor};

/// Elements per parallel chunk. Fixed so chunk boundaries (and therefore
/// results, bit-for-bit) never depend on the thread count.
const FQ_CHUNK: usize = 16 * 1024;

/// Quantises a tensor to `bits` precision and immediately dequantises,
/// returning a float tensor whose values sit on the affine grid. The range
/// is calibrated from the tensor itself (Eq. 2). Calibration is serial;
/// the quantise→dequantise map runs chunked on the [`apt_tensor::par`]
/// pool (pure per-element, bit-identical for any thread count).
///
/// # Errors
///
/// Returns [`crate::QuantError::NonFiniteRange`] for empty/non-finite input.
pub fn fake_quantize(t: &Tensor, bits: Bitwidth) -> crate::Result<Tensor> {
    let q = AffineQuantizer::from_tensor(t, bits)?;
    let mut out = Tensor::zeros(t.dims());
    let rd = t.data();
    par::for_each_chunk_mut(out.data_mut(), FQ_CHUNK, |ci, chunk| {
        let base = ci * FQ_CHUNK;
        for (j, o) in chunk.iter_mut().enumerate() {
            *o = q.dequantize_value(q.quantize_value(rd[base + j]));
        }
    });
    Ok(out)
}

/// Projects onto `{−s, 0, +s}` with threshold `0.7·mean(|t|)` and scale `s`
/// set to the mean magnitude of the surviving weights — the TWN heuristic
/// (Li et al. \[16\]), also the projection used by TernGrad for gradients.
///
/// Returns the all-zero tensor unchanged.
pub fn ternarize(t: &Tensor) -> Tensor {
    let n = t.len();
    if n == 0 {
        return t.clone();
    }
    let mean_abs: f32 = t.data().iter().map(|x| x.abs()).sum::<f32>() / n as f32;
    let thresh = 0.7 * mean_abs;
    let (mut sum, mut count) = (0.0f64, 0usize);
    for &x in t.data() {
        if x.abs() > thresh {
            sum += x.abs() as f64;
            count += 1;
        }
    }
    let s = if count == 0 {
        0.0
    } else {
        (sum / count as f64) as f32
    };
    t.map(|x| {
        if x > thresh {
            s
        } else if x < -thresh {
            -s
        } else {
            0.0
        }
    })
}

/// Projects onto `{−s, +s}` with `s = mean(|t|)` — the BNN / BinaryConnect
/// deterministic binarisation (Hubara et al. \[9\]).
pub fn binarize(t: &Tensor) -> Tensor {
    let n = t.len();
    if n == 0 {
        return t.clone();
    }
    let s: f32 = t.data().iter().map(|x| x.abs()).sum::<f32>() / n as f32;
    t.map(|x| if x >= 0.0 { s } else { -s })
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_tensor::rng::{normal, seeded};

    #[test]
    fn fake_quantize_bounds_error_by_half_eps() {
        let t = normal(&[256], 1.0, &mut seeded(1));
        let fq = fake_quantize(&t, Bitwidth::new(8).unwrap()).unwrap();
        let q = AffineQuantizer::from_tensor(&t, Bitwidth::new(8).unwrap()).unwrap();
        for (a, b) in t.data().iter().zip(fq.data()) {
            assert!((a - b).abs() <= q.eps() / 2.0 + 1e-6);
        }
    }

    #[test]
    fn fake_quantize_reduces_distinct_values() {
        let t = normal(&[4096], 1.0, &mut seeded(2));
        let fq = fake_quantize(&t, Bitwidth::new(3).unwrap()).unwrap();
        let mut vals: Vec<i64> = fq.data().iter().map(|&x| (x * 1e6) as i64).collect();
        vals.sort_unstable();
        vals.dedup();
        assert!(
            vals.len() <= 8,
            "3-bit grid must have ≤8 levels, got {}",
            vals.len()
        );
    }

    #[test]
    fn fake_quantize_32bit_is_near_identity() {
        let t = normal(&[64], 1.0, &mut seeded(3));
        let fq = fake_quantize(&t, Bitwidth::MAX).unwrap();
        for (a, b) in t.data().iter().zip(fq.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn ternarize_produces_three_levels() {
        let t = normal(&[1024], 1.0, &mut seeded(4));
        let tt = ternarize(&t);
        let mut levels: Vec<i64> = tt.data().iter().map(|&x| (x * 1e6) as i64).collect();
        levels.sort_unstable();
        levels.dedup();
        assert!(levels.len() <= 3, "got {} levels", levels.len());
        assert!(tt.data().contains(&0.0));
        assert!(tt.data().iter().any(|&x| x > 0.0));
        assert!(tt.data().iter().any(|&x| x < 0.0));
    }

    #[test]
    fn ternarize_zero_tensor_is_zero() {
        let t = Tensor::zeros(&[16]);
        assert_eq!(ternarize(&t).data(), t.data());
        let empty = Tensor::from_vec(vec![], &[0]).unwrap();
        assert_eq!(ternarize(&empty).len(), 0);
    }

    #[test]
    fn binarize_produces_two_levels_preserving_sign() {
        let t = Tensor::from_slice(&[-3.0, -0.1, 0.2, 4.0]);
        let b = binarize(&t);
        let s = (3.0 + 0.1 + 0.2 + 4.0) / 4.0;
        assert_eq!(b.data(), &[-s, -s, s, s]);
        let empty = Tensor::from_vec(vec![], &[0]).unwrap();
        assert_eq!(binarize(&empty).len(), 0);
    }
}
