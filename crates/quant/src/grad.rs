//! `k`-bit gradient codec for distributed exchange (RCT-style quantised
//! communication).
//!
//! Data-parallel ranks cannot afford to ship fp32 gradients: a replica
//! exchange costs `32N` bits per step per peer. This module encodes a
//! gradient tensor as **symmetric `k`-bit signed codes on a shared scale**,
//! stored in the same [`CodeStore`] tiers the weights use and serialised
//! through the canonical [`PackedCodes`] words, so `k = 4` traffic really
//! is one eighth of fp32 on the wire.
//!
//! ## Encoding
//!
//! Given the step's global gradient magnitude `gmax` (an all-reduce *max*,
//! which is order-independent and therefore deterministic), every rank
//! uses the same scale
//!
//! ```text
//! s = gmax / (2^(k−1) − 1)
//! ```
//!
//! and encodes `c = clamp(round((g + r) / s), −m, m)` with `m = 2^(k−1)−1`.
//! The clamp range is symmetric — the pattern `−2^(k−1)` is never
//! produced — so a sum of `N` rank codes is bounded by `N·m` and fits
//! exactly in `k + ceil(log2 N)` bits: the reduce can stay in the integer
//! domain (DQT-style) with **no rounding and no overflow**, which is what
//! makes the reduction bit-exact regardless of arrival order.
//!
//! ## Error feedback
//!
//! The quantisation error `r' = (g + r) − c·s` is carried to the next step
//! (1-bit-SGD / EF-SGD style residual): nothing the quantiser drops is
//! lost, it is just delayed. The residual state lives with the caller —
//! one `Vec<f32>` per parameter per rank.

use crate::{Bitwidth, CodeStore, PackedCodes};

/// Shared-scale symmetric `k`-bit gradient quantiser.
///
/// Stateless: the per-parameter error-feedback residual is owned by the
/// caller and threaded through [`encode`](GradCodec::encode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GradCodec {
    bits: Bitwidth,
}

impl GradCodec {
    /// Creates a codec at `bits` precision.
    pub fn new(bits: Bitwidth) -> Self {
        GradCodec { bits }
    }

    /// The codec's bitwidth.
    pub fn bits(&self) -> Bitwidth {
        self.bits
    }

    /// Largest code magnitude: `m = 2^(k−1) − 1` (symmetric range).
    pub fn max_mag(&self) -> i64 {
        (1i64 << (self.bits.get() - 1)) - 1
    }

    /// The shared scale for a step whose global gradient magnitude is
    /// `gmax`. Returns `0.0` when `gmax` is zero or non-finite — the
    /// all-zero-codes sentinel every rank agrees on.
    pub fn scale(&self, gmax: f32) -> f32 {
        if gmax.is_finite() && gmax > 0.0 {
            gmax / self.max_mag() as f32
        } else {
            0.0
        }
    }

    /// Bitwidth wide enough to hold any sum of `world` codes from this
    /// codec: `k + ceil(log2 world)`, clamped into the legal `[2, 32]`
    /// range.
    ///
    /// # Errors
    ///
    /// Returns [`crate::QuantError`] when the sum width would exceed 32 bits
    /// (`k + ceil(log2 world) > 32`).
    pub fn sum_bits(&self, world: usize) -> crate::Result<Bitwidth> {
        let extra = usize::BITS - world.max(1).next_power_of_two().leading_zeros() - 1;
        Bitwidth::new(self.bits.get() + extra)
    }

    /// Quantises `grad + residual` onto the shared `scale` grid, updating
    /// `residual` with the error feedback. Returns the codes in a
    /// [`CodeStore`] (process-backend tiering, like every other store).
    ///
    /// A `scale` of `0.0` produces all-zero codes and banks the entire
    /// input into the residual.
    ///
    /// # Panics
    ///
    /// Debug-asserts `grad.len() == residual.len()`.
    pub fn encode(&self, grad: &[f32], residual: &mut [f32], scale: f32) -> CodeStore {
        debug_assert_eq!(grad.len(), residual.len());
        let m = self.max_mag();
        let half = 1i64 << (self.bits.get() - 1);
        let mut raw = vec![0i64; grad.len()];
        for (i, (&g, r)) in grad.iter().zip(residual.iter_mut()).enumerate() {
            let a = g + *r;
            let c = if scale > 0.0 && a.is_finite() {
                let q = (a / scale).round() as i64;
                q.clamp(-m, m)
            } else {
                0
            };
            *r = a - c as f32 * scale;
            raw[i] = c + half;
        }
        CodeStore::from_codes(&raw, self.bits)
    }

    /// Dequantises signed codes back to gradient values: `g = c · scale`.
    pub fn decode(&self, store: &CodeStore, scale: f32) -> Vec<f32> {
        let half = 1i64 << (self.bits.get() - 1);
        (0..store.len())
            .map(|i| (store.get(i) - half) as f32 * scale)
            .collect()
    }

    /// Signed codes of a store produced by [`encode`](GradCodec::encode) —
    /// the integer-domain values peers accumulate.
    pub fn signed_codes(&self, store: &CodeStore) -> Vec<i64> {
        let half = 1i64 << (self.bits.get() - 1);
        (0..store.len()).map(|i| store.get(i) - half).collect()
    }

    /// Serialises a store to its canonical wire words (backend-independent
    /// [`PackedCodes`] data words).
    pub fn to_wire(&self, store: &CodeStore) -> Vec<u64> {
        store.to_packed().data_words().to_vec()
    }

    /// Deserialises wire words back into signed codes.
    ///
    /// # Errors
    ///
    /// Returns [`crate::QuantError::CorruptStore`] on a word count / padding
    /// mismatch.
    pub fn from_wire(&self, words: Vec<u64>, len: usize) -> crate::Result<Vec<i64>> {
        Ok(PackedCodes::from_data_words(words, len, self.bits)?.to_signed_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StoreBackend;
    use apt_tensor::rng;
    use proptest::prelude::*;
    use rand::Rng;

    fn b(k: u32) -> Bitwidth {
        Bitwidth::new(k).unwrap()
    }

    #[test]
    fn zero_scale_banks_everything_into_residual() {
        let codec = GradCodec::new(b(4));
        let grad = [0.5f32, -0.25, 1.0];
        let mut residual = vec![0.0f32; 3];
        let store = codec.encode(&grad, &mut residual, 0.0);
        assert_eq!(codec.signed_codes(&store), vec![0, 0, 0]);
        assert_eq!(residual, grad);
    }

    #[test]
    fn error_feedback_conserves_mass() {
        // g + r_in == c·s + r_out exactly (all ops are f32 arithmetic on
        // both sides of the identity).
        let codec = GradCodec::new(b(3));
        let mut r = rng::seeded(5);
        let grad: Vec<f32> = (0..64).map(|_| r.gen_range(-1.0f32..1.0)).collect();
        let mut residual: Vec<f32> = (0..64).map(|_| r.gen_range(-0.1f32..0.1)).collect();
        let before: Vec<f32> = grad.iter().zip(&residual).map(|(g, r)| g + r).collect();
        let scale = codec.scale(1.1);
        let store = codec.encode(&grad, &mut residual, scale);
        let decoded = codec.decode(&store, scale);
        for ((a, d), res) in before.iter().zip(&decoded).zip(&residual) {
            assert_eq!(*a, d + res, "identity must hold bitwise in f32");
        }
    }

    #[test]
    fn scale_handles_degenerate_gmax() {
        let codec = GradCodec::new(b(8));
        assert_eq!(codec.scale(0.0), 0.0);
        assert_eq!(codec.scale(-1.0), 0.0);
        assert_eq!(codec.scale(f32::NAN), 0.0);
        assert_eq!(codec.scale(f32::INFINITY), 0.0);
        assert_eq!(codec.scale(127.0), 1.0);
    }

    #[test]
    fn sum_bits_covers_world_sums() {
        let codec = GradCodec::new(b(4));
        assert_eq!(codec.sum_bits(1).unwrap().get(), 4);
        assert_eq!(codec.sum_bits(2).unwrap().get(), 5);
        assert_eq!(codec.sum_bits(3).unwrap().get(), 6);
        assert_eq!(codec.sum_bits(4).unwrap().get(), 6);
        assert_eq!(codec.sum_bits(8).unwrap().get(), 7);
        // N·m fits the sum width's symmetric range.
        for world in 1..=8usize {
            let ks = codec.sum_bits(world).unwrap();
            let bound = world as i64 * codec.max_mag();
            let half = 1i64 << (ks.get() - 1);
            assert!(bound < half, "world={world}");
        }
        // 16-bit grads for 65536 ranks would need 32 bits: still legal.
        assert!(GradCodec::new(b(16)).sum_bits(1 << 16).is_ok());
        assert!(GradCodec::new(b(32)).sum_bits(2).is_err());
    }

    #[test]
    fn saturating_grads_clamp_symmetrically() {
        let codec = GradCodec::new(b(2)); // m = 1
        let grad = [10.0f32, -10.0];
        let mut residual = vec![0.0f32; 2];
        let store = codec.encode(&grad, &mut residual, codec.scale(1.0));
        assert_eq!(codec.signed_codes(&store), vec![1, -1]);
        // The clamped mass is all in the residual.
        assert_eq!(residual, vec![9.0, -9.0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Roundtrip across every exchange bitwidth and both store
        /// backends: wire words decode to the exact signed codes that were
        /// encoded, and the wire is backend-independent.
        #[test]
        fn wire_roundtrip_across_bitwidths_and_backends(
            seed in 0u64..500,
            k in 2u32..=16,
            n in 1usize..200,
        ) {
            let codec = GradCodec::new(b(k));
            let mut r = rng::seeded(seed);
            let grad: Vec<f32> = (0..n).map(|_| r.gen_range(-2.0f32..2.0)).collect();
            let gmax = grad.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let scale = codec.scale(gmax);
            let mut stores = Vec::new();
            for backend in [StoreBackend::Tiered, StoreBackend::I64] {
                // encode() uses the process backend; rebuild per backend
                // from the same codes to pin backend independence.
                let mut residual = vec![0.0f32; n];
                let tiered = codec.encode(&grad, &mut residual, scale);
                let raw: Vec<i64> = (0..tiered.len()).map(|i| tiered.get(i)).collect();
                stores.push(CodeStore::with_backend(backend, &raw, b(k)));
            }
            let codes = codec.signed_codes(&stores[0]);
            prop_assert_eq!(&codec.signed_codes(&stores[1]), &codes);
            for store in &stores {
                let wire = codec.to_wire(store);
                let back = codec.from_wire(wire.clone(), n).unwrap();
                prop_assert_eq!(&back, &codes);
                // Physical wire width is the packed k-bit footprint.
                prop_assert_eq!(
                    wire.len(),
                    (n * k as usize).div_ceil(64)
                );
            }
            // Every code obeys the symmetric bound.
            let m = codec.max_mag();
            prop_assert!(codes.iter().all(|&c| -m <= c && c <= m));
        }

        /// Decode of the integer sum equals the mean gradient every rank
        /// applies: integer accumulation introduces no error beyond the
        /// per-rank quantisation already banked in residuals.
        #[test]
        fn integer_sum_is_exact(
            seed in 0u64..200,
            k in 2u32..=8,
            world in 1usize..5,
        ) {
            let codec = GradCodec::new(b(k));
            let n = 37usize;
            let mut r = rng::seeded(seed);
            let mut sum = vec![0i64; n];
            let mut per_rank = Vec::new();
            for _ in 0..world {
                let grad: Vec<f32> = (0..n).map(|_| r.gen_range(-1.0f32..1.0)).collect();
                let mut residual = vec![0.0f32; n];
                let store = codec.encode(&grad, &mut residual, codec.scale(1.0));
                let codes = codec.signed_codes(&store);
                for (s, c) in sum.iter_mut().zip(&codes) {
                    *s += c;
                }
                per_rank.push(codes);
            }
            let ks = codec.sum_bits(world).unwrap();
            // The sum fits the widened range and survives its own wire trip.
            let packed = PackedCodes::from_signed(&sum, ks).unwrap();
            let back = PackedCodes::from_data_words(
                packed.data_words().to_vec(), n, ks).unwrap();
            prop_assert_eq!(back.to_signed_vec(), sum);
        }
    }
}
