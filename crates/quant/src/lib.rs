//! # apt-quant
//!
//! Affine quantisation substrate for the Adaptive Precision Training (APT)
//! reproduction (Huang, Luo, Zhou — ICDCS 2020).
//!
//! The paper's numerical core lives here:
//!
//! * [`Bitwidth`] — a validated precision in `[2, 32]` bits (the range
//!   Algorithm 1 clamps to).
//! * [`AffineQuantizer`] — the `r = S·(q − Z)` mapping of Jacob et al.
//!   \[11\], calibrated from a tensor's `(min, max)` range; its scale *is*
//!   the paper's minimum resolution `ε` (Eq. 2).
//! * [`QuantizedTensor`] — a parameter tensor whose **source of truth is the
//!   integer codes**: there is no fp32 master copy, which is how APT saves
//!   training memory (paper §III, Table I). Its
//!   [`sgd_update`](QuantizedTensor::sgd_update) implements the
//!   underflow-prone update of Eq. 3 exactly.
//! * [`CodeStore`] / [`PackedCodes`] — the *physical* storage behind the
//!   codes: an `i8`/`i16` fast tier and bit-packed `u64` words, so a
//!   `k`-bit layer actually occupies about `k` bits per weight of process
//!   memory instead of a simulated 64. [`QuantizedTensor::resident_bytes`]
//!   reports the real footprint next to the modeled
//!   [`memory_bits`](QuantizedTensor::memory_bits).
//! * [`WeightPanel`] / [`ActPanel`] — GEMM-ready integer panels for the
//!   dequant-free serving lane: codes unpacked once at session load
//!   (weights) or per request (activations) into the centered row-major
//!   layout the `apt_tensor::ops::int_gemm` kernels consume.
//! * [`fake`] — one-shot "fake quantisation" (quantise→dequantise in float),
//!   plus ternarisation/binarisation; these power the fp32-master-copy
//!   baselines of Table I (DoReFa/TTQ/TWN/BNN/TernGrad style).
//! * [`RoundingMode`] — truncation (the paper's Eq. 3), round-to-nearest,
//!   and stochastic rounding (Gupta et al. \[3\]) for ablations.
//!
//! ## Example: quantisation underflow (the phenomenon APT monitors)
//!
//! ```
//! use apt_quant::{Bitwidth, QuantizedTensor, RoundingMode};
//! use apt_tensor::Tensor;
//!
//! let w = Tensor::from_slice(&[-1.0, -0.5, 0.0, 0.5, 1.0]);
//! let mut q = QuantizedTensor::from_tensor(&w, Bitwidth::new(4)?)?;
//! let eps = q.eps();
//! // A gradient step far smaller than ε is lost entirely: underflow.
//! let tiny = Tensor::full(&[5], eps * 0.01);
//! let stats = q.sgd_update(&tiny, 1.0, RoundingMode::Truncate, &mut apt_tensor::rng::seeded(0))?;
//! assert_eq!(stats.underflowed, 5);
//! # Ok::<(), apt_quant::QuantError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod bitwidth;
mod code_store;
mod error;
pub mod fake;
mod grad;
mod panel;
mod per_channel;
mod quantizer;
mod rounding;
mod tensor_q;

pub use bitwidth::Bitwidth;
pub use code_store::{set_store_backend, store_backend, CodeStore, PackedCodes, StoreBackend};
pub use error::QuantError;
pub use grad::GradCodec;
pub use panel::{ActPanel, WeightPanel};
pub use per_channel::PerChannelQuantized;
pub use quantizer::AffineQuantizer;
pub use rounding::RoundingMode;
pub use tensor_q::{QuantizedTensor, UpdateStats};

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, QuantError>;
