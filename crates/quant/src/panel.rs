//! GEMM-ready packed weight panels for the dequant-free serving lane.
//!
//! A [`WeightPanel`] is built **once per session load** from a parameter's
//! [`CodeStore`](crate::CodeStore)-backed codes: the codes are centered
//! (`wq = q − 2^(k−1)`) and laid out as row-major `i8`/`i16` rows over the
//! shared GEMM dimension, with the per-output-channel rescale metadata
//! (`Sw_o`, `dw_o = 2^(k−1) − Zw_o`, `wsum_o = Σ_j wq_oj`) alongside.
//! Per-tensor parameters splat one scale into every channel slot, so the
//! integer kernels in [`apt_tensor::ops::int_gemm`] never branch on the
//! calibration flavour.
//!
//! An [`ActPanel`] is the per-request counterpart: each activation row is
//! calibrated to its own 8-bit affine grid, quantised branch-free, and
//! stored centered with its `(Sx_i, dx_i, asum_i)` triple. A forward pass
//! through the integer lane is then panel build → fused
//! [`WeightPanel::gemm_rescale`] → f32 output; the f32 weights are never
//! materialised.
//!
//! ## Exactness
//!
//! The weight side of the lane is exact: `Sw·(wq + dw)` reconstructs the
//! same value the f32 lane reads, and the integer bracket is exact in
//! `i64`. The activation side re-quantises the input to 8 bits, so the
//! lane as a whole is *bit-close*, not bit-exact, to the f32 forward —
//! except when the activations already sit on their own 8-bit grid (then
//! requantisation is lossless and the only divergence is the final
//! f64-vs-f32 rounding of the scale product). Panel construction refuses
//! (returns `None`) when the lane cannot be sound: `k > 16` weights, rows
//! longer than [`MAX_I8_DOT_LEN`] in the `i8` tier, or shape mismatches;
//! callers fall back to the cached-f32 lane.

use crate::{AffineQuantizer, Bitwidth, PerChannelQuantized, QuantError, QuantizedTensor};
use apt_tensor::ops::int_gemm::{self, IntRescale, MAX_I8_DOT_LEN};

/// Physical tier of a panel's centered weight codes.
#[derive(Debug, Clone)]
enum PanelCodes {
    /// `k ≤ 8`: one byte per code, `i8 × i8 → i32` kernel.
    I8(Vec<i8>),
    /// `8 < k ≤ 16`: two bytes per code, `i8 × i16 → i64` kernel.
    I16(Vec<i16>),
}

/// A quantised parameter unpacked into a GEMM-ready integer panel:
/// row-major centered codes (one output channel per row) plus the
/// per-channel rescale metadata the fused kernels consume.
#[derive(Debug, Clone)]
pub struct WeightPanel {
    codes: PanelCodes,
    rows: usize,
    cols: usize,
    w_scale: Vec<f32>,
    w_dw: Vec<i32>,
    w_sum: Vec<i64>,
}

impl WeightPanel {
    /// Builds a panel from a per-tensor quantised parameter, splatting the
    /// single `(S, Z)` into every output-channel slot.
    ///
    /// Returns `None` when the integer lane cannot serve this parameter:
    /// `rows·cols` disagrees with the tensor volume, `k > 16`, or the
    /// shared dimension exceeds [`MAX_I8_DOT_LEN`] in the `i8` tier.
    pub fn from_quantized(q: &QuantizedTensor, rows: usize, cols: usize) -> Option<Self> {
        if q.len() != rows * cols {
            return None;
        }
        let quantizers = vec![*q.quantizer(); rows.max(1)];
        Self::build(&q.codes(), &quantizers, rows, cols, q.bits())
    }

    /// Builds a panel from a per-output-channel quantised parameter
    /// (axis-0 channels become panel rows).
    ///
    /// Returns `None` under the same conditions as
    /// [`from_quantized`](Self::from_quantized), or when the channel count
    /// disagrees with `rows`.
    pub fn from_per_channel(q: &PerChannelQuantized, rows: usize, cols: usize) -> Option<Self> {
        if q.len() != rows * cols || q.channels() != rows {
            return None;
        }
        Self::build(&q.codes(), q.quantizers(), rows, cols, q.bits())
    }

    fn build(
        codes: &[i64],
        quantizers: &[AffineQuantizer],
        rows: usize,
        cols: usize,
        bits: Bitwidth,
    ) -> Option<Self> {
        let k = bits.get();
        if k > 16 {
            return None;
        }
        let half = 1i64 << (k - 1);
        let mut w_scale = Vec::with_capacity(rows);
        let mut w_dw = Vec::with_capacity(rows);
        let mut w_sum = Vec::with_capacity(rows);
        for q in quantizers.iter().take(rows) {
            w_scale.push(q.eps());
            w_dw.push((half - q.zero_point()) as i32);
            w_sum.push(0i64);
        }
        let panel = if k <= 8 {
            if cols > MAX_I8_DOT_LEN {
                return None;
            }
            let mut data = Vec::with_capacity(codes.len());
            for (i, &q) in codes.iter().enumerate() {
                let wq = q - half;
                data.push(wq as i8);
                w_sum[i / cols.max(1)] += wq;
            }
            PanelCodes::I8(data)
        } else {
            let mut data = Vec::with_capacity(codes.len());
            for (i, &q) in codes.iter().enumerate() {
                let wq = q - half;
                data.push(wq as i16);
                w_sum[i / cols.max(1)] += wq;
            }
            PanelCodes::I16(data)
        };
        Some(WeightPanel {
            codes: panel,
            rows,
            cols,
            w_scale,
            w_dw,
            w_sum,
        })
    }

    /// Output channels (panel rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Shared GEMM dimension (panel row length).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Physical bytes this panel keeps resident: the centered codes plus
    /// the per-channel `(scale, dw, sum)` metadata. Counted into session
    /// `resident_bytes` so registry eviction budgets stay honest.
    pub fn resident_bytes(&self) -> u64 {
        let code_bytes = match &self.codes {
            PanelCodes::I8(v) => v.len() as u64,
            PanelCodes::I16(v) => v.len() as u64 * 2,
        };
        code_bytes + self.rows as u64 * (4 + 4 + 8)
    }

    /// Name of the physical code tier (`"i8"` or `"i16"`), for diagnostics.
    pub fn tier_name(&self) -> &'static str {
        match &self.codes {
            PanelCodes::I8(_) => "i8",
            PanelCodes::I16(_) => "i16",
        }
    }

    /// The fused integer forward: `out[act.rows × self.rows] =
    /// dequant(act) · dequant(self)ᵀ (+ bias)`, computed entirely on
    /// integer codes with one rescale per output element.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::ShapeMismatch`] when the panels' shared
    /// dimensions, the output slice, or the bias length disagree.
    pub fn gemm_rescale(
        &self,
        act: &ActPanel,
        out: &mut [f32],
        bias: Option<&[f32]>,
    ) -> crate::Result<()> {
        self.gemm_rescale_rows(act, out, bias, 0, self.rows)
    }

    /// [`gemm_rescale`](Self::gemm_rescale) restricted to the contiguous
    /// panel rows `[row_start, row_end)` — grouped convolution serves each
    /// group from its own row slice of one shared panel. `bias`, when
    /// present, covers just the selected rows.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::ShapeMismatch`] when the row range is out of
    /// bounds or the panels' shared dimensions, the output slice, or the
    /// bias length disagree.
    pub fn gemm_rescale_rows(
        &self,
        act: &ActPanel,
        out: &mut [f32],
        bias: Option<&[f32]>,
        row_start: usize,
        row_end: usize,
    ) -> crate::Result<()> {
        let n = row_end.saturating_sub(row_start);
        if row_start > row_end
            || row_end > self.rows
            || act.cols != self.cols
            || out.len() != act.rows * n
            || bias.is_some_and(|b| b.len() != n)
        {
            return Err(QuantError::ShapeMismatch {
                op: "gemm_rescale",
                lhs: vec![act.rows, act.cols],
                rhs: vec![row_start, row_end, self.cols],
            });
        }
        let p = IntRescale {
            w_scale: &self.w_scale[row_start..row_end],
            w_dw: &self.w_dw[row_start..row_end],
            w_sum: &self.w_sum[row_start..row_end],
            act_scale: &act.scale,
            act_dx: &act.dx,
            act_sum: &act.sum,
            bias,
        };
        let (c0, c1) = (row_start * self.cols, row_end * self.cols);
        match &self.codes {
            PanelCodes::I8(w) => {
                int_gemm::gemm_i8_rescale(&act.codes, &w[c0..c1], out, act.rows, n, self.cols, &p)
            }
            PanelCodes::I16(w) => {
                int_gemm::gemm_i16_rescale(&act.codes, &w[c0..c1], out, act.rows, n, self.cols, &p)
            }
        }
        Ok(())
    }
}

/// A batch of activation rows quantised to per-row 8-bit affine grids:
/// centered codes plus the `(Sx_i, dx_i, asum_i)` rescale triple per row.
/// Built per request — the integer lane's only per-forward quantisation.
#[derive(Debug, Clone)]
pub struct ActPanel {
    codes: Vec<i8>,
    rows: usize,
    cols: usize,
    scale: Vec<f32>,
    dx: Vec<i32>,
    sum: Vec<i64>,
}

impl ActPanel {
    /// Quantises `rows` contiguous rows of `cols` floats each, calibrating
    /// every row to its own min/max (always widened to include zero, so
    /// padding and ReLU zeros stay exact).
    ///
    /// Returns `None` when `data` disagrees with the shape or any value is
    /// non-finite — the caller falls back to the f32 lane, which
    /// propagates NaN/Inf faithfully instead of silently flushing it onto
    /// a grid rail.
    pub fn quantize_rows(data: &[f32], rows: usize, cols: usize) -> Option<Self> {
        if data.len() != rows * cols {
            return None;
        }
        let bits8 = Bitwidth::new(8).expect("8 is a valid bitwidth");
        let mut codes = Vec::with_capacity(data.len());
        let mut scale = Vec::with_capacity(rows);
        let mut dx = Vec::with_capacity(rows);
        let mut sum = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &data[r * cols..(r + 1) * cols];
            let (mut finite, mut lo, mut hi) = (true, f32::INFINITY, f32::NEG_INFINITY);
            for &v in row {
                finite &= v.is_finite();
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if !finite {
                return None;
            }
            let (lo, hi) = if cols == 0 { (0.0, 0.0) } else { (lo, hi) };
            let q = AffineQuantizer::from_range(lo, hi, bits8).ok()?;
            let (s, z) = (q.eps(), q.zero_point());
            let (clamp_lo, clamp_hi) = (-(z as f32), (255 - z) as f32);
            let mut asum = 0i64;
            for &v in row {
                let t = (v / s).round().clamp(clamp_lo, clamp_hi);
                let aq = (t as i32 + z as i32 - 128) as i8;
                codes.push(aq);
                asum += i64::from(aq);
            }
            scale.push(s);
            dx.push((128 - z) as i32);
            sum.push(asum);
        }
        Some(ActPanel {
            codes,
            rows,
            cols,
            scale,
            dx,
            sum,
        })
    }

    /// Number of activation rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row length (shared GEMM dimension).
    pub fn cols(&self) -> usize {
        self.cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_tensor::rng::{normal, seeded};
    use apt_tensor::{ops, Tensor};

    fn b(k: u32) -> Bitwidth {
        Bitwidth::new(k).unwrap()
    }

    /// f32 reference: dequantise the weights, matmul_a_bt, add bias.
    fn f32_reference(x: &Tensor, w: &Tensor, bias: Option<&[f32]>) -> Vec<f32> {
        let mut y = ops::matmul_a_bt(x, w).unwrap();
        if let Some(bv) = bias {
            let out = w.dims()[0];
            for row in y.data_mut().chunks_mut(out) {
                for (v, b_) in row.iter_mut().zip(bv) {
                    *v += b_;
                }
            }
        }
        y.data().to_vec()
    }

    fn assert_close(got: &[f32], want: &[f32], tol: f32) {
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            let bound = tol * w.abs().max(1.0);
            assert!((g - w).abs() <= bound, "[{i}] got={g} want={w} tol={bound}");
        }
    }

    /// Analytic bound check: the weight side is exact, so the divergence
    /// is at most the activation rounding (≤ εx_i/2 per element) pushed
    /// through the dequantised weights: `|Δy[i,o]| ≤ εx_i/2 · Σ_j |ŵ_oj|`.
    fn assert_within_requant_bound(got: &[f32], want: &[f32], x: &Tensor, w_deq: &Tensor) {
        let (rows, cols) = (x.dims()[0], x.dims()[1]);
        let out = w_deq.dims()[0];
        for i in 0..rows {
            let row = &x.data()[i * cols..(i + 1) * cols];
            let (lo, hi) = row
                .iter()
                .fold((0.0f32, 0.0f32), |(a, b), &v| (a.min(v), b.max(v)));
            let eps_x = ((hi - lo) / 255.0).max(1e-12);
            for o in 0..out {
                let wsum: f32 = w_deq.data()[o * cols..(o + 1) * cols]
                    .iter()
                    .map(|v| v.abs())
                    .sum();
                let bound = 0.5 * eps_x * wsum * 1.001 + 1e-4;
                let (g, want_v) = (got[i * out + o], want[i * out + o]);
                assert!(
                    (g - want_v).abs() <= bound,
                    "[{i},{o}] got={g} want={want_v} bound={bound}"
                );
            }
        }
    }

    #[test]
    fn per_tensor_panel_matches_f32_lane() {
        let mut r = seeded(21);
        for k in [2u32, 4, 8, 12, 16] {
            let w = normal(&[6, 40], 1.0, &mut r);
            let x = normal(&[5, 40], 1.0, &mut r);
            let qw = QuantizedTensor::from_tensor(&w, b(k)).unwrap();
            let panel = WeightPanel::from_quantized(&qw, 6, 40).unwrap();
            assert_eq!(panel.tier_name(), if k <= 8 { "i8" } else { "i16" });
            let act = ActPanel::quantize_rows(x.data(), 5, 40).unwrap();
            let bias: Vec<f32> = (0..6).map(|i| i as f32 * 0.1).collect();
            let mut out = vec![0.0f32; 5 * 6];
            panel.gemm_rescale(&act, &mut out, Some(&bias)).unwrap();
            // Reference runs on the *dequantised* weights (weight side is
            // exact); the activation requantisation bounds the error.
            let w_deq = qw.to_tensor();
            let want = f32_reference(&x, &w_deq, Some(&bias));
            assert_within_requant_bound(&out, &want, &x, &w_deq);
        }
    }

    #[test]
    fn per_channel_panel_matches_f32_lane() {
        let mut r = seeded(22);
        let w = normal(&[8, 30], 1.0, &mut r);
        let x = normal(&[4, 30], 1.0, &mut r);
        let qw = PerChannelQuantized::from_tensor(&w, b(4)).unwrap();
        let panel = WeightPanel::from_per_channel(&qw, 8, 30).unwrap();
        let act = ActPanel::quantize_rows(x.data(), 4, 30).unwrap();
        let mut out = vec![0.0f32; 4 * 8];
        panel.gemm_rescale(&act, &mut out, None).unwrap();
        let w_deq = qw.to_tensor();
        let want = f32_reference(&x, &w_deq, None);
        assert_within_requant_bound(&out, &want, &x, &w_deq);
    }

    #[test]
    fn on_grid_activations_are_requantised_losslessly() {
        // Activations already produced by an 8-bit grid must survive the
        // round trip: the lane is exact up to the final scale rounding.
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        let qw = QuantizedTensor::from_tensor(&w, b(8)).unwrap();
        let panel = WeightPanel::from_quantized(&qw, 2, 2).unwrap();
        let x = vec![0.0f32, 1.0, -1.0, 0.5];
        let act = ActPanel::quantize_rows(&x, 2, 2).unwrap();
        let mut out = vec![0.0f32; 4];
        panel.gemm_rescale(&act, &mut out, None).unwrap();
        let want = f32_reference(
            &Tensor::from_vec(x, &[2, 2]).unwrap(),
            &qw.to_tensor(),
            None,
        );
        assert_close(&out, &want, 1e-5);
    }

    #[test]
    fn builders_refuse_unserviceable_parameters() {
        let mut r = seeded(23);
        let w = normal(&[4, 8], 1.0, &mut r);
        let q20 = QuantizedTensor::from_tensor(&w, b(20)).unwrap();
        assert!(WeightPanel::from_quantized(&q20, 4, 8).is_none(), "k>16");
        let q4 = QuantizedTensor::from_tensor(&w, b(4)).unwrap();
        assert!(WeightPanel::from_quantized(&q4, 4, 9).is_none(), "shape");
        let pc = PerChannelQuantized::from_tensor(&w, b(4)).unwrap();
        assert!(
            WeightPanel::from_per_channel(&pc, 8, 4).is_none(),
            "channel/row mismatch"
        );
        assert!(WeightPanel::from_per_channel(&pc, 4, 8).is_some());
    }

    #[test]
    fn row_ranged_gemm_is_a_slice_of_the_full_gemm() {
        let mut r = seeded(25);
        let w = normal(&[6, 12], 1.0, &mut r);
        let x = normal(&[3, 12], 1.0, &mut r);
        let qw = QuantizedTensor::from_tensor(&w, b(4)).unwrap();
        let panel = WeightPanel::from_quantized(&qw, 6, 12).unwrap();
        let act = ActPanel::quantize_rows(x.data(), 3, 12).unwrap();
        let bias: Vec<f32> = (0..6).map(|i| i as f32 * 0.3 - 1.0).collect();
        let mut full = vec![0.0f32; 3 * 6];
        panel.gemm_rescale(&act, &mut full, Some(&bias)).unwrap();
        for (r0, r1) in [(0usize, 3usize), (2, 6), (4, 5), (0, 6)] {
            let n = r1 - r0;
            let mut part = vec![0.0f32; 3 * n];
            panel
                .gemm_rescale_rows(&act, &mut part, Some(&bias[r0..r1]), r0, r1)
                .unwrap();
            for i in 0..3 {
                for (o, &v) in part[i * n..(i + 1) * n].iter().enumerate() {
                    assert_eq!(v.to_bits(), full[i * 6 + r0 + o].to_bits());
                }
            }
        }
        let mut bad = vec![0.0f32; 3];
        assert!(panel.gemm_rescale_rows(&act, &mut bad, None, 5, 7).is_err());
        assert!(panel.gemm_rescale_rows(&act, &mut bad, None, 3, 2).is_err());
    }

    #[test]
    fn act_panel_refuses_non_finite_rows() {
        assert!(ActPanel::quantize_rows(&[1.0, f32::NAN], 1, 2).is_none());
        assert!(ActPanel::quantize_rows(&[1.0, f32::INFINITY], 1, 2).is_none());
        assert!(ActPanel::quantize_rows(&[1.0, 2.0, 3.0], 2, 2).is_none());
        let p = ActPanel::quantize_rows(&[1.0, 2.0, 3.0, 4.0], 2, 2).unwrap();
        assert_eq!((p.rows(), p.cols()), (2, 2));
    }

    #[test]
    fn resident_bytes_track_tier() {
        let mut r = seeded(24);
        let w = normal(&[4, 8], 1.0, &mut r);
        let p8 =
            WeightPanel::from_quantized(&QuantizedTensor::from_tensor(&w, b(4)).unwrap(), 4, 8)
                .unwrap();
        assert_eq!(p8.resident_bytes(), 32 + 4 * 16);
        let p16 =
            WeightPanel::from_quantized(&QuantizedTensor::from_tensor(&w, b(12)).unwrap(), 4, 8)
                .unwrap();
        assert_eq!(p16.resident_bytes(), 64 + 4 * 16);
    }
}
