//! Per-output-channel quantisation — the standard refinement of the
//! paper's per-tensor scheme (Krishnamoorthi \[13\] §3.1 recommends it for
//! conv weights).
//!
//! The paper calibrates one `(S, Z)` per tensor, so one outlier channel
//! inflates `ε` for every channel and pushes the whole layer toward
//! underflow. Calibrating each output channel (axis-0 slice) separately
//! gives every channel its own `ε_c`, with Eq. 3/Eq. 4 applied per channel.
//! The `ablations` binary compares both calibrations.

use crate::{AffineQuantizer, Bitwidth, CodeStore, QuantError, RoundingMode, UpdateStats};
use apt_tensor::Tensor;
use rand::rngs::StdRng;

/// A parameter tensor quantised with one affine quantiser per output
/// channel (axis-0 slice). Like [`crate::QuantizedTensor`], the integer
/// codes are the source of truth — no fp32 copy exists — and they live in
/// a physical [`CodeStore`] (the precision is uniform across channels, so
/// one store covers the whole tensor).
#[derive(Debug, Clone)]
pub struct PerChannelQuantized {
    store: CodeStore,
    dims: Vec<usize>,
    quantizers: Vec<AffineQuantizer>,
}

impl PerChannelQuantized {
    /// Quantises a tensor (rank ≥ 1) with per-axis-0-channel calibration.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::NonFiniteRange`] for empty/non-finite input.
    pub fn from_tensor(t: &Tensor, bits: Bitwidth) -> crate::Result<Self> {
        if t.is_empty() || t.rank() == 0 {
            return Err(QuantError::NonFiniteRange {
                min: f32::NAN,
                max: f32::NAN,
            });
        }
        let channels = t.dims()[0];
        let stride = t.len() / channels;
        let mut codes = Vec::with_capacity(t.len());
        let mut quantizers = Vec::with_capacity(channels);
        for c in 0..channels {
            let slice = &t.data()[c * stride..(c + 1) * stride];
            let (min, max) = slice
                .iter()
                .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &v| {
                    (lo.min(v), hi.max(v))
                });
            let q = AffineQuantizer::from_range(min, max, bits)?;
            codes.extend(slice.iter().map(|&v| q.quantize_value(v)));
            quantizers.push(q);
        }
        Ok(PerChannelQuantized {
            store: CodeStore::from_codes(&codes, bits),
            dims: t.dims().to_vec(),
            quantizers,
        })
    }

    /// Materialises the float view.
    pub fn to_tensor(&self) -> Tensor {
        let stride = self.stride();
        let data: Vec<f32> = (0..self.store.len())
            .map(|i| self.quantizers[i / stride].dequantize_value(self.store.get(i)))
            .collect();
        Tensor::from_vec(data, &self.dims).expect("codes/dims invariant")
    }

    fn stride(&self) -> usize {
        self.store.len() / self.quantizers.len()
    }

    /// Number of channels (axis-0 size).
    pub fn channels(&self) -> usize {
        self.quantizers.len()
    }

    /// Shape of the parameter tensor.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// `true` if the tensor holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Current precision (uniform across channels).
    pub fn bits(&self) -> Bitwidth {
        self.quantizers[0].bits()
    }

    /// Per-channel quantisation steps `ε_c`.
    pub fn channel_eps(&self) -> Vec<f32> {
        self.quantizers.iter().map(|q| q.eps()).collect()
    }

    /// Mean `ε` across channels (scalar summary for reporting).
    pub fn mean_eps(&self) -> f32 {
        let s: f64 = self.quantizers.iter().map(|q| q.eps() as f64).sum();
        (s / self.quantizers.len() as f64) as f32
    }

    /// Training-memory footprint in bits: `N·k` codes plus one `(S, Z)`
    /// pair (96 bits) per channel of calibration metadata — the idealised
    /// model; see [`resident_bytes`](Self::resident_bytes) for the
    /// physical footprint.
    pub fn memory_bits(&self) -> u64 {
        self.store.len() as u64 * u64::from(self.bits().get()) + self.quantizers.len() as u64 * 96
    }

    /// Physical bytes resident for this parameter: the code store plus one
    /// quantiser struct per channel.
    pub fn resident_bytes(&self) -> u64 {
        self.store.resident_bytes()
            + (self.quantizers.len() * std::mem::size_of::<AffineQuantizer>()) as u64
    }

    /// Eq. 4 with per-channel resolution:
    /// `Gavg = mean_j |g_j / ε_{channel(j)}|`.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `grad` differs in shape.
    pub fn gavg(&self, grad: &Tensor) -> crate::Result<f64> {
        if grad.dims() != self.dims.as_slice() {
            return Err(QuantError::ShapeMismatch {
                op: "gavg",
                lhs: self.dims.clone(),
                rhs: grad.dims().to_vec(),
            });
        }
        if grad.is_empty() {
            return Ok(0.0);
        }
        let stride = self.stride();
        let sum: f64 = grad
            .data()
            .iter()
            .enumerate()
            .map(|(i, &g)| (g as f64).abs() / self.quantizers[i / stride].eps() as f64)
            .sum();
        Ok(sum / grad.len() as f64)
    }

    /// Re-quantises at a new uniform precision, recalibrating each channel
    /// (the codes re-pack into the tier matching the new bitwidth).
    ///
    /// # Errors
    ///
    /// Propagates calibration errors.
    pub fn set_bits(&mut self, bits: Bitwidth) -> crate::Result<()> {
        let float = self.to_tensor();
        *self = PerChannelQuantized::from_tensor(&float, bits)?;
        Ok(())
    }

    /// The Eq. 3 quantised SGD step with per-channel `ε` (see
    /// [`crate::QuantizedTensor::sgd_update`] for semantics; range
    /// expansion recalibrates only the affected channels). In-range
    /// results go straight into the packed store; out-of-range codes are
    /// spilled aside and the channel-local recalibration reproduces the
    /// exact float sequence of the legacy `i64`-resident path, keeping the
    /// update bit-identical across storage backends.
    ///
    /// # Errors
    ///
    /// Returns shape/finiteness errors.
    pub fn sgd_update(
        &mut self,
        grad: &Tensor,
        lr: f32,
        mode: RoundingMode,
        rng: &mut StdRng,
    ) -> crate::Result<UpdateStats> {
        if grad.dims() != self.dims.as_slice() {
            return Err(QuantError::ShapeMismatch {
                op: "sgd_update",
                lhs: self.dims.clone(),
                rhs: grad.dims().to_vec(),
            });
        }
        if !lr.is_finite() || grad.has_non_finite() {
            return Err(QuantError::NonFiniteOperand { op: "sgd_update" });
        }
        let stride = self.stride();
        let mut stats = UpdateStats {
            total: self.store.len(),
            ..Default::default()
        };
        let mut dirty_channels: Vec<bool> = vec![false; self.quantizers.len()];
        // (index, raw out-of-grid code) pairs awaiting channel expansion.
        let mut spills: Vec<(usize, i64)> = Vec::new();
        for (i, &g) in grad.data().iter().enumerate() {
            let ch = i / stride;
            let q = &self.quantizers[ch];
            let eps = q.eps() as f64;
            let steps = mode.round_steps((lr as f64 * g as f64) / eps, rng);
            if steps == 0 {
                if g != 0.0 {
                    stats.underflowed += 1;
                }
                continue;
            }
            // Saturating for the same reason as the per-tensor path: a
            // pathological gradient can round to ±i64::MAX steps.
            let new_code = self.store.get(i).saturating_sub(steps);
            let max_code = q.bits().num_steps() as i64;
            if new_code < 0 || new_code > max_code {
                dirty_channels[ch] = true;
                stats.expanded += 1;
                spills.push((i, new_code));
            } else {
                self.store.set(i, new_code);
            }
        }
        let bits = self.bits();
        if !spills.is_empty() {
            // Recalibrate only the channels whose values left their range,
            // from the raw (possibly out-of-grid) codes.
            let mut raw = self.store.to_vec();
            for &(i, c) in &spills {
                raw[i] = c;
            }
            for (ch, dirty) in dirty_channels.iter().enumerate() {
                if !dirty {
                    continue;
                }
                let q = self.quantizers[ch];
                let slice = &raw[ch * stride..(ch + 1) * stride];
                let float: Vec<f32> = slice.iter().map(|&c| q.dequantize_value(c)).collect();
                let (min, max) = float
                    .iter()
                    .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &v| {
                        (lo.min(v), hi.max(v))
                    });
                let new_q = AffineQuantizer::from_range(min, max, bits)?;
                for (j, &v) in float.iter().enumerate() {
                    self.store.set(ch * stride + j, new_q.quantize_value(v));
                }
                self.quantizers[ch] = new_q;
            }
        }
        let max_code = bits.num_steps() as i64;
        stats.saturated = self.store.count_rails(max_code);
        Ok(stats)
    }

    /// Fraction of codes sitting on a grid rail (0 or `2^k − 1`), pooled
    /// across channels. See [`crate::QuantizedTensor::saturation_ratio`] —
    /// the healthy floor here is about `2/stride` *per channel*, since every
    /// channel's calibration pins its own min/max to the rails.
    pub fn saturation_ratio(&self) -> f64 {
        if self.store.is_empty() {
            return 0.0;
        }
        let max_code = self.bits().num_steps() as i64;
        self.store.count_rails(max_code) as f64 / self.store.len() as f64
    }

    /// Flips one bit of one stored code within the low `k` bits (SEU
    /// model); the flip lands on the physical storage and the result
    /// always stays on the channel's grid. Returns the new code. See
    /// [`crate::QuantizedTensor::flip_code_bit`].
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::ShapeMismatch`] if `elem` is out of bounds.
    pub fn flip_code_bit(&mut self, elem: usize, bit: u32) -> crate::Result<i64> {
        if elem >= self.store.len() {
            return Err(QuantError::ShapeMismatch {
                op: "flip_code_bit",
                lhs: vec![elem],
                rhs: vec![self.store.len()],
            });
        }
        let k = self.bits().get();
        Ok(self.store.flip_bit(elem, bit % k))
    }

    /// Drives every `round(1/fraction)`-th code to a grid rail (fault
    /// injection). Returns the number of codes forced. See
    /// [`crate::QuantizedTensor::saturate`].
    pub fn saturate(&mut self, fraction: f64, high: bool) -> usize {
        if !fraction.is_finite() || fraction <= 0.0 || self.store.is_empty() {
            return 0;
        }
        let stride = (1.0 / fraction.min(1.0)).round().max(1.0) as usize;
        let rail = if high {
            self.bits().num_steps() as i64
        } else {
            0
        };
        let mut forced = 0;
        for i in (0..self.store.len()).step_by(stride) {
            self.store.set(i, rail);
            forced += 1;
        }
        forced
    }

    /// Rebuilds from checkpointed parts.
    ///
    /// # Errors
    ///
    /// Returns shape errors when lengths disagree, codes leave the grid,
    /// or the channels do not share one uniform bitwidth (the physical
    /// store packs at a single width).
    pub fn from_parts(
        codes: Vec<i64>,
        dims: Vec<usize>,
        quantizers: Vec<AffineQuantizer>,
    ) -> crate::Result<Self> {
        let volume: usize = dims.iter().product();
        if codes.len() != volume
            || dims.is_empty()
            || quantizers.len() != dims[0]
            || dims[0] == 0
            || !volume.is_multiple_of(dims[0])
            || quantizers.iter().any(|q| q.bits() != quantizers[0].bits())
        {
            return Err(QuantError::ShapeMismatch {
                op: "from_parts",
                lhs: vec![codes.len(), quantizers.len()],
                rhs: dims,
            });
        }
        let stride = volume / dims[0];
        for (i, &q) in codes.iter().enumerate() {
            let max_code = quantizers[i / stride].bits().num_steps() as i64;
            if !(0..=max_code).contains(&q) {
                return Err(QuantError::NonFiniteRange {
                    min: 0.0,
                    max: max_code as f32,
                });
            }
        }
        let bits = quantizers[0].bits();
        Ok(PerChannelQuantized {
            store: CodeStore::from_codes(&codes, bits),
            dims,
            quantizers,
        })
    }

    /// Materialises the raw codes (checkpoint saving, tests).
    pub fn codes(&self) -> Vec<i64> {
        self.store.to_vec()
    }

    /// The physical code container (integrity digests, serialisation,
    /// memory accounting).
    pub fn store(&self) -> &CodeStore {
        &self.store
    }

    /// The per-channel quantisers (checkpoint saving).
    pub fn quantizers(&self) -> &[AffineQuantizer] {
        &self.quantizers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_tensor::rng::{normal, seeded};

    fn b(k: u32) -> Bitwidth {
        Bitwidth::new(k).unwrap()
    }

    #[test]
    fn roundtrip_error_bounded_per_channel() {
        let t = normal(&[4, 16], 1.0, &mut seeded(1));
        let q = PerChannelQuantized::from_tensor(&t, b(8)).unwrap();
        assert_eq!(q.channels(), 4);
        let eps = q.channel_eps();
        let back = q.to_tensor();
        for (i, (a, bb)) in t.data().iter().zip(back.data()).enumerate() {
            assert!((a - bb).abs() <= eps[i / 16] / 2.0 + 1e-6);
        }
    }

    #[test]
    fn outlier_channel_does_not_inflate_other_channels_eps() {
        // Channel 0 has range 100×, channel 1 stays tight — the motivation
        // for per-channel calibration.
        let mut data = vec![0.0f32; 32];
        for (i, v) in data.iter_mut().enumerate() {
            *v = if i < 16 {
                (i as f32 - 8.0) * 10.0
            } else {
                (i as f32 - 24.0) * 0.1
            };
        }
        let t = Tensor::from_vec(data, &[2, 16]).unwrap();
        let pc = PerChannelQuantized::from_tensor(&t, b(8)).unwrap();
        let eps = pc.channel_eps();
        assert!(eps[0] > eps[1] * 50.0, "eps0={} eps1={}", eps[0], eps[1]);
        // Per-tensor calibration would give channel 1 the inflated ε.
        let pt = crate::QuantizedTensor::from_tensor(&t, b(8)).unwrap();
        assert!(pt.eps() > eps[1] * 50.0);
    }

    #[test]
    fn gavg_uses_per_channel_eps() {
        let t = Tensor::from_vec(vec![-10.0, 10.0, -0.1, 0.1], &[2, 2]).unwrap();
        let pc = PerChannelQuantized::from_tensor(&t, b(4)).unwrap();
        let grad = Tensor::from_vec(vec![0.01, 0.01, 0.01, 0.01], &[2, 2]).unwrap();
        let g = pc.gavg(&grad).unwrap();
        let eps = pc.channel_eps();
        let gm = f64::from(0.01f32);
        let expected = 0.5 * (gm / f64::from(eps[0])) + 0.5 * (gm / f64::from(eps[1]));
        assert!((g - expected).abs() < 1e-9, "g={g} expected={expected}");
        assert!(pc.gavg(&Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn underflow_depends_on_channel() {
        // A gradient that underflows the coarse channel but lands on the
        // fine one — per-tensor calibration would lose both.
        let t = Tensor::from_vec(vec![-10.0, 10.0, -0.1, 0.1], &[2, 2]).unwrap();
        let mut pc = PerChannelQuantized::from_tensor(&t, b(4)).unwrap();
        let eps = pc.channel_eps();
        let g_mag = eps[1] * 1.5; // > ε₁ but well below ε₀
        assert!(g_mag < eps[0] * 0.1, "g_mag={g_mag} eps0={}", eps[0]);
        let grad = Tensor::from_vec(vec![g_mag, g_mag, g_mag, g_mag], &[2, 2]).unwrap();
        let stats = pc
            .sgd_update(&grad, 1.0, RoundingMode::Truncate, &mut seeded(0))
            .unwrap();
        assert_eq!(
            stats.underflowed, 2,
            "coarse channel underflows, fine channel updates"
        );
    }

    #[test]
    fn set_bits_and_memory() {
        let t = normal(&[3, 8], 1.0, &mut seeded(2));
        let mut pc = PerChannelQuantized::from_tensor(&t, b(6)).unwrap();
        assert_eq!(pc.memory_bits(), 24 * 6 + 3 * 96);
        pc.set_bits(b(9)).unwrap();
        assert_eq!(pc.bits().get(), 9);
        assert_eq!(pc.memory_bits(), 24 * 9 + 3 * 96);
        assert!(pc.mean_eps() > 0.0);
    }

    #[test]
    fn resident_bytes_count_store_and_quantizers() {
        let t = normal(&[3, 8], 1.0, &mut seeded(2));
        let pc = PerChannelQuantized::from_tensor(&t, b(6)).unwrap();
        let meta = 3 * std::mem::size_of::<AffineQuantizer>() as u64;
        let expect = match pc.store().tier_name() {
            "i8" => 24 + meta,
            _ => 24 * 8 + meta, // forced i64 backend
        };
        assert_eq!(pc.resident_bytes(), expect);
    }

    #[test]
    fn from_parts_roundtrip_and_validation() {
        let t = normal(&[2, 4], 1.0, &mut seeded(3));
        let pc = PerChannelQuantized::from_tensor(&t, b(5)).unwrap();
        let re = PerChannelQuantized::from_parts(
            pc.codes().to_vec(),
            pc.dims().to_vec(),
            pc.quantizers().to_vec(),
        )
        .unwrap();
        assert_eq!(re.to_tensor().data(), pc.to_tensor().data());
        assert!(
            PerChannelQuantized::from_parts(vec![0; 8], vec![3, 4], pc.quantizers().to_vec())
                .is_err()
        );
        // Mixed channel bitwidths cannot share one packed store.
        let mixed = vec![
            AffineQuantizer::from_range(-1.0, 1.0, b(5)).unwrap(),
            AffineQuantizer::from_range(-1.0, 1.0, b(6)).unwrap(),
        ];
        assert!(PerChannelQuantized::from_parts(vec![0; 8], vec![2, 4], mixed).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        let empty = Tensor::from_vec(vec![], &[0]).unwrap();
        assert!(PerChannelQuantized::from_tensor(&empty, b(8)).is_err());
        let scalar = Tensor::scalar(1.0);
        assert!(PerChannelQuantized::from_tensor(&scalar, b(8)).is_err());
        let t = normal(&[2, 4], 1.0, &mut seeded(4));
        let mut pc = PerChannelQuantized::from_tensor(&t, b(8)).unwrap();
        assert!(pc
            .sgd_update(
                &Tensor::zeros(&[3]),
                0.1,
                RoundingMode::Truncate,
                &mut seeded(0)
            )
            .is_err());
    }

    #[test]
    fn saturation_and_flip_mirror_per_tensor_semantics() {
        let t = normal(&[4, 16], 1.0, &mut seeded(5));
        let mut pc = PerChannelQuantized::from_tensor(&t, b(6)).unwrap();
        // Every channel pins its min/max, so the clean floor is 2/stride
        // pooled over channels.
        let clean = pc.saturation_ratio();
        assert!(clean >= 8.0 / 64.0 && clean < 0.35, "clean ratio {clean}");
        let max_code = pc.bits().num_steps() as i64;
        for bit in 0..16u32 {
            let new = pc.flip_code_bit(bit as usize, bit).unwrap();
            assert!((0..=max_code).contains(&new));
        }
        assert!(pc.flip_code_bit(64, 0).is_err());
        let forced = pc.saturate(0.25, false);
        assert_eq!(forced, 16);
        assert!(pc.saturation_ratio() >= 0.25);
        assert!(pc.to_tensor().data().iter().all(|v| v.is_finite()));
        // Zero gradient update reports the rail population.
        let g = Tensor::zeros(&[4, 16]);
        let stats = pc
            .sgd_update(&g, 0.1, RoundingMode::Truncate, &mut seeded(0))
            .unwrap();
        assert_eq!(stats.saturated, {
            let mc = pc.bits().num_steps() as i64;
            pc.codes().iter().filter(|&&q| q == 0 || q == mc).count()
        });
    }

    #[test]
    fn range_expansion_is_channel_local() {
        let t = Tensor::from_vec(vec![-1.0, 1.0, -1.0, 1.0], &[2, 2]).unwrap();
        let mut pc = PerChannelQuantized::from_tensor(&t, b(8)).unwrap();
        let eps_before = pc.channel_eps();
        // Push only channel 0 out of range.
        let grad = Tensor::from_vec(vec![-5.0, 0.0, 0.0, 0.0], &[2, 2]).unwrap();
        let stats = pc
            .sgd_update(&grad, 1.0, RoundingMode::Truncate, &mut seeded(0))
            .unwrap();
        assert!(stats.expanded > 0);
        let eps_after = pc.channel_eps();
        assert!(
            eps_after[0] > eps_before[0],
            "expanded channel recalibrates"
        );
        assert_eq!(eps_after[1], eps_before[1], "other channel untouched");
    }
}
