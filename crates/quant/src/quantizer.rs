use crate::{Bitwidth, QuantError};
use apt_tensor::{par, Tensor};

/// Elements per parallel chunk for the whole-tensor maps below. Fixed
/// (shape-independent) so chunk boundaries never depend on thread count.
const QUANT_CHUNK: usize = 16 * 1024;

/// Floor applied to the quantisation step so a degenerate (constant) tensor
/// never produces `ε = 0`, which would make the paper's `g/ε` metrics and
/// the Eq. 3 division blow up. Any real training tensor has range far above
/// this.
pub const MIN_SCALE: f32 = 1e-12;

/// The affine quantisation mapping `r = S·(q − Z)` of Jacob et al. \[11\],
/// as adopted by the paper (§III).
///
/// Codes `q` live in `[0, 2^k − 1]`; `S` (the *scale*) is exactly the
/// paper's minimum resolution `ε_i` from Eq. 2:
///
/// ```text
/// ε_i = (max(W_i) − min(W_i)) / (2^k − 1)
/// ```
///
/// ```
/// use apt_quant::{AffineQuantizer, Bitwidth};
/// let q = AffineQuantizer::from_range(-1.0, 1.0, Bitwidth::new(8)?)?;
/// assert!((q.eps() - 2.0 / 255.0).abs() < 1e-7);
/// let code = q.quantize_value(0.0);
/// assert!((q.dequantize_value(code)).abs() <= q.eps() / 2.0 + 1e-7);
/// # Ok::<(), apt_quant::QuantError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AffineQuantizer {
    scale: f32,
    zero_point: i64,
    bits: Bitwidth,
}

impl AffineQuantizer {
    /// Calibrates a quantiser covering `[min, max]` at `bits` precision.
    ///
    /// The range is widened to include 0 so the affine grid always has an
    /// exact (or near-exact) zero — standard practice from \[11\] that also
    /// keeps ReLU-adjacent weights well-behaved.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::NonFiniteRange`] if either bound is NaN/Inf.
    pub fn from_range(min: f32, max: f32, bits: Bitwidth) -> crate::Result<Self> {
        if !min.is_finite() || !max.is_finite() {
            return Err(QuantError::NonFiniteRange { min, max });
        }
        let lo = min.min(max).min(0.0);
        let hi = min.max(max).max(0.0);
        let scale = ((hi - lo) / bits.num_steps() as f32).max(MIN_SCALE);
        // Z is the code that represents real 0: r = S(q − Z) ⇒ 0 = S(Z − Z).
        let zero_point = (-lo / scale).round() as i64;
        let zero_point = zero_point.clamp(0, bits.num_steps() as i64);
        Ok(AffineQuantizer {
            scale,
            zero_point,
            bits,
        })
    }

    /// Calibrates from a tensor's observed `(min, max)` range.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::NonFiniteRange`] for empty tensors or tensors
    /// containing NaN/Inf.
    pub fn from_tensor(t: &Tensor, bits: Bitwidth) -> crate::Result<Self> {
        let (min, max) = match (t.min(), t.max()) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(QuantError::NonFiniteRange {
                    min: f32::NAN,
                    max: f32::NAN,
                })
            }
        };
        Self::from_range(min, max, bits)
    }

    /// Calibrates from the `(pct, 1−pct)` percentile range of a tensor
    /// instead of its absolute min/max — the standard outlier-robust
    /// calibration (Krishnamoorthi \[13\] §3): a handful of extreme weights
    /// no longer inflate `ε` for the whole tensor. Values outside the
    /// clipped range saturate at the grid ends.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::NonFiniteRange`] for empty/non-finite tensors
    /// or `pct` outside `[0, 0.5)`.
    pub fn from_tensor_percentile(t: &Tensor, bits: Bitwidth, pct: f64) -> crate::Result<Self> {
        if !(0.0..0.5).contains(&pct) || t.is_empty() {
            return Err(QuantError::NonFiniteRange {
                min: pct as f32,
                max: pct as f32,
            });
        }
        let mut sorted: Vec<f32> = t.data().to_vec();
        if sorted.iter().any(|v| !v.is_finite()) {
            return Err(QuantError::NonFiniteRange {
                min: f32::NAN,
                max: f32::NAN,
            });
        }
        sorted.sort_by(f32::total_cmp);
        let n = sorted.len();
        let lo_idx = ((n as f64 * pct) as usize).min(n - 1);
        let hi_idx = n - 1 - lo_idx;
        Self::from_range(sorted[lo_idx], sorted[hi_idx], bits)
    }

    /// Reassembles a quantiser from its stored parts (checkpoint loading).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::NonFiniteRange`] for a non-finite or
    /// non-positive scale, or a zero point outside the code grid.
    pub fn from_parts(scale: f32, zero_point: i64, bits: Bitwidth) -> crate::Result<Self> {
        if !scale.is_finite() || scale <= 0.0 {
            return Err(QuantError::NonFiniteRange {
                min: scale,
                max: scale,
            });
        }
        if !(0..=bits.num_steps() as i64).contains(&zero_point) {
            return Err(QuantError::NonFiniteRange {
                min: zero_point as f32,
                max: bits.num_steps() as f32,
            });
        }
        Ok(AffineQuantizer {
            scale,
            zero_point,
            bits,
        })
    }

    /// The quantisation step `S` — the paper's `ε` (Eq. 2).
    pub fn eps(&self) -> f32 {
        self.scale
    }

    /// The zero-point code `Z`.
    pub fn zero_point(&self) -> i64 {
        self.zero_point
    }

    /// The precision this quantiser was calibrated for.
    pub fn bits(&self) -> Bitwidth {
        self.bits
    }

    /// Smallest representable real value (`q = 0`).
    pub fn range_min(&self) -> f32 {
        self.dequantize_value(0)
    }

    /// Largest representable real value (`q = 2^k − 1`).
    pub fn range_max(&self) -> f32 {
        self.dequantize_value(self.bits.num_steps() as i64)
    }

    /// Quantises a real value to its nearest code, clamped to the grid.
    /// Saturating: values beyond the `i64` range (possible after a
    /// pathological update expanded the grid) clamp instead of overflowing.
    pub fn quantize_value(&self, r: f32) -> i64 {
        let q = ((r / self.scale).round() as i64).saturating_add(self.zero_point);
        q.clamp(0, self.bits.num_steps() as i64)
    }

    /// Reconstructs the real value of a code: `r = S·(q − Z)`, saturating
    /// for codes near the `i64` limits.
    pub fn dequantize_value(&self, q: i64) -> f32 {
        self.scale * q.saturating_sub(self.zero_point) as f32
    }

    /// Quantises a whole tensor into codes (clamped to the grid).
    ///
    /// Pure per-element map, so it chunks onto the [`apt_tensor::par`]
    /// pool; results are bit-identical for every thread count.
    ///
    /// For `k ≤ 16` the inner loop is branch-free: the grid bounds
    /// `[−Z, 2^k−1−Z]` are integers of magnitude ≤ 65535, exactly
    /// representable in f32, so the clamp runs in f32 lanes and the final
    /// conversion is a plain f32→i32 cast. This is bit-equivalent to
    /// [`quantize_value`](Self::quantize_value) for every input including
    /// NaN (→ `Z`, since both `NaN as i64` and `NaN as i32` are 0) and
    /// ±Inf (→ the grid rails), but unlike the scalar path it
    /// autovectorises.
    pub fn quantize_tensor(&self, t: &Tensor) -> Vec<i64> {
        let mut codes = vec![0i64; t.len()];
        let rd = t.data();
        if self.bits.get() <= 16 {
            let scale = self.scale;
            let z = self.zero_point;
            let lo = -(z as f32);
            let hi = (self.bits.num_steps() as i64 - z) as f32;
            par::for_each_chunk_mut(&mut codes, QUANT_CHUNK, |ci, chunk| {
                let base = ci * QUANT_CHUNK;
                let src = &rd[base..base + chunk.len()];
                for (q, &r) in chunk.iter_mut().zip(src) {
                    let t = (r / scale).round().clamp(lo, hi);
                    *q = i64::from(t as i32) + z;
                }
            });
        } else {
            // Above 16 bits the rails are no longer exact in f32; keep the
            // saturating scalar path.
            par::for_each_chunk_mut(&mut codes, QUANT_CHUNK, |ci, chunk| {
                let base = ci * QUANT_CHUNK;
                for (j, q) in chunk.iter_mut().enumerate() {
                    *q = self.quantize_value(rd[base + j]);
                }
            });
        }
        codes
    }

    /// Reconstructs a float tensor from codes.
    ///
    /// Pure per-element map (parallel, bit-identical for any thread count).
    ///
    /// For `k ≤ 16`, chunks whose codes are all on the grid take a
    /// branch-free lane: `q − Z` fits an `i32`, so the conversion is a
    /// vectorisable i32→f32 cast producing the same f32 value as the
    /// scalar i64→f32 conversion (same integer, same rounding). Chunks
    /// containing out-of-grid codes — impossible from a [`crate::CodeStore`],
    /// but allowed by this public API — fall back to the saturating scalar
    /// path, keeping the output bit-identical in every case.
    ///
    /// # Errors
    ///
    /// Returns a tensor error if `codes.len()` disagrees with `dims`.
    pub fn dequantize_tensor(&self, codes: &[i64], dims: &[usize]) -> crate::Result<Tensor> {
        let mut data = vec![0.0f32; codes.len()];
        if self.bits.get() <= 16 {
            let scale = self.scale;
            let z = self.zero_point;
            let max = self.bits.num_steps() as i64;
            par::for_each_chunk_mut(&mut data, QUANT_CHUNK, |ci, chunk| {
                let base = ci * QUANT_CHUNK;
                let src = &codes[base..base + chunk.len()];
                let on_grid = src.iter().fold(true, |ok, &q| ok & (q >= 0) & (q <= max));
                if on_grid {
                    for (r, &q) in chunk.iter_mut().zip(src) {
                        *r = scale * ((q - z) as i32 as f32);
                    }
                } else {
                    for (r, &q) in chunk.iter_mut().zip(src) {
                        *r = self.dequantize_value(q);
                    }
                }
            });
        } else {
            par::for_each_chunk_mut(&mut data, QUANT_CHUNK, |ci, chunk| {
                let base = ci * QUANT_CHUNK;
                for (j, r) in chunk.iter_mut().enumerate() {
                    *r = self.dequantize_value(codes[base + j]);
                }
            });
        }
        Ok(Tensor::from_vec(data, dims)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(k: u32) -> Bitwidth {
        Bitwidth::new(k).unwrap()
    }

    #[test]
    fn eps_matches_eq2() {
        // ε = (max − min) / (2^k − 1) with the zero-inclusion widening.
        let q = AffineQuantizer::from_range(-2.0, 6.0, b(4)).unwrap();
        assert!((q.eps() - 8.0 / 15.0).abs() < 1e-6);
        let q = AffineQuantizer::from_range(-1.0, 1.0, b(8)).unwrap();
        assert!((q.eps() - 2.0 / 255.0).abs() < 1e-7);
    }

    #[test]
    fn range_widened_to_include_zero() {
        let q = AffineQuantizer::from_range(2.0, 6.0, b(4)).unwrap();
        assert!(q.range_min() <= 0.0 + q.eps() / 2.0);
        let q = AffineQuantizer::from_range(-6.0, -2.0, b(4)).unwrap();
        assert!(q.range_max() >= 0.0 - q.eps() / 2.0);
    }

    #[test]
    fn roundtrip_error_bounded_by_half_eps() {
        let q = AffineQuantizer::from_range(-1.5, 2.5, b(6)).unwrap();
        for i in 0..1000 {
            let r = -1.5 + 4.0 * (i as f32 / 999.0);
            let back = q.dequantize_value(q.quantize_value(r));
            assert!(
                (back - r).abs() <= q.eps() / 2.0 + 1e-6,
                "r={r} back={back} eps={}",
                q.eps()
            );
        }
    }

    #[test]
    fn values_outside_range_clamp() {
        let q = AffineQuantizer::from_range(-1.0, 1.0, b(4)).unwrap();
        assert_eq!(q.quantize_value(100.0), q.bits().num_steps() as i64);
        assert_eq!(q.quantize_value(-100.0), 0);
    }

    #[test]
    fn degenerate_range_uses_min_scale() {
        let q = AffineQuantizer::from_range(0.0, 0.0, b(8)).unwrap();
        assert_eq!(q.eps(), MIN_SCALE);
        let t = Tensor::full(&[4], 0.0);
        let q2 = AffineQuantizer::from_tensor(&t, b(8)).unwrap();
        assert!(q2.eps() > 0.0);
    }

    #[test]
    fn non_finite_rejected() {
        assert!(AffineQuantizer::from_range(f32::NAN, 1.0, b(8)).is_err());
        assert!(AffineQuantizer::from_range(0.0, f32::INFINITY, b(8)).is_err());
        let empty = Tensor::from_vec(vec![], &[0]).unwrap();
        assert!(AffineQuantizer::from_tensor(&empty, b(8)).is_err());
    }

    #[test]
    fn higher_bits_lower_eps() {
        let lo = AffineQuantizer::from_range(-1.0, 1.0, b(4)).unwrap();
        let hi = AffineQuantizer::from_range(-1.0, 1.0, b(12)).unwrap();
        assert!(hi.eps() < lo.eps());
        // Eq. 2: one extra bit ≈ halves ε.
        let k5 = AffineQuantizer::from_range(-1.0, 1.0, b(5)).unwrap();
        assert!((lo.eps() / k5.eps() - (31.0 / 15.0)).abs() < 1e-5);
    }

    #[test]
    fn tensor_roundtrip() {
        let t = Tensor::from_slice(&[-1.0, -0.25, 0.0, 0.5, 1.0]);
        let q = AffineQuantizer::from_tensor(&t, b(8)).unwrap();
        let codes = q.quantize_tensor(&t);
        let back = q.dequantize_tensor(&codes, t.dims()).unwrap();
        for (a, b_) in t.data().iter().zip(back.data()) {
            assert!((a - b_).abs() <= q.eps() / 2.0 + 1e-6);
        }
        assert!(q.dequantize_tensor(&codes, &[3]).is_err());
    }

    #[test]
    fn branch_free_paths_match_scalar_bitwise() {
        // The k ≤ 16 fast lanes must agree with quantize_value /
        // dequantize_value to the last bit for every input class,
        // including non-finite values and off-grid codes.
        for k in [2u32, 4, 8, 12, 16, 20, 32] {
            let q = AffineQuantizer::from_range(-1.3, 2.7, b(k)).unwrap();
            let mut vals: Vec<f32> = vec![
                0.0,
                -0.0,
                1.0,
                -1.3,
                2.7,
                1e30,
                -1e30,
                f32::NAN,
                f32::INFINITY,
                f32::NEG_INFINITY,
                f32::MIN_POSITIVE,
            ];
            for i in 0..1000 {
                vals.push(-2.0 + 5.0 * (i as f32 / 999.0));
            }
            let t = Tensor::from_vec(vals.clone(), &[vals.len()]).unwrap();
            let codes = q.quantize_tensor(&t);
            for (&r, &c) in vals.iter().zip(&codes) {
                assert_eq!(c, q.quantize_value(r), "k={k} r={r}");
            }
            let back = q.dequantize_tensor(&codes, t.dims()).unwrap();
            for (&c, &r) in codes.iter().zip(back.data()) {
                assert_eq!(
                    r.to_bits(),
                    q.dequantize_value(c).to_bits(),
                    "k={k} code={c}"
                );
            }
            // Off-grid codes exercise the per-chunk fallback.
            let wild = vec![-1i64, q.bits().num_steps() as i64 + 7, i64::MIN, i64::MAX];
            let back = q.dequantize_tensor(&wild, &[4]).unwrap();
            for (&c, &r) in wild.iter().zip(back.data()) {
                assert_eq!(r.to_bits(), q.dequantize_value(c).to_bits(), "k={k}");
            }
        }
    }

    #[test]
    fn zero_is_representable_near_exactly() {
        let q = AffineQuantizer::from_range(-0.7, 1.3, b(8)).unwrap();
        let zero_code = q.quantize_value(0.0);
        assert!(q.dequantize_value(zero_code).abs() <= q.eps() / 2.0);
    }
}

#[cfg(test)]
mod percentile_tests {
    use super::*;
    use apt_tensor::rng::{normal, seeded};

    fn b(k: u32) -> Bitwidth {
        Bitwidth::new(k).unwrap()
    }

    #[test]
    fn percentile_calibration_shrinks_eps_under_outliers() {
        // 1000 tight values plus two extreme outliers.
        let mut t = normal(&[1000], 0.1, &mut seeded(1));
        t.data_mut()[0] = 50.0;
        t.data_mut()[1] = -50.0;
        let minmax = AffineQuantizer::from_tensor(&t, b(8)).unwrap();
        let robust = AffineQuantizer::from_tensor_percentile(&t, b(8), 0.01).unwrap();
        assert!(
            robust.eps() < minmax.eps() / 10.0,
            "robust eps {} vs minmax {}",
            robust.eps(),
            minmax.eps()
        );
    }

    #[test]
    fn percentile_zero_equals_minmax() {
        let t = normal(&[256], 1.0, &mut seeded(2));
        let a = AffineQuantizer::from_tensor(&t, b(6)).unwrap();
        let p = AffineQuantizer::from_tensor_percentile(&t, b(6), 0.0).unwrap();
        assert!((a.eps() - p.eps()).abs() < 1e-9);
        assert_eq!(a.zero_point(), p.zero_point());
    }

    #[test]
    fn outliers_saturate_rather_than_widen() {
        let mut t = normal(&[512], 0.1, &mut seeded(3));
        t.data_mut()[0] = 100.0;
        let q = AffineQuantizer::from_tensor_percentile(&t, b(8), 0.01).unwrap();
        assert_eq!(q.quantize_value(100.0), q.bits().num_steps() as i64);
        // Reconstruction of the outlier clamps to the range edge.
        let back = q.dequantize_value(q.quantize_value(100.0));
        assert!(back < 5.0, "outlier should saturate: back={back}");
    }

    #[test]
    fn percentile_validation() {
        let t = normal(&[16], 1.0, &mut seeded(4));
        assert!(AffineQuantizer::from_tensor_percentile(&t, b(8), 0.5).is_err());
        assert!(AffineQuantizer::from_tensor_percentile(&t, b(8), -0.1).is_err());
        let empty = Tensor::from_vec(vec![], &[0]).unwrap();
        assert!(AffineQuantizer::from_tensor_percentile(&empty, b(8), 0.01).is_err());
        let mut nan = normal(&[8], 1.0, &mut seeded(5));
        nan.data_mut()[3] = f32::NAN;
        assert!(AffineQuantizer::from_tensor_percentile(&nan, b(8), 0.01).is_err());
    }
}
