use rand::rngs::StdRng;
use rand::Rng;

/// How a real-valued number of quantisation steps is committed to the
/// integer grid during a parameter update.
///
/// The paper's Eq. 3 uses magnitude truncation (`⌊|lr·g|/ε⌋` applied with
/// the gradient's sign), which is what makes updates smaller than `ε`
/// vanish — the *quantisation underflow* APT monitors via Gavg. The other
/// modes exist for the ablation studies:
///
/// * [`RoundingMode::Nearest`] halves the underflow threshold to `ε/2`.
/// * [`RoundingMode::Stochastic`] (Gupta et al. \[3\], the paper's stated
///   inspiration) commits `ε` with probability proportional to the residual,
///   making updates unbiased in expectation — at the cost of gradient noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RoundingMode {
    /// Truncate toward zero — the paper's Eq. 3 semantics (default).
    #[default]
    Truncate,
    /// Round to nearest integer step (ties away from zero).
    Nearest,
    /// Stochastic rounding: `floor(x)` with probability `1 − frac(x)`, else
    /// `floor(x) + 1` (applied to the magnitude).
    Stochastic,
}

impl RoundingMode {
    /// Rounds a signed step count `x` (in units of ε) to an integer number
    /// of steps according to the mode.
    pub fn round_steps(self, x: f64, rng: &mut StdRng) -> i64 {
        match self {
            RoundingMode::Truncate => x.trunc() as i64,
            RoundingMode::Nearest => x.round() as i64,
            RoundingMode::Stochastic => {
                let sign = if x < 0.0 { -1.0 } else { 1.0 };
                let mag = x.abs();
                let base = mag.floor();
                let frac = mag - base;
                let up = rng.gen::<f64>() < frac;
                (sign * (base + if up { 1.0 } else { 0.0 })) as i64
            }
        }
    }
}

impl std::fmt::Display for RoundingMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RoundingMode::Truncate => "truncate",
            RoundingMode::Nearest => "nearest",
            RoundingMode::Stochastic => "stochastic",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_tensor::rng::seeded;

    #[test]
    fn truncate_kills_sub_step_updates() {
        let mut r = seeded(0);
        assert_eq!(RoundingMode::Truncate.round_steps(0.99, &mut r), 0);
        assert_eq!(RoundingMode::Truncate.round_steps(-0.99, &mut r), 0);
        assert_eq!(RoundingMode::Truncate.round_steps(1.7, &mut r), 1);
        assert_eq!(RoundingMode::Truncate.round_steps(-2.3, &mut r), -2);
    }

    #[test]
    fn nearest_halves_threshold() {
        let mut r = seeded(0);
        assert_eq!(RoundingMode::Nearest.round_steps(0.4, &mut r), 0);
        assert_eq!(RoundingMode::Nearest.round_steps(0.6, &mut r), 1);
        assert_eq!(RoundingMode::Nearest.round_steps(-0.6, &mut r), -1);
    }

    #[test]
    fn stochastic_is_unbiased_in_expectation() {
        let mut r = seeded(42);
        let x = 0.3f64;
        let n = 20_000;
        let sum: i64 = (0..n)
            .map(|_| RoundingMode::Stochastic.round_steps(x, &mut r))
            .sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - x).abs() < 0.02, "mean={mean}");
        // negative values too
        let sum: i64 = (0..n)
            .map(|_| RoundingMode::Stochastic.round_steps(-x, &mut r))
            .sum();
        let mean = sum as f64 / n as f64;
        assert!((mean + x).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn stochastic_exact_integers_stay_exact() {
        let mut r = seeded(1);
        for _ in 0..100 {
            assert_eq!(RoundingMode::Stochastic.round_steps(3.0, &mut r), 3);
            assert_eq!(RoundingMode::Stochastic.round_steps(-2.0, &mut r), -2);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(RoundingMode::Truncate.to_string(), "truncate");
        assert_eq!(RoundingMode::Nearest.to_string(), "nearest");
        assert_eq!(RoundingMode::Stochastic.to_string(), "stochastic");
        assert_eq!(RoundingMode::default(), RoundingMode::Truncate);
    }
}
