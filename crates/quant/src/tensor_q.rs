use crate::{AffineQuantizer, Bitwidth, CodeStore, QuantError, RoundingMode};
use apt_tensor::Tensor;
use rand::rngs::StdRng;

/// Per-update bookkeeping returned by [`QuantizedTensor::sgd_update`].
///
/// `underflowed` counts the elements whose update quantised to zero steps —
/// the paper's *quantisation underflow* (§III-A). The APT trainer aggregates
/// these for diagnostics; the Gavg metric itself is computed from raw
/// gradients upstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UpdateStats {
    /// Elements whose non-zero gradient produced a zero-step update.
    pub underflowed: usize,
    /// Elements whose updated value fell outside the representable range
    /// (triggering range expansion).
    pub expanded: usize,
    /// Elements left sitting on a grid rail (code 0 or the maximum code)
    /// after the update settled, post any recalibration. A large value on a
    /// small tensor is normal (calibration pins the min/max to the rails);
    /// a large *fraction* on a big tensor signals integer saturation.
    pub saturated: usize,
    /// Total elements updated.
    pub total: usize,
}

impl UpdateStats {
    /// Fraction of elements that underflowed (0 for empty tensors).
    pub fn underflow_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.underflowed as f64 / self.total as f64
        }
    }

    /// Fraction of elements left on a grid rail (0 for empty tensors).
    pub fn saturation_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.saturated as f64 / self.total as f64
        }
    }
}

/// A parameter tensor whose source of truth is its integer codes.
///
/// This realises the paper's central memory claim: during training the model
/// is held **only** at its current (adaptive) precision — there is no fp32
/// master copy (§I, §III-B, Table I "Model Precision in BPROP"). Float views
/// are materialised on demand for compute, but every value is always exactly
/// `S·(q − Z)` for an integer code `q` on the `k`-bit grid.
///
/// The codes live in a [`CodeStore`], so the saving is *physical*: a 6-bit
/// layer occupies one byte per weight of process memory (`i8` tier), not a
/// simulated 64. [`memory_bits`](QuantizedTensor::memory_bits) remains the
/// idealised `N·k` model the paper's figures normalise;
/// [`resident_bytes`](QuantizedTensor::resident_bytes) is what the
/// allocator actually holds.
///
/// The SGD step implements Eq. 3:
///
/// ```text
/// w_ij ← w_ij − ⌊ lr·g_ij / ε_i ⌋ · ε_i     (magnitude truncation)
/// ```
///
/// so updates smaller than `ε_i` vanish (quantisation underflow). When an
/// update would leave the representable range, the range is expanded and the
/// tensor recalibrated — weights may legitimately grow during training.
///
/// ```
/// use apt_quant::{Bitwidth, QuantizedTensor};
/// use apt_tensor::Tensor;
/// let w = Tensor::from_slice(&[-1.0, 0.0, 1.0]);
/// let q = QuantizedTensor::from_tensor(&w, Bitwidth::new(8)?)?;
/// assert_eq!(q.bits().get(), 8);
/// assert_eq!(q.memory_bits(), 3 * 8);
/// # Ok::<(), apt_quant::QuantError>(())
/// ```
#[derive(Debug, Clone)]
pub struct QuantizedTensor {
    store: CodeStore,
    dims: Vec<usize>,
    quantizer: AffineQuantizer,
}

impl QuantizedTensor {
    /// Quantises a float tensor at the given precision, calibrating the
    /// range from the tensor's own min/max (Eq. 2).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::NonFiniteRange`] for empty or non-finite input.
    pub fn from_tensor(t: &Tensor, bits: Bitwidth) -> crate::Result<Self> {
        let quantizer = AffineQuantizer::from_tensor(t, bits)?;
        Ok(QuantizedTensor {
            store: CodeStore::from_codes(&quantizer.quantize_tensor(t), bits),
            dims: t.dims().to_vec(),
            quantizer,
        })
    }

    /// Reassembles a quantised tensor from stored parts (checkpoint
    /// loading).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::ShapeMismatch`] if `codes.len()` disagrees
    /// with `dims` and [`QuantError::NonFiniteRange`] if any code is
    /// outside the quantiser's grid.
    pub fn from_parts(
        codes: Vec<i64>,
        dims: Vec<usize>,
        quantizer: AffineQuantizer,
    ) -> crate::Result<Self> {
        let volume: usize = dims.iter().product();
        if codes.len() != volume {
            return Err(QuantError::ShapeMismatch {
                op: "from_parts",
                lhs: vec![codes.len()],
                rhs: dims,
            });
        }
        let max_code = quantizer.bits().num_steps() as i64;
        if codes.iter().any(|&q| !(0..=max_code).contains(&q)) {
            return Err(QuantError::NonFiniteRange {
                min: 0.0,
                max: max_code as f32,
            });
        }
        Ok(QuantizedTensor {
            store: CodeStore::from_codes(&codes, quantizer.bits()),
            dims,
            quantizer,
        })
    }

    /// Materialises the raw integer codes (checkpoint saving, tests).
    pub fn codes(&self) -> Vec<i64> {
        self.store.to_vec()
    }

    /// The physical code container (integrity digests, serialisation,
    /// memory accounting).
    pub fn store(&self) -> &CodeStore {
        &self.store
    }

    /// Materialises the float view `S·(q − Z)` of every element.
    pub fn to_tensor(&self) -> Tensor {
        // Codes are always in-range, so this cannot fail.
        self.quantizer
            .dequantize_tensor(&self.store.to_vec(), &self.dims)
            .expect("codes/dims invariant")
    }

    /// The tensor's quantisation step — the paper's `ε_i` for this layer.
    pub fn eps(&self) -> f32 {
        self.quantizer.eps()
    }

    /// Current precision.
    pub fn bits(&self) -> Bitwidth {
        self.quantizer.bits()
    }

    /// The underlying quantiser (scale, zero point, range).
    pub fn quantizer(&self) -> &AffineQuantizer {
        &self.quantizer
    }

    /// Shape of the parameter tensor.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// `true` if the tensor holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Training-memory footprint of this parameter in bits: `N · k`.
    ///
    /// This is the quantity Figure 5 normalises ("model size for training")
    /// — the *idealised* k-bit model. Compare
    /// [`resident_bytes`](Self::resident_bytes) for what the process
    /// actually holds.
    pub fn memory_bits(&self) -> u64 {
        self.store.len() as u64 * u64::from(self.bits().get())
    }

    /// Physical bytes resident for this parameter: the code store plus the
    /// quantiser's `(S, Z, k)` metadata.
    pub fn resident_bytes(&self) -> u64 {
        self.store.resident_bytes() + std::mem::size_of::<AffineQuantizer>() as u64
    }

    /// Re-quantises the tensor at a new precision, recalibrating the range
    /// from the current values (used by Alg. 1 when `k_i` changes). The
    /// codes are re-packed into the tier matching the new bitwidth.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::NonFiniteRange`] if the tensor is empty.
    pub fn set_bits(&mut self, bits: Bitwidth) -> crate::Result<()> {
        let float = self.to_tensor();
        let quantizer = AffineQuantizer::from_tensor(&float, bits)?;
        self.store = CodeStore::from_codes(&quantizer.quantize_tensor(&float), bits);
        self.quantizer = quantizer;
        Ok(())
    }

    /// Applies the quantised SGD step of Eq. 3 with effective step
    /// `lr · grad` (callers fold momentum/weight-decay into `grad`).
    ///
    /// Elements whose step quantises to zero are counted as underflow. If
    /// any updated value leaves the representable range, the whole tensor is
    /// recalibrated to the new min/max (range expansion) — the count of such
    /// elements is reported in [`UpdateStats::expanded`]. In-range results
    /// are written straight into the packed store; out-of-range codes (rare)
    /// are spilled to the side, since a `k`-bit field cannot hold them, and
    /// the recalibration reconstructs the exact float sequence the old
    /// `i64`-resident path produced — the update is bit-identical across
    /// storage backends.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::ShapeMismatch`] if `grad` has a different shape
    /// and [`QuantError::NonFiniteOperand`] if `grad` or `lr` is NaN/Inf.
    pub fn sgd_update(
        &mut self,
        grad: &Tensor,
        lr: f32,
        mode: RoundingMode,
        rng: &mut StdRng,
    ) -> crate::Result<UpdateStats> {
        if grad.dims() != self.dims.as_slice() {
            return Err(QuantError::ShapeMismatch {
                op: "sgd_update",
                lhs: self.dims.clone(),
                rhs: grad.dims().to_vec(),
            });
        }
        if !lr.is_finite() || grad.has_non_finite() {
            return Err(QuantError::NonFiniteOperand { op: "sgd_update" });
        }
        let eps = self.eps() as f64;
        let max_code = self.bits().num_steps() as i64;
        let mut stats = UpdateStats {
            total: self.store.len(),
            ..Default::default()
        };
        // (index, raw out-of-grid code) pairs awaiting range expansion.
        let mut spills: Vec<(usize, i64)> = Vec::new();

        for (i, &g) in grad.data().iter().enumerate() {
            let steps = mode.round_steps((lr as f64 * g as f64) / eps, rng);
            if steps == 0 {
                if g != 0.0 {
                    stats.underflowed += 1;
                }
                continue;
            }
            // Saturating: a pathological gradient can round to ±i64::MAX
            // steps, and plain subtraction would overflow. The saturated
            // code is out of range, so the expansion below recalibrates.
            let new_code = self.store.get(i).saturating_sub(steps);
            if new_code < 0 || new_code > max_code {
                stats.expanded += 1;
                spills.push((i, new_code));
            } else {
                self.store.set(i, new_code);
            }
        }

        if !spills.is_empty() {
            // Expand: recalibrate the quantiser to cover the new values.
            // Values are exact multiples of the old ε, reconstructed here.
            let mut raw = self.store.to_vec();
            for &(i, c) in &spills {
                raw[i] = c;
            }
            let float: Vec<f32> = raw
                .iter()
                .map(|&q| self.quantizer.dequantize_value(q))
                .collect();
            let t = Tensor::from_vec(float, &self.dims)?;
            let quantizer = AffineQuantizer::from_tensor(&t, self.bits())?;
            self.store = CodeStore::from_codes(&quantizer.quantize_tensor(&t), self.bits());
            self.quantizer = quantizer;
        }
        stats.saturated = self.store.count_rails(max_code);
        Ok(stats)
    }

    /// Fraction of codes sitting on a grid rail (0 or `2^k − 1`).
    ///
    /// A freshly calibrated tensor keeps its min/max on (or one code off)
    /// the rails, so a healthy ratio is about `2/N`. Values
    /// far above that indicate integer saturation — either a pathological
    /// update or an injected fault — and are what the trainer's saturation
    /// guard watches.
    pub fn saturation_ratio(&self) -> f64 {
        if self.store.is_empty() {
            return 0.0;
        }
        let max_code = self.bits().num_steps() as i64;
        self.store.count_rails(max_code) as f64 / self.store.len() as f64
    }

    /// Flips one bit of one stored code, modelling a single-event upset in
    /// the integer memory that holds the parameter.
    ///
    /// The flip lands on the *physical* storage: in the bit-packed tier it
    /// is literally one XOR on the resident `u64` word holding that field.
    /// The logical effect in every tier is `q ^= 1 << (bit % k)` — the
    /// centered pattern the tiers store differs from `q` only in an
    /// inverted MSB — so the perturbed code always stays on the `k`-bit
    /// grid, exactly what corrupted SRAM would hold. Returns the new code
    /// value.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::ShapeMismatch`] if `elem` is out of bounds.
    pub fn flip_code_bit(&mut self, elem: usize, bit: u32) -> crate::Result<i64> {
        if elem >= self.store.len() {
            return Err(QuantError::ShapeMismatch {
                op: "flip_code_bit",
                lhs: vec![elem],
                rhs: vec![self.store.len()],
            });
        }
        let k = self.bits().get();
        Ok(self.store.flip_bit(elem, bit % k))
    }

    /// Drives a deterministic subset of codes to a grid rail (fault
    /// injection: integer saturation).
    ///
    /// Every `round(1/fraction)`-th element is set to the maximum code when
    /// `high` is true, or to code 0 otherwise. Returns the number of codes
    /// forced to the rail. `fraction` is clamped to `(0, 1]`; a
    /// non-positive or non-finite fraction saturates nothing.
    pub fn saturate(&mut self, fraction: f64, high: bool) -> usize {
        if !fraction.is_finite() || fraction <= 0.0 || self.store.is_empty() {
            return 0;
        }
        let stride = (1.0 / fraction.min(1.0)).round().max(1.0) as usize;
        let rail = if high {
            self.bits().num_steps() as i64
        } else {
            0
        };
        let mut forced = 0;
        for i in (0..self.store.len()).step_by(stride) {
            self.store.set(i, rail);
            forced += 1;
        }
        forced
    }

    /// Directly overwrites the values (recalibrating the range), keeping the
    /// current precision. Used by tests and by layers that re-initialise.
    ///
    /// # Errors
    ///
    /// Returns errors for shape mismatch or non-finite input.
    pub fn assign(&mut self, t: &Tensor) -> crate::Result<()> {
        if t.dims() != self.dims.as_slice() {
            return Err(QuantError::ShapeMismatch {
                op: "assign",
                lhs: self.dims.clone(),
                rhs: t.dims().to_vec(),
            });
        }
        let quantizer = AffineQuantizer::from_tensor(t, self.bits())?;
        self.store = CodeStore::from_codes(&quantizer.quantize_tensor(t), self.bits());
        self.quantizer = quantizer;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_tensor::rng::{self, seeded};

    fn b(k: u32) -> Bitwidth {
        Bitwidth::new(k).unwrap()
    }

    #[test]
    fn roundtrip_within_half_eps() {
        let w = rng::normal(&[64], 0.5, &mut seeded(1));
        let q = QuantizedTensor::from_tensor(&w, b(8)).unwrap();
        let back = q.to_tensor();
        for (a, b_) in w.data().iter().zip(back.data()) {
            assert!((a - b_).abs() <= q.eps() / 2.0 + 1e-6);
        }
    }

    #[test]
    fn tiny_updates_underflow_entirely() {
        let w = Tensor::from_slice(&[-1.0, -0.5, 0.0, 0.5, 1.0]);
        let mut q = QuantizedTensor::from_tensor(&w, b(4)).unwrap();
        let before = q.to_tensor();
        let g = Tensor::full(&[5], q.eps() * 0.4);
        let stats = q
            .sgd_update(&g, 1.0, RoundingMode::Truncate, &mut seeded(0))
            .unwrap();
        assert_eq!(stats.underflowed, 5);
        assert_eq!(stats.underflow_rate(), 1.0);
        assert_eq!(q.to_tensor().data(), before.data());
    }

    #[test]
    fn large_updates_apply_in_eps_multiples() {
        let w = Tensor::from_slice(&[0.0, 0.0, 0.0, 0.0]);
        // zero-range tensor gets MIN_SCALE eps; use a real range instead
        let w = w
            .zip(&Tensor::from_slice(&[-1.0, 0.0, 0.5, 1.0]), |_, b_| b_)
            .unwrap();
        let mut q = QuantizedTensor::from_tensor(&w, b(6)).unwrap();
        let eps = q.eps();
        // Positive gradients shrink weights; keep the minimum fixed so no
        // value leaves the representable range (no recalibration).
        let g = Tensor::from_slice(&[0.0, 2.5 * eps, 2.5 * eps, 2.5 * eps]);
        let before = q.to_tensor();
        let stats = q
            .sgd_update(&g, 1.0, RoundingMode::Truncate, &mut seeded(0))
            .unwrap();
        assert_eq!(stats.underflowed, 0);
        assert_eq!(stats.expanded, 0);
        let after = q.to_tensor();
        assert_eq!(before.data()[0], after.data()[0]);
        for (x, y) in before.data().iter().zip(after.data()).skip(1) {
            assert!((x - y - 2.0 * eps).abs() < 1e-5, "x={x} y={y} eps={eps}");
        }
    }

    #[test]
    fn update_moves_against_gradient_sign() {
        let w = Tensor::from_slice(&[-1.0, 1.0]);
        let mut q = QuantizedTensor::from_tensor(&w, b(8)).unwrap();
        let eps = q.eps();
        let g = Tensor::from_slice(&[-3.0 * eps, 3.0 * eps]);
        q.sgd_update(&g, 1.0, RoundingMode::Truncate, &mut seeded(0))
            .unwrap();
        let after = q.to_tensor();
        assert!(after.data()[0] > -1.0); // negative grad ⇒ weight increases
        assert!(after.data()[1] < 1.0); // positive grad ⇒ weight decreases
    }

    #[test]
    fn range_expansion_lets_weights_grow() {
        let w = Tensor::from_slice(&[-0.1, 0.0, 0.1]);
        let mut q = QuantizedTensor::from_tensor(&w, b(8)).unwrap();
        // Push the max weight far beyond the original range repeatedly.
        let g = Tensor::from_slice(&[0.0, 0.0, -1.0]);
        let mut expanded = 0;
        for _ in 0..5 {
            let s = q
                .sgd_update(&g, 0.5, RoundingMode::Truncate, &mut seeded(0))
                .unwrap();
            expanded += s.expanded;
        }
        assert!(expanded > 0, "expected at least one range expansion");
        let after = q.to_tensor();
        assert!(
            after.data()[2] > 0.5,
            "weight should have grown: {:?}",
            after.data()
        );
    }

    #[test]
    fn set_bits_preserves_values_within_new_eps() {
        let w = rng::normal(&[128], 1.0, &mut seeded(2));
        let mut q = QuantizedTensor::from_tensor(&w, b(6)).unwrap();
        let before = q.to_tensor();
        q.set_bits(b(7)).unwrap();
        assert_eq!(q.bits().get(), 7);
        let after = q.to_tensor();
        for (x, y) in before.data().iter().zip(after.data()) {
            assert!((x - y).abs() <= q.eps() + 1e-6);
        }
        // Higher precision ⇒ smaller ε (range identical up to grid snap).
        let mut q2 = q.clone();
        q2.set_bits(b(16)).unwrap();
        assert!(q2.eps() < q.eps());
    }

    #[test]
    fn memory_bits_tracks_precision() {
        let w = rng::normal(&[100], 1.0, &mut seeded(3));
        let mut q = QuantizedTensor::from_tensor(&w, b(6)).unwrap();
        assert_eq!(q.memory_bits(), 600);
        q.set_bits(b(13)).unwrap();
        assert_eq!(q.memory_bits(), 1300);
    }

    #[test]
    fn resident_bytes_track_the_physical_tier() {
        let w = rng::normal(&[100], 1.0, &mut seeded(3));
        let meta = std::mem::size_of::<AffineQuantizer>() as u64;
        let mut q = QuantizedTensor::from_tensor(&w, b(6)).unwrap();
        if q.store().tier_name() == "i8" {
            // Tiered default: one byte per 6-bit code.
            assert_eq!(q.resident_bytes(), 100 + meta);
            q.set_bits(b(13)).unwrap();
            assert_eq!(q.resident_bytes(), 200 + meta);
            q.set_bits(b(20)).unwrap();
            assert_eq!(q.store().tier_name(), "packed");
            assert_eq!(q.resident_bytes(), (2000u64.div_ceil(64) + 1) * 8 + meta);
        } else {
            // Forced i64 backend (APT_CODE_BACKEND=i64): 8 bytes per code.
            assert_eq!(q.resident_bytes(), 800 + meta);
        }
    }

    #[test]
    fn rejects_bad_operands() {
        let w = Tensor::from_slice(&[0.0, 1.0]);
        let mut q = QuantizedTensor::from_tensor(&w, b(8)).unwrap();
        let bad_shape = Tensor::from_slice(&[1.0]);
        assert!(q
            .sgd_update(&bad_shape, 0.1, RoundingMode::Truncate, &mut seeded(0))
            .is_err());
        let mut nan_grad = Tensor::from_slice(&[1.0, 1.0]);
        nan_grad.data_mut()[0] = f32::NAN;
        assert!(q
            .sgd_update(&nan_grad, 0.1, RoundingMode::Truncate, &mut seeded(0))
            .is_err());
        let fine = Tensor::from_slice(&[1.0, 1.0]);
        assert!(q
            .sgd_update(&fine, f32::INFINITY, RoundingMode::Truncate, &mut seeded(0))
            .is_err());
        assert!(q.assign(&bad_shape).is_err());
    }

    #[test]
    fn assign_replaces_values() {
        let w = Tensor::from_slice(&[0.0, 1.0]);
        let mut q = QuantizedTensor::from_tensor(&w, b(8)).unwrap();
        let new = Tensor::from_slice(&[-2.0, 2.0]);
        q.assign(&new).unwrap();
        let back = q.to_tensor();
        for (a, b_) in new.data().iter().zip(back.data()) {
            assert!((a - b_).abs() <= q.eps() / 2.0 + 1e-6);
        }
    }

    #[test]
    fn nearest_mode_halves_underflow_threshold() {
        let w = Tensor::from_slice(&[-1.0, 1.0]);
        let mut qt = QuantizedTensor::from_tensor(&w, b(4)).unwrap();
        let mut qn = qt.clone();
        let g = Tensor::full(&[2], qt.eps() * 0.7);
        let st = qt
            .sgd_update(&g, 1.0, RoundingMode::Truncate, &mut seeded(0))
            .unwrap();
        let sn = qn
            .sgd_update(&g, 1.0, RoundingMode::Nearest, &mut seeded(0))
            .unwrap();
        assert_eq!(st.underflowed, 2); // 0.7ε truncates to 0
        assert_eq!(sn.underflowed, 0); // 0.7ε rounds to 1
    }

    #[test]
    fn saturation_ratio_tracks_rail_codes() {
        let w = rng::normal(&[64], 0.5, &mut seeded(7));
        let mut q = QuantizedTensor::from_tensor(&w, b(6)).unwrap();
        // Calibration pins min→0 and max→2^k−1, so a clean tensor sits near
        // the 2/N floor.
        let clean = q.saturation_ratio();
        assert!(clean >= 2.0 / 64.0 && clean < 0.2, "clean ratio {clean}");
        let forced = q.saturate(0.5, true);
        assert_eq!(forced, 32);
        assert!(q.saturation_ratio() >= 0.5);
        // All forced codes decode to the calibrated maximum.
        let max = q.quantizer().range_max();
        let t = q.to_tensor();
        for v in t.data().iter().step_by(2) {
            assert!((v - max).abs() <= q.eps(), "v={v} max={max}");
        }
    }

    #[test]
    fn saturate_handles_degenerate_fractions() {
        let w = Tensor::from_slice(&[-1.0, 0.0, 1.0]);
        let mut q = QuantizedTensor::from_tensor(&w, b(4)).unwrap();
        assert_eq!(q.saturate(0.0, true), 0);
        assert_eq!(q.saturate(f64::NAN, true), 0);
        assert_eq!(q.saturate(-0.3, false), 0);
        assert_eq!(q.saturate(2.0, false), 3); // clamped to 1.0 ⇒ every code
        assert_eq!(q.saturation_ratio(), 1.0);
    }

    #[test]
    fn flip_code_bit_stays_on_grid() {
        let w = rng::normal(&[32], 1.0, &mut seeded(8));
        for k in [2u32, 4, 6, 8] {
            let mut q = QuantizedTensor::from_tensor(&w, b(k)).unwrap();
            let max_code = q.bits().num_steps() as i64;
            for bit in 0..40u32 {
                let new = q.flip_code_bit((bit as usize) % 32, bit).unwrap();
                assert!((0..=max_code).contains(&new), "k={k} bit={bit} q={new}");
            }
            assert!(q.to_tensor().data().iter().all(|v| v.is_finite()));
        }
        let mut q = QuantizedTensor::from_tensor(&w, b(6)).unwrap();
        assert!(q.flip_code_bit(32, 0).is_err());
    }

    #[test]
    fn sgd_update_reports_saturated_codes() {
        let w = Tensor::from_slice(&[-1.0, -0.5, 0.0, 0.5, 1.0]);
        let mut q = QuantizedTensor::from_tensor(&w, b(6)).unwrap();
        let g = Tensor::full(&[5], 0.0);
        let stats = q
            .sgd_update(&g, 0.1, RoundingMode::Truncate, &mut seeded(0))
            .unwrap();
        // Only calibration extremes sit on the rails (the zero-point snap
        // can shift the max off the top rail, as it does here).
        assert_eq!(stats.saturated, 1);
        assert!((stats.saturation_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn stochastic_mode_sometimes_commits_small_updates() {
        let w = rng::normal(&[256], 1.0, &mut seeded(4));
        let mut q = QuantizedTensor::from_tensor(&w, b(6)).unwrap();
        let g = Tensor::full(&[256], q.eps() * 0.5);
        let s = q
            .sgd_update(&g, 1.0, RoundingMode::Stochastic, &mut seeded(5))
            .unwrap();
        assert!(
            s.underflowed > 0 && s.underflowed < 256,
            "underflowed={}",
            s.underflowed
        );
    }

    #[test]
    fn updates_are_bit_identical_across_backends() {
        use crate::{AffineQuantizer, CodeStore, StoreBackend};
        // Same training sequence under the legacy i64 layout and the
        // tiered layout, compared code-for-code — the unit-scale version
        // of the end-to-end differential test.
        let w = rng::normal(&[128], 1.0, &mut seeded(42));
        for k in [4u32, 6, 12, 20] {
            let quantizer = AffineQuantizer::from_tensor(&w, b(k)).unwrap();
            let codes = quantizer.quantize_tensor(&w);
            let mut a = QuantizedTensor {
                store: CodeStore::with_backend(StoreBackend::I64, &codes, b(k)),
                dims: vec![128],
                quantizer,
            };
            let mut c = QuantizedTensor {
                store: CodeStore::with_backend(StoreBackend::Tiered, &codes, b(k)),
                dims: vec![128],
                quantizer,
            };
            let mut ra = seeded(9);
            let mut rc = seeded(9);
            for step in 0..20 {
                let g = rng::normal(&[128], 0.3 + 0.2 * step as f32, &mut seeded(100 + step));
                let sa = a
                    .sgd_update(&g, 0.5, RoundingMode::Stochastic, &mut ra)
                    .unwrap();
                let sc = c
                    .sgd_update(&g, 0.5, RoundingMode::Stochastic, &mut rc)
                    .unwrap();
                assert_eq!(sa, sc, "k={k} step={step}");
                assert_eq!(a.codes(), c.codes(), "k={k} step={step}");
                assert_eq!(
                    a.quantizer().eps().to_bits(),
                    c.quantizer().eps().to_bits(),
                    "k={k} step={step}"
                );
            }
        }
    }
}
