//! Property-based tests of the quantisation substrate — the invariants the
//! paper's Eqs. 2–3 rely on.

use apt_quant::{
    fake, AffineQuantizer, Bitwidth, CodeStore, PackedCodes, PerChannelQuantized, QuantizedTensor,
    RoundingMode, StoreBackend,
};
use apt_tensor::{rng, Tensor};
use proptest::prelude::*;

fn bits_strategy() -> impl Strategy<Value = Bitwidth> {
    (2u32..=16).prop_map(|b| Bitwidth::new(b).unwrap())
}

/// Every supported storage width, including the packed-tier range.
fn all_bits_strategy() -> impl Strategy<Value = Bitwidth> {
    (2u32..=32).prop_map(|b| Bitwidth::new(b).unwrap())
}

/// Random signed codes on the `k`-bit two's-complement range, with both
/// rails forced in so extremes are always exercised.
fn signed_codes_strategy() -> impl Strategy<Value = (Bitwidth, Vec<i64>)> {
    (
        all_bits_strategy(),
        prop::collection::vec(0u64..u64::MAX, 2..192),
    )
        .prop_map(|(bits, raw)| {
            let half = 1i64 << (bits.get() - 1);
            let span = 2u64.pow(bits.get());
            let mut v: Vec<i64> = raw.iter().map(|&r| (r % span) as i64 - half).collect();
            v[0] = -half; // negative rail (sign bit set)
            v[1] = half - 1; // positive rail
            (bits, v)
        })
}

/// Random raw grid codes `q ∈ [0, 2^k − 1]` with both rails forced in.
fn grid_codes_strategy() -> impl Strategy<Value = (Bitwidth, Vec<i64>)> {
    (
        all_bits_strategy(),
        prop::collection::vec(0u64..u64::MAX, 2..192),
    )
        .prop_map(|(bits, raw)| {
            let max = bits.num_steps() as i64;
            let span = 2u64.pow(bits.get());
            let mut v: Vec<i64> = raw.iter().map(|&r| (r % span) as i64).collect();
            v[0] = 0;
            v[1] = max;
            (bits, v)
        })
}

fn values_strategy() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, 1..128)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn roundtrip_error_bounded_by_half_eps(vals in values_strategy(), bits in bits_strategy()) {
        let t = Tensor::from_slice(&vals);
        let q = AffineQuantizer::from_tensor(&t, bits).unwrap();
        for &v in t.data() {
            let back = q.dequantize_value(q.quantize_value(v));
            // Half-step quantisation error plus f32 representation error
            // (which dominates for |v| ≫ ε).
            let tol = q.eps() / 2.0 + v.abs() * f32::EPSILON * 8.0 + 1e-7;
            prop_assert!(
                (back - v).abs() <= tol,
                "v={v} back={back} eps={}", q.eps()
            );
        }
    }

    #[test]
    fn eps_matches_eq2_with_zero_inclusion(
        lo in -50.0f32..50.0,
        span in 0.1f32..100.0,
        bits in bits_strategy(),
    ) {
        let (min, max) = (lo, lo + span);
        let q = AffineQuantizer::from_range(min, max, bits).unwrap();
        let widened_lo = min.min(0.0);
        let widened_hi = max.max(0.0);
        let expected = (widened_hi - widened_lo) / bits.num_steps() as f32;
        prop_assert!((q.eps() - expected.max(1e-12)).abs() <= expected * 1e-5 + 1e-12);
    }

    #[test]
    fn quantize_is_monotone(vals in values_strategy(), bits in bits_strategy()) {
        let t = Tensor::from_slice(&vals);
        let q = AffineQuantizer::from_tensor(&t, bits).unwrap();
        let mut sorted = vals.clone();
        sorted.sort_by(f32::total_cmp);
        for w in sorted.windows(2) {
            prop_assert!(q.quantize_value(w[0]) <= q.quantize_value(w[1]));
        }
    }

    #[test]
    fn more_bits_never_increase_eps(vals in values_strategy(), k in 2u32..16) {
        let t = Tensor::from_slice(&vals);
        let lo = AffineQuantizer::from_tensor(&t, Bitwidth::new(k).unwrap()).unwrap();
        let hi = AffineQuantizer::from_tensor(&t, Bitwidth::new(k + 1).unwrap()).unwrap();
        prop_assert!(hi.eps() <= lo.eps() + 1e-12);
    }

    #[test]
    fn sub_eps_updates_underflow_entirely(
        seed in 0u64..1000,
        bits in bits_strategy(),
        frac in 0.01f32..0.99,
    ) {
        let w = rng::normal(&[32], 1.0, &mut rng::seeded(seed));
        let mut q = QuantizedTensor::from_tensor(&w, bits).unwrap();
        let before = q.to_tensor();
        let g = Tensor::full(&[32], q.eps() * frac);
        let stats = q
            .sgd_update(&g, 1.0, RoundingMode::Truncate, &mut rng::seeded(0))
            .unwrap();
        prop_assert_eq!(stats.underflowed, 32);
        let after = q.to_tensor();
        prop_assert_eq!(after.data(), before.data());
    }

    #[test]
    fn super_eps_updates_apply(seed in 0u64..1000, steps in 1i32..5) {
        let w = rng::normal(&[32], 1.0, &mut rng::seeded(seed));
        let mut q = QuantizedTensor::from_tensor(&w, Bitwidth::new(8).unwrap()).unwrap();
        let g = Tensor::full(&[32], q.eps() * (steps as f32 + 0.5));
        let stats = q
            .sgd_update(&g, 1.0, RoundingMode::Truncate, &mut rng::seeded(0))
            .unwrap();
        prop_assert_eq!(stats.underflowed, 0);
    }

    #[test]
    fn set_bits_preserves_values_within_coarser_eps(
        seed in 0u64..1000,
        from in 4u32..12,
        to in 4u32..12,
    ) {
        let w = rng::normal(&[64], 1.0, &mut rng::seeded(seed));
        let mut q = QuantizedTensor::from_tensor(&w, Bitwidth::new(from).unwrap()).unwrap();
        let before = q.to_tensor();
        let coarse_eps = q.eps().max({
            let mut tmp = q.clone();
            tmp.set_bits(Bitwidth::new(to).unwrap()).unwrap();
            tmp.eps()
        });
        q.set_bits(Bitwidth::new(to).unwrap()).unwrap();
        for (a, b) in before.data().iter().zip(q.to_tensor().data()) {
            prop_assert!((a - b).abs() <= coarse_eps + 1e-6);
        }
    }

    #[test]
    fn memory_bits_is_len_times_k(len in 1usize..256, bits in bits_strategy()) {
        let w = rng::normal(&[len], 1.0, &mut rng::seeded(1));
        let q = QuantizedTensor::from_tensor(&w, bits).unwrap();
        prop_assert_eq!(q.memory_bits(), (len as u64) * u64::from(bits.get()));
    }

    #[test]
    fn fake_quantize_level_count_bounded(seed in 0u64..500, k in 2u32..6) {
        let t = rng::normal(&[512], 1.0, &mut rng::seeded(seed));
        let fq = fake::fake_quantize(&t, Bitwidth::new(k).unwrap()).unwrap();
        let mut levels: Vec<i64> = fq.data().iter().map(|&x| (x * 1e5) as i64).collect();
        levels.sort_unstable();
        levels.dedup();
        prop_assert!(levels.len() as u64 <= 1u64 << k);
    }

    #[test]
    fn ternarize_at_most_three_levels_and_sign_preserving(seed in 0u64..500) {
        let t = rng::normal(&[256], 1.0, &mut rng::seeded(seed));
        let tt = fake::ternarize(&t);
        let mut levels: Vec<i64> = tt.data().iter().map(|&x| (x * 1e5) as i64).collect();
        levels.sort_unstable();
        levels.dedup();
        prop_assert!(levels.len() <= 3);
        for (&orig, &tern) in t.data().iter().zip(tt.data()) {
            prop_assert!(tern == 0.0 || (tern > 0.0) == (orig > 0.0));
        }
    }

    #[test]
    fn quantize_dequantize_is_always_finite(vals in values_strategy(), bits in bits_strategy()) {
        // Soft-error guard invariant: no calibration, round-trip, update, or
        // bit flip may ever manufacture a NaN/Inf out of finite input.
        let t = Tensor::from_slice(&vals);
        let mut q = QuantizedTensor::from_tensor(&t, bits).unwrap();
        prop_assert!(q.to_tensor().data().iter().all(|v| v.is_finite()));
        let g = Tensor::full(&[vals.len()], q.eps() * 3.0);
        q.sgd_update(&g, 1.0, RoundingMode::Nearest, &mut rng::seeded(0)).unwrap();
        prop_assert!(q.to_tensor().data().iter().all(|v| v.is_finite()));
        for bit in 0..8u32 {
            q.flip_code_bit((bit as usize) % vals.len(), bit).unwrap();
        }
        q.saturate(0.5, true);
        prop_assert!(q.to_tensor().data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn per_channel_roundtrip_is_always_finite(
        seed in 0u64..500,
        ch in 1usize..6,
        stride in 1usize..32,
        bits in bits_strategy(),
    ) {
        let t = rng::normal(&[ch, stride], 2.0, &mut rng::seeded(seed));
        let mut pc = PerChannelQuantized::from_tensor(&t, bits).unwrap();
        prop_assert!(pc.to_tensor().data().iter().all(|v| v.is_finite()));
        prop_assert!(pc.saturation_ratio() >= 0.0 && pc.saturation_ratio() <= 1.0);
        pc.saturate(0.3, false);
        pc.flip_code_bit(0, 5).unwrap();
        prop_assert!(pc.to_tensor().data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn packed_roundtrip_all_bitwidths(case in signed_codes_strategy()) {
        // Pack/unpack is lossless for every k in [2, 32] over random codes
        // including negatives and both rails, and the serialised words
        // round-trip through the checkpoint-v3 validation path.
        let (bits, signed) = case;
        let p = PackedCodes::from_signed(&signed, bits).unwrap();
        prop_assert_eq!(p.to_signed_vec(), signed.clone());
        for (i, &c) in signed.iter().enumerate() {
            prop_assert_eq!(p.get(i), c);
        }
        let re = PackedCodes::from_data_words(
            p.data_words().to_vec(), signed.len(), bits).unwrap();
        prop_assert_eq!(re, p);
    }

    #[test]
    fn code_store_backends_agree(case in grid_codes_strategy()) {
        // Tiered and legacy layouts hold identical logical content and
        // produce identical canonical packed words.
        let (bits, codes) = case;
        let tiered = CodeStore::with_backend(StoreBackend::Tiered, &codes, bits);
        let legacy = CodeStore::with_backend(StoreBackend::I64, &codes, bits);
        prop_assert_eq!(tiered.to_vec(), codes.clone());
        prop_assert_eq!(legacy.to_vec(), codes.clone());
        let (tp, lp) = (tiered.to_packed(), legacy.to_packed());
        prop_assert_eq!(tp.data_words(), lp.data_words());
        let max = bits.num_steps() as i64;
        prop_assert_eq!(tiered.count_rails(max), legacy.count_rails(max));
        // The physical footprint never exceeds the legacy layout's.
        prop_assert!(tiered.resident_bytes() <= legacy.resident_bytes());
    }

    #[test]
    fn flip_code_bit_matches_seu_semantics(
        case in grid_codes_strategy(),
        flips in prop::collection::vec((0usize..192usize, 0u32..64u32), 1..32),
    ) {
        // The documented SEU model — `q ^= 1 << (bit % k)` — holds on the
        // packed physical storage, element by element, flip by flip.
        let (bits, codes) = case;
        let k = bits.get();
        let tiered = CodeStore::with_backend(StoreBackend::Tiered, &codes, bits);
        let mut q = QuantizedTensor::from_parts(
            codes.clone(),
            vec![codes.len()],
            AffineQuantizer::from_range(-1.0, 1.0, bits).unwrap(),
        ).unwrap();
        let mut expect = codes.clone();
        let mut store = tiered;
        for &(e, bit) in &flips {
            let elem = e % codes.len();
            let new_store = store.flip_bit(elem, bit % k);
            let new_tensor = q.flip_code_bit(elem, bit).unwrap();
            expect[elem] ^= 1i64 << (bit % k);
            prop_assert_eq!(new_store, expect[elem]);
            prop_assert_eq!(new_tensor, expect[elem]);
            prop_assert!((0..=bits.num_steps() as i64).contains(&new_store));
        }
        prop_assert_eq!(store.to_vec(), expect);
    }

    #[test]
    fn stochastic_rounding_never_exceeds_one_step(x in -20.0f64..20.0, seed in 0u64..200) {
        let mut r = rng::seeded(seed);
        let out = RoundingMode::Stochastic.round_steps(x, &mut r);
        prop_assert!((out as f64 - x).abs() <= 1.0 + 1e-9);
    }

    #[test]
    fn truncate_never_overshoots(x in -20.0f64..20.0) {
        let mut r = rng::seeded(0);
        let out = RoundingMode::Truncate.round_steps(x, &mut r);
        prop_assert!((out as f64).abs() <= x.abs());
        prop_assert!(out == 0 || (out > 0) == (x > 0.0));
    }
}
