//! Dynamic micro-batching with admission control.
//!
//! Single-sample requests land on a **bounded** MPSC queue. A dedicated
//! worker thread pops the first request, then keeps coalescing until
//! either [`BatchPolicy::max_batch`] requests are in hand or
//! [`BatchPolicy::max_delay`] has elapsed since the first one — the
//! classic latency/throughput knob. The coalesced batch runs once through
//! the frozen [`InferenceSession`] and each requester gets its own output
//! row back.
//!
//! Backpressure is typed, not implicit: a full queue sheds the request
//! with [`ServeError::Overloaded`] instead of queueing unboundedly, and a
//! draining runtime answers [`ServeError::ShuttingDown`]. Shutdown is
//! graceful — everything already admitted is executed before the worker
//! exits.
//!
//! **Fleet routing**: every job carries the [`InferenceSession`] it was
//! resolved against at admission time, so one worker serves many models.
//! A coalesced batch is partitioned by plan identity (the `Arc` pointer of
//! the frozen network) before execution — requests resolved against an old
//! plan finish on that old plan even if a hot-swap published a new one
//! mid-flight, which is exactly the drain guarantee the registry's
//! `Arc`-swap relies on.

use crate::{InferenceSession, ServeError, ServeStats, StatsSnapshot};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

/// The batch-coalescing policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Largest batch the worker will coalesce.
    pub max_batch: usize,
    /// Longest a request may wait for co-batchees after reaching the head
    /// of the queue.
    pub max_delay: Duration,
    /// Bound of the admission queue; requests beyond it are shed.
    pub queue_depth: usize,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 8,
            max_delay: Duration::from_micros(2000),
            queue_depth: 128,
        }
    }
}

impl BatchPolicy {
    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] for zero `max_batch` or
    /// `queue_depth`.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.max_batch == 0 || self.queue_depth == 0 {
            return Err(ServeError::BadRequest {
                reason: format!(
                    "batch policy needs max_batch ≥ 1 and queue_depth ≥ 1, got {self:?}"
                ),
            });
        }
        Ok(())
    }
}

/// Where a finished (or shed) request's result goes.
///
/// Blocking callers park on a rendezvous channel; the event-loop server
/// instead receives a [`Completion`] tagged with its connection token and
/// per-connection sequence number on a shared channel, so the reactor
/// thread never blocks on inference.
#[derive(Debug)]
pub(crate) enum Reply {
    /// Rendezvous for [`BatcherHandle::infer_blocking`].
    Blocking(mpsc::SyncSender<Result<Vec<f32>, ServeError>>),
    /// Completion-channel delivery for the event-loop front-end.
    Event {
        /// Connection token the reactor routes the completion back to.
        conn: u64,
        /// Per-connection request sequence number (response ordering).
        seq: u64,
        /// The reactor's completion queue.
        tx: mpsc::Sender<Completion>,
    },
}

impl Reply {
    fn send(self, result: Result<Vec<f32>, ServeError>) {
        match self {
            // A hung-up requester is not an error; drop its result.
            Reply::Blocking(tx) => {
                let _ = tx.send(result);
            }
            // Event completions carry the *encoded* response payload so
            // the serialisation cost lands on the worker thread, not the
            // reactor.
            Reply::Event { conn, seq, tx } => {
                let result = result.map(|row| crate::protocol::encode_f32s(&row));
                let _ = tx.send(Completion { conn, seq, result });
            }
        }
    }
}

/// One finished request routed back to the event loop.
#[derive(Debug)]
pub(crate) struct Completion {
    /// Connection token assigned by the reactor at accept time.
    pub conn: u64,
    /// Per-connection request sequence number.
    pub seq: u64,
    /// The encoded response payload (or a typed shed/failure). Inference
    /// completions carry `encode_f32s` bytes; out-of-band completions
    /// (e.g. reload reports) carry their own payload.
    pub result: Result<Vec<u8>, ServeError>,
}

/// One admitted request: the flat sample, the plan it was resolved
/// against, its enqueue time (for the latency histogram), an optional
/// absolute deadline, and where the result goes.
struct Job {
    sample: Vec<f32>,
    session: InferenceSession,
    enqueued: Instant,
    deadline: Option<Instant>,
    resp: Reply,
}

impl Job {
    /// `true` once the job's deadline has passed — such work is shed
    /// *before* inference, not run and discarded after.
    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }
}

/// How often the idle worker wakes to check the shutdown flag.
const IDLE_POLL: Duration = Duration::from_millis(20);

/// The micro-batching runtime: owns the worker thread and the queue.
/// Request submission goes through cloneable [`BatcherHandle`]s.
#[derive(Debug)]
pub struct MicroBatcher {
    tx: mpsc::SyncSender<Job>,
    stats: Arc<ServeStats>,
    draining: Arc<AtomicBool>,
    policy: BatchPolicy,
    session: InferenceSession,
    worker: Option<thread::JoinHandle<()>>,
}

impl MicroBatcher {
    /// Spawns the batching worker over a frozen session (the **default**
    /// plan for submissions that don't carry their own).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] for an invalid policy.
    pub fn new(session: InferenceSession, policy: BatchPolicy) -> Result<Self, ServeError> {
        MicroBatcher::with_stats(session, policy, Arc::new(ServeStats::default()))
    }

    /// As [`new`](Self::new), recording into a shared stats collector so
    /// the registry, server, and batcher report as one fleet.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] for an invalid policy.
    pub fn with_stats(
        session: InferenceSession,
        policy: BatchPolicy,
        stats: Arc<ServeStats>,
    ) -> Result<Self, ServeError> {
        policy.validate()?;
        let (tx, rx) = mpsc::sync_channel::<Job>(policy.queue_depth);
        let draining = Arc::new(AtomicBool::new(false));
        let worker = {
            let stats = Arc::clone(&stats);
            let draining = Arc::clone(&draining);
            let policy = policy.clone();
            thread::spawn(move || worker_loop(&rx, &stats, &draining, &policy))
        };
        Ok(MicroBatcher {
            tx,
            stats,
            draining,
            policy,
            session,
            worker: Some(worker),
        })
    }

    /// A cloneable submission handle (one per connection, typically).
    pub fn handle(&self) -> BatcherHandle {
        BatcherHandle {
            tx: self.tx.clone(),
            stats: Arc::clone(&self.stats),
            draining: Arc::clone(&self.draining),
            session: self.session.clone(),
            queue_depth: self.policy.queue_depth,
        }
    }

    /// The session this batcher executes on.
    pub fn session(&self) -> &InferenceSession {
        &self.session
    }

    /// The active policy.
    pub fn policy(&self) -> &BatchPolicy {
        &self.policy
    }

    /// Snapshot of the serving counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// The shared stats collector (for fronts that record their own
    /// protocol-level counters).
    pub fn stats_handle(&self) -> Arc<ServeStats> {
        Arc::clone(&self.stats)
    }

    /// Graceful drain: stop admitting, execute everything already queued,
    /// then join the worker. Idempotent.
    pub fn shutdown(&mut self) {
        self.draining.store(true, Ordering::SeqCst);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for MicroBatcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A cheap, cloneable request-submission handle.
#[derive(Debug, Clone)]
pub struct BatcherHandle {
    tx: mpsc::SyncSender<Job>,
    stats: Arc<ServeStats>,
    draining: Arc<AtomicBool>,
    session: InferenceSession,
    queue_depth: usize,
}

impl BatcherHandle {
    /// Submits one flat sample and blocks until its output row (or a typed
    /// rejection) comes back.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the admission queue is full,
    /// [`ServeError::ShuttingDown`] during drain, and whatever the forward
    /// pass reports (`BadRequest` for a wrong-length sample).
    pub fn infer_blocking(&self, sample: Vec<f32>) -> Result<Vec<f32>, ServeError> {
        self.infer_with_deadline(sample, None)
    }

    /// Like [`infer_blocking`](Self::infer_blocking), but the request
    /// carries an absolute deadline: if it is still queued when the
    /// deadline passes, the worker sheds it with
    /// [`ServeError::DeadlineExceeded`] instead of running inference.
    ///
    /// # Errors
    ///
    /// As [`infer_blocking`](Self::infer_blocking), plus
    /// [`ServeError::DeadlineExceeded`].
    pub fn infer_with_deadline(
        &self,
        sample: Vec<f32>,
        deadline: Option<Instant>,
    ) -> Result<Vec<f32>, ServeError> {
        let (resp_tx, resp_rx) = mpsc::sync_channel(1);
        self.submit(
            self.session.clone(),
            sample,
            deadline,
            Reply::Blocking(resp_tx),
        )?;
        match resp_rx.recv() {
            Ok(result) => result,
            // Worker exited between admission and execution — only
            // possible on teardown.
            Err(_) => Err(ServeError::ShuttingDown),
        }
    }

    /// Non-blocking submission for the event-loop front-end: the request
    /// runs on `session` (resolved against the registry at admission
    /// time) and the result comes back as a [`Completion`] on `tx`,
    /// tagged `(conn, seq)`.
    ///
    /// # Errors
    ///
    /// Admission failures ([`ServeError::Overloaded`],
    /// [`ServeError::ShuttingDown`]) are returned synchronously — in that
    /// case **no** completion will arrive for this `(conn, seq)`.
    pub(crate) fn submit_event(
        &self,
        session: InferenceSession,
        sample: Vec<f32>,
        deadline: Option<Instant>,
        conn: u64,
        seq: u64,
        tx: mpsc::Sender<Completion>,
    ) -> Result<(), ServeError> {
        self.submit(session, sample, deadline, Reply::Event { conn, seq, tx })
    }

    /// Shared admission path: typed refusal, never blocks.
    fn submit(
        &self,
        session: InferenceSession,
        sample: Vec<f32>,
        deadline: Option<Instant>,
        resp: Reply,
    ) -> Result<(), ServeError> {
        if self.draining.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        let job = Job {
            sample,
            session,
            enqueued: Instant::now(),
            deadline,
            resp,
        };
        match self.tx.try_send(job) {
            Ok(()) => Ok(()),
            Err(mpsc::TrySendError::Full(_)) => {
                self.stats.record_shed();
                Err(ServeError::Overloaded {
                    queue_depth: self.queue_depth,
                })
            }
            Err(mpsc::TrySendError::Disconnected(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// `true` once drain has begun.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }
}

/// The worker: coalesce → execute → respond, until drained.
fn worker_loop(
    rx: &mpsc::Receiver<Job>,
    stats: &ServeStats,
    draining: &AtomicBool,
    policy: &BatchPolicy,
) {
    loop {
        let first = match rx.recv_timeout(IDLE_POLL) {
            Ok(job) => job,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if draining.load(Ordering::SeqCst) {
                    // Admission is closed; whatever try_recv still sees
                    // was accepted before the flag flipped. Execute it.
                    drain_remaining(rx, stats, policy);
                    return;
                }
                continue;
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        };
        // An already-expired head is shed without opening a batch window.
        if first.expired(Instant::now()) {
            shed_expired(first, stats);
            continue;
        }
        let batch = coalesce(rx, first, policy);
        let live = shed_expired_jobs(batch, stats);
        if !live.is_empty() {
            run_batches(stats, live);
        }
    }
}

/// Answers one expired job with a typed deadline error; inference never
/// runs for it.
fn shed_expired(job: Job, stats: &ServeStats) {
    stats.record_deadline_expired();
    let waited_us = job.enqueued.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    job.resp
        .send(Err(ServeError::DeadlineExceeded { waited_us }));
}

/// Splits a batch into live jobs (returned) and expired ones (answered
/// with typed errors immediately).
fn shed_expired_jobs(jobs: Vec<Job>, stats: &ServeStats) -> Vec<Job> {
    let now = Instant::now();
    let mut live = Vec::with_capacity(jobs.len());
    for job in jobs {
        if job.expired(now) {
            shed_expired(job, stats);
        } else {
            live.push(job);
        }
    }
    live
}

/// Collects up to `max_batch` jobs, waiting at most `max_delay` past the
/// first job's arrival.
fn coalesce(rx: &mpsc::Receiver<Job>, first: Job, policy: &BatchPolicy) -> Vec<Job> {
    let deadline = Instant::now() + policy.max_delay;
    let mut jobs = vec![first];
    while jobs.len() < policy.max_batch {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        match rx.recv_timeout(deadline - now) {
            Ok(job) => jobs.push(job),
            Err(_) => break,
        }
    }
    jobs
}

/// Executes everything still in the queue as final batches.
fn drain_remaining(rx: &mpsc::Receiver<Job>, stats: &ServeStats, policy: &BatchPolicy) {
    let mut jobs = Vec::new();
    while let Ok(job) = rx.try_recv() {
        // Deadlines hold during drain too: expired queued work gets a
        // typed error, not a hang and not a post-deadline answer.
        if job.expired(Instant::now()) {
            shed_expired(job, stats);
            continue;
        }
        jobs.push(job);
        if jobs.len() == policy.max_batch {
            run_batches(stats, std::mem::take(&mut jobs));
        }
    }
    if !jobs.is_empty() {
        run_batches(stats, jobs);
    }
}

/// Partitions a coalesced batch by plan identity (the `Arc` pointer of
/// each job's frozen network) and executes one sub-batch per plan,
/// preserving submission order within each plan. In the common
/// single-model case this is one group and zero extra copies.
fn run_batches(stats: &ServeStats, jobs: Vec<Job>) {
    let mut groups: Vec<(*const apt_nn::Network, Vec<Job>)> = Vec::new();
    for job in jobs {
        let key = Arc::as_ptr(job.session.network());
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, group)) => group.push(job),
            None => groups.push((key, vec![job])),
        }
    }
    for (_, group) in groups {
        run_batch(stats, group);
    }
}

/// Runs one same-plan batch and distributes per-row results. Input vectors
/// are recycled through the session arena after staging.
fn run_batch(stats: &ServeStats, jobs: Vec<Job>) {
    stats.record_batch(jobs.len());
    let session = jobs[0].session.clone();
    let mut samples = Vec::with_capacity(jobs.len());
    let mut waiters = Vec::with_capacity(jobs.len());
    for job in jobs {
        samples.push(job.sample);
        waiters.push((job.enqueued, job.resp));
    }
    match session.infer_samples(&samples) {
        Ok(rows) => {
            for ((enqueued, resp), row) in waiters.into_iter().zip(rows) {
                let latency_us = enqueued.elapsed().as_micros().min(u128::from(u64::MAX));
                stats.record_completed(latency_us as u64);
                resp.send(Ok(row));
            }
        }
        Err(e) => {
            for (_, resp) in waiters {
                stats.record_error();
                resp.send(Err(e.duplicate()));
            }
        }
    }
    for sample in samples {
        session.arena().put(sample);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModelArch, ModelSpec};
    use apt_nn::checkpoint;

    fn session() -> InferenceSession {
        let spec = ModelSpec {
            arch: ModelArch::Mlp(vec![5, 8, 3]),
            classes: 3,
            img_size: 0,
            width_mult: 1.0,
        };
        let mut net = spec.build().unwrap();
        let blob = checkpoint::save_full(&mut net);
        InferenceSession::from_checkpoint(&spec, &blob).unwrap()
    }

    #[test]
    fn single_request_round_trip() {
        let s = session();
        let want = s.infer_one(&vec![0.3; 5]).unwrap();
        let batcher = MicroBatcher::new(s, BatchPolicy::default()).unwrap();
        let got = batcher.handle().infer_blocking(vec![0.3; 5]).unwrap();
        assert_eq!(got, want);
        let snap = batcher.stats();
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.shed, 0);
    }

    #[test]
    fn concurrent_requests_batch_and_match_single_sample() {
        let s = session();
        let policy = BatchPolicy {
            max_batch: 4,
            max_delay: Duration::from_millis(20),
            queue_depth: 64,
        };
        let batcher = MicroBatcher::new(s.clone(), policy).unwrap();
        let mut threads = Vec::new();
        for t in 0..12 {
            let h = batcher.handle();
            let s = s.clone();
            threads.push(thread::spawn(move || {
                let sample = vec![t as f32 * 0.1; 5];
                let got = h.infer_blocking(sample.clone()).unwrap();
                let want = s.infer_one(&sample).unwrap();
                assert_eq!(got, want, "batched result must be bit-identical");
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        let snap = batcher.stats();
        assert_eq!(snap.completed, 12);
        assert!(
            snap.batches < 12,
            "some coalescing expected, got {} batches",
            snap.batches
        );
        assert!(snap.batch_hist.iter().all(|&(size, _)| size <= 4));
    }

    #[test]
    fn wrong_length_sample_fails_typed() {
        let batcher = MicroBatcher::new(session(), BatchPolicy::default()).unwrap();
        let err = batcher.handle().infer_blocking(vec![1.0; 3]).unwrap_err();
        assert!(matches!(err, ServeError::BadRequest { .. }), "{err}");
        assert_eq!(batcher.stats().errors, 1);
    }

    #[test]
    fn shutdown_rejects_new_requests() {
        let mut batcher = MicroBatcher::new(session(), BatchPolicy::default()).unwrap();
        let h = batcher.handle();
        batcher.shutdown();
        assert!(h.is_draining());
        assert!(matches!(
            h.infer_blocking(vec![0.0; 5]),
            Err(ServeError::ShuttingDown)
        ));
    }

    #[test]
    fn expired_deadline_is_shed_before_inference() {
        let batcher = MicroBatcher::new(session(), BatchPolicy::default()).unwrap();
        let h = batcher.handle();
        let past = Instant::now() - Duration::from_millis(5);
        match h.infer_with_deadline(vec![0.2; 5], Some(past)) {
            Err(ServeError::DeadlineExceeded { .. }) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        let snap = batcher.stats();
        assert_eq!(snap.deadline_expired, 1);
        assert_eq!(snap.completed, 0, "expired work must never run");
        // A live deadline still gets a real answer.
        let future = Instant::now() + Duration::from_secs(30);
        assert!(h.infer_with_deadline(vec![0.2; 5], Some(future)).is_ok());
        assert_eq!(batcher.stats().completed, 1);
    }

    /// Drain contract: every request admitted before shutdown gets exactly
    /// one response — in-flight work completes bit-exactly, queued-but-
    /// expired work gets a typed deadline error, and nothing hangs, is
    /// lost, or is answered twice.
    #[test]
    fn drain_completes_inflight_and_sheds_expired() {
        let s = session();
        let policy = BatchPolicy {
            max_batch: 4,
            max_delay: Duration::from_millis(25),
            queue_depth: 64,
        };
        let mut batcher = MicroBatcher::new(s.clone(), policy).unwrap();
        const N: usize = 24;
        let mut threads = Vec::new();
        for t in 0..N {
            let h = batcher.handle();
            let s = s.clone();
            // Odd requests carry a deadline that will expire while they sit
            // behind the 25ms coalescing windows of earlier batches.
            let deadline = (t % 2 == 1).then(|| Instant::now() + Duration::from_millis(10));
            threads.push(thread::spawn(move || {
                let sample = vec![t as f32 * 0.05; 5];
                let result = h.infer_with_deadline(sample.clone(), deadline);
                let want = s.infer_one(&sample).unwrap();
                (result, want)
            }));
        }
        // Begin drain while the queue is still full.
        thread::sleep(Duration::from_millis(5));
        batcher.shutdown();

        let mut ok = 0u64;
        let mut expired = 0u64;
        let mut shed = 0u64;
        for t in threads {
            match t.join().unwrap() {
                (Ok(row), want) => {
                    assert_eq!(row, want, "drained response must stay bit-exact");
                    ok += 1;
                }
                (Err(ServeError::DeadlineExceeded { .. }), _) => expired += 1,
                (Err(ServeError::Overloaded { .. }), _) => shed += 1,
                (Err(ServeError::ShuttingDown), _) => shed += 1,
                (Err(e), _) => panic!("untyped drain failure: {e}"),
            }
        }
        assert_eq!(ok + expired + shed, N as u64, "every request answered once");
        assert!(ok >= 1, "some admitted work must have completed");
        let snap = batcher.stats();
        assert_eq!(snap.completed, ok, "no duplicated or lost completions");
        assert_eq!(snap.deadline_expired, expired);
        assert_eq!(snap.errors, 0);
    }

    #[test]
    fn policy_validation() {
        assert!(BatchPolicy {
            max_batch: 0,
            ..BatchPolicy::default()
        }
        .validate()
        .is_err());
        assert!(BatchPolicy {
            queue_depth: 0,
            ..BatchPolicy::default()
        }
        .validate()
        .is_err());
        assert!(BatchPolicy::default().validate().is_ok());
    }

    #[test]
    fn mixed_plan_batch_splits_and_stays_exact() {
        // Two distinct plans with identical geometry but different weights:
        // interleaved submissions must each run on the plan they were
        // resolved against, even when coalesced into one queue window.
        let spec = ModelSpec {
            arch: ModelArch::Mlp(vec![5, 8, 3]),
            classes: 3,
            img_size: 0,
            width_mult: 1.0,
        };
        let make = |seed: u64| {
            let mut net = apt_nn::models::mlp(
                "mlp",
                &[5, 8, 3],
                &apt_nn::QuantScheme::paper_apt(),
                &mut apt_tensor::rng::seeded(seed),
            )
            .unwrap();
            let blob = checkpoint::save_full(&mut net);
            InferenceSession::from_checkpoint(&spec, &blob).unwrap()
        };
        let a = make(11);
        let b = make(22);
        let sample = vec![0.7; 5];
        let want_a = a.infer_one(&sample).unwrap();
        let want_b = b.infer_one(&sample).unwrap();
        assert_ne!(want_a, want_b, "plans must actually differ");

        let policy = BatchPolicy {
            max_batch: 16,
            max_delay: Duration::from_millis(30),
            queue_depth: 64,
        };
        let batcher = MicroBatcher::new(a.clone(), policy).unwrap();
        let h = batcher.handle();
        let (tx, rx) = mpsc::channel();
        const N: u64 = 10;
        for seq in 0..N {
            let session = if seq % 2 == 0 { a.clone() } else { b.clone() };
            h.submit_event(session, sample.clone(), None, 1, seq, tx.clone())
                .unwrap();
        }
        let mut seen = 0;
        while seen < N {
            let c = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            let payload = c.result.expect("no typed failures expected");
            let row = crate::protocol::decode_f32s(&payload).unwrap();
            let want = if c.seq % 2 == 0 { &want_a } else { &want_b };
            assert_eq!(&row, want, "seq {} answered by the wrong plan", c.seq);
            seen += 1;
        }
        assert_eq!(batcher.stats().completed, N);
    }

    #[test]
    fn overload_sheds_with_typed_error() {
        // A policy that admits one queued request at a time, with a worker
        // slow to pick up (max_delay stretches batch assembly).
        let policy = BatchPolicy {
            max_batch: 1,
            max_delay: Duration::from_micros(1),
            queue_depth: 1,
        };
        let batcher = MicroBatcher::new(session(), policy).unwrap();
        let mut threads = Vec::new();
        for _ in 0..16 {
            let h = batcher.handle();
            threads.push(thread::spawn(move || {
                h.infer_blocking(vec![0.5; 5]).map(|_| ())
            }));
        }
        let results: Vec<Result<(), ServeError>> =
            threads.into_iter().map(|t| t.join().unwrap()).collect();
        let ok = results.iter().filter(|r| r.is_ok()).count();
        let shed = results
            .iter()
            .filter(|r| matches!(r, Err(ServeError::Overloaded { .. })))
            .count();
        assert_eq!(ok + shed, 16, "only Ok or Overloaded allowed: {results:?}");
        assert!(ok >= 1);
        let snap = batcher.stats();
        assert_eq!(snap.completed as usize, ok);
        assert_eq!(snap.shed as usize, shed);
    }
}
