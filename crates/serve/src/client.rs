//! A small blocking client for the serving protocol.
//!
//! Used by the examples, the bench harness, and the integration tests;
//! applications embedding the runtime in-process should talk to
//! [`crate::BatcherHandle`] directly instead.
//!
//! Two robustness layers are opt-in:
//!
//! * [`ClientConfig`] — connect/read/write socket timeouts, so a hung or
//!   drained server surfaces as a typed I/O error instead of a parked
//!   thread.
//! * [`RetryPolicy`] — bounded retry with exponential backoff and
//!   deterministic jitter for the two transient failures worth retrying:
//!   [`ServeError::Overloaded`] shed and connect failures. Everything else
//!   (bad request, protocol violation) fails fast.

use crate::protocol::{
    self, OP_HEALTH, OP_INFER, OP_INFER_MODEL, OP_RELOAD, OP_STATS, STATUS_BAD_REQUEST,
    STATUS_DEADLINE_EXCEEDED, STATUS_INTERNAL, STATUS_MODEL_UNAVAILABLE, STATUS_OK,
    STATUS_OVERLOADED, STATUS_SHUTTING_DOWN,
};
use crate::ServeError;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Socket-level timeouts for a [`ServeClient`]. `None` means "wait
/// forever", matching pre-timeout behaviour.
#[derive(Debug, Clone, Default)]
pub struct ClientConfig {
    /// Bound on establishing the TCP connection.
    pub connect_timeout: Option<Duration>,
    /// Bound on each blocking read (response wait).
    pub read_timeout: Option<Duration>,
    /// Bound on each blocking write.
    pub write_timeout: Option<Duration>,
}

impl ClientConfig {
    /// A sane interactive profile: 1s connect, 5s read, 5s write.
    pub fn with_deadlines() -> ClientConfig {
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(1)),
            read_timeout: Some(Duration::from_secs(5)),
            write_timeout: Some(Duration::from_secs(5)),
        }
    }
}

/// Bounded retry with exponential backoff and jitter.
///
/// Retries fire only on [`ServeError::Overloaded`] (the server said "back
/// off and come back") and on transient connect failures during
/// reconnection — never on `BadRequest`/`Protocol` (client bugs) or
/// `ShuttingDown` (the instance is going away). Off by default: plain
/// [`ServeClient::infer`] never retries.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Additional attempts after the first (0 = no retry).
    pub max_retries: u32,
    /// Backoff before retry `k` is `base_delay · 2^k`, capped at
    /// [`max_delay`](Self::max_delay).
    pub base_delay: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_delay: Duration,
    /// Fraction of each backoff randomised away (`0.0..=1.0`); jitter
    /// de-synchronises retry storms from many clients.
    pub jitter: f64,
    /// Seed for the deterministic jitter stream (reproducible benches).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 5,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(250),
            jitter: 0.5,
            seed: 0x5e7e,
        }
    }
}

impl RetryPolicy {
    /// The backoff to sleep before retry `attempt` (0-based), jittered.
    pub fn backoff(&self, attempt: u32, rng: &mut StdRng) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(2u32.saturating_pow(attempt.min(16)))
            .min(self.max_delay);
        let jitter = self.jitter.clamp(0.0, 1.0);
        if jitter == 0.0 {
            return exp;
        }
        // Uniform in [1 - jitter, 1] of the exponential delay.
        let scale = 1.0 - jitter * rng.gen_range(0.0..1.0);
        exp.mul_f64(scale)
    }
}

/// One blocking connection to an `apt serve` instance.
///
/// The connection stays open across requests; every method is one
/// request/response round trip. Not `Sync` — use one client per thread
/// (the server multiplexes fairly across connections).
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
    addr: SocketAddr,
    config: ClientConfig,
    retry_nonce: u64,
}

impl ServeClient {
    /// Connects to a running server with no socket timeouts.
    ///
    /// # Errors
    ///
    /// Propagates connection failures as [`ServeError::Io`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<ServeClient, ServeError> {
        ServeClient::connect_with(addr, &ClientConfig::default())
    }

    /// Connects with explicit connect/read/write timeouts.
    ///
    /// # Errors
    ///
    /// Propagates connection failures (including connect timeout) as
    /// [`ServeError::Io`].
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: &ClientConfig,
    ) -> Result<ServeClient, ServeError> {
        let mut last_err: Option<std::io::Error> = None;
        for resolved in addr.to_socket_addrs()? {
            let attempt = match config.connect_timeout {
                Some(t) => TcpStream::connect_timeout(&resolved, t),
                None => TcpStream::connect(resolved),
            };
            match attempt {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(config.read_timeout)?;
                    stream.set_write_timeout(config.write_timeout)?;
                    return Ok(ServeClient {
                        stream,
                        addr: resolved,
                        config: config.clone(),
                        retry_nonce: 0,
                    });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(ServeError::Io(last_err.unwrap_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            )
        })))
    }

    /// The resolved address this client talks (and reconnects) to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sends one frame and reads the response, mapping error statuses back
    /// onto typed [`ServeError`]s.
    fn round_trip(&mut self, op: u8, payload: &[u8]) -> Result<Vec<u8>, ServeError> {
        protocol::write_frame(&mut self.stream, op, payload)?;
        let (status, body) = protocol::read_frame(&mut self.stream)?;
        let text = || String::from_utf8_lossy(&body).into_owned();
        match status {
            STATUS_OK => Ok(body),
            STATUS_OVERLOADED => Err(ServeError::Overloaded { queue_depth: 0 }),
            STATUS_BAD_REQUEST => Err(ServeError::BadRequest { reason: text() }),
            STATUS_SHUTTING_DOWN => Err(ServeError::ShuttingDown),
            STATUS_DEADLINE_EXCEEDED => Err(ServeError::DeadlineExceeded { waited_us: 0 }),
            // The model field is filled in by callers that know which
            // model the request named (e.g. `infer_model`).
            STATUS_MODEL_UNAVAILABLE => Err(ServeError::ModelUnavailable {
                model: String::new(),
                reason: text(),
            }),
            STATUS_INTERNAL => Err(ServeError::Internal { reason: text() }),
            // Forward compatibility: a newer server may speak statuses this
            // build does not know. The request's fate IS known (the server
            // answered), so this is typed distinctly and never retried.
            unknown => Err(ServeError::UnrecognizedStatus {
                status: unknown,
                reason: text(),
            }),
        }
    }

    /// Runs one sample through the served model and returns its output row.
    ///
    /// # Errors
    ///
    /// Typed server-side failures ([`ServeError::Overloaded`],
    /// [`ServeError::BadRequest`], [`ServeError::DeadlineExceeded`],
    /// [`ServeError::ShuttingDown`]) plus I/O and protocol errors.
    pub fn infer(&mut self, sample: &[f32]) -> Result<Vec<f32>, ServeError> {
        self.infer_frame(OP_INFER, &protocol::encode_f32s(sample))
    }

    /// Runs one sample through the **named** model on a multi-tenant
    /// server and returns its output row.
    ///
    /// # Errors
    ///
    /// As [`infer`](Self::infer), plus [`ServeError::ModelUnavailable`]
    /// (with the model id filled in) when the model is unknown or was
    /// evicted under the server's resident-bytes budget — a condition this
    /// client never retries.
    pub fn infer_model(&mut self, model: &str, sample: &[f32]) -> Result<Vec<f32>, ServeError> {
        let payload = protocol::encode_model_infer(model, sample);
        self.infer_frame(OP_INFER_MODEL, &payload)
            .map_err(|e| fill_model(e, model))
    }

    /// Like [`infer`](Self::infer), but retries `Overloaded` sheds with
    /// the policy's backoff, reconnecting (also with backoff) if the
    /// connection drops mid-retry.
    ///
    /// # Errors
    ///
    /// The last error once `policy.max_retries` extra attempts are spent,
    /// or immediately for non-retryable failures (`BadRequest`,
    /// `Protocol`, `ShuttingDown`, `DeadlineExceeded`,
    /// `ModelUnavailable`, `UnrecognizedStatus`).
    pub fn infer_retry(
        &mut self,
        sample: &[f32],
        policy: &RetryPolicy,
    ) -> Result<Vec<f32>, ServeError> {
        self.retry_frame(OP_INFER, &protocol::encode_f32s(sample), policy)
    }

    /// [`infer_model`](Self::infer_model) with the retry policy of
    /// [`infer_retry`](Self::infer_retry). [`ServeError::ModelUnavailable`]
    /// is **not** retried: re-sending the same request to the same
    /// instance cannot succeed until someone re-publishes the model.
    ///
    /// # Errors
    ///
    /// As [`infer_retry`](Self::infer_retry).
    pub fn infer_model_retry(
        &mut self,
        model: &str,
        sample: &[f32],
        policy: &RetryPolicy,
    ) -> Result<Vec<f32>, ServeError> {
        let payload = protocol::encode_model_infer(model, sample);
        self.retry_frame(OP_INFER_MODEL, &payload, policy)
            .map_err(|e| fill_model(e, model))
    }

    /// Asks the server to rescan its model directory, ingesting new or
    /// changed checkpoints (and quarantining bad ones). Returns the JSON
    /// rescan report.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] when the server has no model directory,
    /// [`ServeError::Overloaded`] when a rescan is already running, plus
    /// I/O and protocol errors.
    pub fn reload(&mut self) -> Result<String, ServeError> {
        let body = self.round_trip(OP_RELOAD, &[])?;
        String::from_utf8(body).map_err(|_| ServeError::Protocol {
            reason: "reload response is not UTF-8".to_string(),
        })
    }

    /// One inference round trip for any infer-shaped op.
    fn infer_frame(&mut self, op: u8, payload: &[u8]) -> Result<Vec<f32>, ServeError> {
        let body = self.round_trip(op, payload)?;
        protocol::decode_f32s(&body)
    }

    /// The shared retry loop: only [`ServeError::Overloaded`] and
    /// [`ServeError::Io`] are transient; everything else is the request's
    /// final fate.
    fn retry_frame(
        &mut self,
        op: u8,
        payload: &[u8],
        policy: &RetryPolicy,
    ) -> Result<Vec<f32>, ServeError> {
        self.retry_nonce = self.retry_nonce.wrapping_add(1);
        let mut rng = StdRng::seed_from_u64(policy.seed ^ self.retry_nonce);
        let mut attempt = 0u32;
        let mut broken = false;
        loop {
            let result = if broken {
                match ServeClient::connect_with(self.addr, &self.config) {
                    Ok(fresh) => {
                        self.stream = fresh.stream;
                        broken = false;
                        self.infer_frame(op, payload)
                    }
                    Err(e) => Err(e),
                }
            } else {
                self.infer_frame(op, payload)
            };
            match result {
                Ok(row) => return Ok(row),
                Err(e @ (ServeError::Overloaded { .. } | ServeError::Io(_))) => {
                    if matches!(e, ServeError::Io(_)) {
                        // The stream state is unknown; reconnect next try.
                        broken = true;
                    }
                    if attempt >= policy.max_retries {
                        return Err(e);
                    }
                    std::thread::sleep(policy.backoff(attempt, &mut rng));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Fetches the server's serving counters as a JSON string.
    ///
    /// # Errors
    ///
    /// I/O, protocol, and server-side errors as for [`infer`](Self::infer).
    pub fn stats_json(&mut self) -> Result<String, ServeError> {
        let body = self.round_trip(OP_STATS, &[])?;
        String::from_utf8(body).map_err(|_| ServeError::Protocol {
            reason: "stats response is not UTF-8".to_string(),
        })
    }

    /// Liveness/identity check; returns the health JSON.
    ///
    /// # Errors
    ///
    /// I/O, protocol, and server-side errors as for [`infer`](Self::infer).
    pub fn health(&mut self) -> Result<String, ServeError> {
        let body = self.round_trip(OP_HEALTH, &[])?;
        String::from_utf8(body).map_err(|_| ServeError::Protocol {
            reason: "health response is not UTF-8".to_string(),
        })
    }
}

/// Stamps the requested model id onto a bare wire-level
/// `ModelUnavailable` (the status frame doesn't echo the id back).
fn fill_model(e: ServeError, model: &str) -> ServeError {
    match e {
        ServeError::ModelUnavailable { model: m, reason } if m.is_empty() => {
            ServeError::ModelUnavailable {
                model: model.to_string(),
                reason,
            }
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_caps_and_jitters_within_bounds() {
        let p = RetryPolicy {
            max_retries: 8,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(100),
            jitter: 0.5,
            seed: 7,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let mut prev_cap = Duration::ZERO;
        for attempt in 0..8 {
            let cap = p
                .base_delay
                .saturating_mul(2u32.saturating_pow(attempt))
                .min(p.max_delay);
            for _ in 0..32 {
                let d = p.backoff(attempt, &mut rng);
                assert!(d <= cap, "attempt {attempt}: {d:?} > cap {cap:?}");
                assert!(d >= cap.mul_f64(0.5), "attempt {attempt}: {d:?} too small");
            }
            assert!(cap >= prev_cap);
            prev_cap = cap;
        }
        // Zero jitter is exact.
        let exact = RetryPolicy {
            jitter: 0.0,
            ..p.clone()
        };
        assert_eq!(exact.backoff(0, &mut rng), Duration::from_millis(2));
        assert_eq!(exact.backoff(20, &mut rng), Duration::from_millis(100));
    }

    /// A one-connection fake server that answers every request frame with
    /// a fixed status byte, counting how many requests it saw. Lets the
    /// client's status mapping and retry exclusions be tested without a
    /// real fleet.
    fn fixed_status_server(status: u8) -> (SocketAddr, std::sync::mpsc::Receiver<usize>) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut served = 0usize;
            while let Ok((_op, _payload)) = protocol::read_frame(&mut stream) {
                let _ = protocol::write_frame(&mut stream, status, b"future ladder rung");
                served += 1;
            }
            let _ = tx.send(served);
        });
        (addr, rx)
    }

    #[test]
    fn model_unavailable_status_is_typed_with_model_id_and_never_retried() {
        let (addr, served) = fixed_status_server(STATUS_MODEL_UNAVAILABLE);
        let mut client = ServeClient::connect(addr).unwrap();
        match client.infer_model("fleet-a", &[1.0, 2.0]) {
            Err(ServeError::ModelUnavailable { model, reason }) => {
                assert_eq!(model, "fleet-a");
                assert!(reason.contains("future ladder rung"));
            }
            other => panic!("expected ModelUnavailable, got {other:?}"),
        }
        // With a generous retry budget the client must still send exactly
        // one more request: unavailability is not transient here.
        let policy = RetryPolicy {
            max_retries: 10,
            ..RetryPolicy::default()
        };
        assert!(matches!(
            client.infer_model_retry("fleet-a", &[1.0, 2.0], &policy),
            Err(ServeError::ModelUnavailable { .. })
        ));
        drop(client);
        assert_eq!(served.recv().unwrap(), 2, "no retries may have fired");
    }

    #[test]
    fn unknown_status_byte_maps_typed_and_never_retried() {
        let (addr, served) = fixed_status_server(213);
        let mut client = ServeClient::connect(addr).unwrap();
        match client.infer(&[0.5]) {
            Err(ServeError::UnrecognizedStatus { status, reason }) => {
                assert_eq!(status, 213);
                assert!(reason.contains("future ladder rung"));
            }
            other => panic!("expected UnrecognizedStatus, got {other:?}"),
        }
        let policy = RetryPolicy {
            max_retries: 10,
            ..RetryPolicy::default()
        };
        assert!(matches!(
            client.infer_retry(&[0.5], &policy),
            Err(ServeError::UnrecognizedStatus { .. })
        ));
        drop(client);
        assert_eq!(served.recv().unwrap(), 2, "no retries may have fired");
    }

    #[test]
    fn connect_with_timeout_fails_fast_on_dead_port() {
        // Port 1 on loopback: nothing listens there; either refused
        // instantly or timed out — both must surface as typed Io.
        let cfg = ClientConfig {
            connect_timeout: Some(Duration::from_millis(200)),
            ..ClientConfig::default()
        };
        let t0 = std::time::Instant::now();
        let r = ServeClient::connect_with("127.0.0.1:1", &cfg);
        assert!(matches!(r, Err(ServeError::Io(_))));
        assert!(t0.elapsed() < Duration::from_secs(5));
    }
}
