//! A small blocking client for the serving protocol.
//!
//! Used by the examples, the bench harness, and the integration tests;
//! applications embedding the runtime in-process should talk to
//! [`crate::BatcherHandle`] directly instead.

use crate::protocol::{
    self, OP_HEALTH, OP_INFER, OP_STATS, STATUS_BAD_REQUEST, STATUS_OK, STATUS_OVERLOADED,
    STATUS_SHUTTING_DOWN,
};
use crate::ServeError;
use std::net::{TcpStream, ToSocketAddrs};

/// One blocking connection to an `apt serve` instance.
///
/// The connection stays open across requests; every method is one
/// request/response round trip. Not `Sync` — use one client per thread
/// (the server multiplexes fairly across connections).
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures as [`ServeError::Io`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<ServeClient, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ServeClient { stream })
    }

    /// Sends one frame and reads the response, mapping error statuses back
    /// onto typed [`ServeError`]s.
    fn round_trip(&mut self, op: u8, payload: &[u8]) -> Result<Vec<u8>, ServeError> {
        protocol::write_frame(&mut self.stream, op, payload)?;
        let (status, body) = protocol::read_frame(&mut self.stream)?;
        let text = || String::from_utf8_lossy(&body).into_owned();
        match status {
            STATUS_OK => Ok(body),
            STATUS_OVERLOADED => Err(ServeError::Overloaded { queue_depth: 0 }),
            STATUS_BAD_REQUEST => Err(ServeError::BadRequest { reason: text() }),
            STATUS_SHUTTING_DOWN => Err(ServeError::ShuttingDown),
            _ => Err(ServeError::Internal { reason: text() }),
        }
    }

    /// Runs one sample through the served model and returns its output row.
    ///
    /// # Errors
    ///
    /// Typed server-side failures ([`ServeError::Overloaded`],
    /// [`ServeError::BadRequest`], [`ServeError::ShuttingDown`]) plus I/O
    /// and protocol errors.
    pub fn infer(&mut self, sample: &[f32]) -> Result<Vec<f32>, ServeError> {
        let body = self.round_trip(OP_INFER, &protocol::encode_f32s(sample))?;
        protocol::decode_f32s(&body)
    }

    /// Fetches the server's serving counters as a JSON string.
    ///
    /// # Errors
    ///
    /// I/O, protocol, and server-side errors as for [`infer`](Self::infer).
    pub fn stats_json(&mut self) -> Result<String, ServeError> {
        let body = self.round_trip(OP_STATS, &[])?;
        String::from_utf8(body).map_err(|_| ServeError::Protocol {
            reason: "stats response is not UTF-8".to_string(),
        })
    }

    /// Liveness/identity check; returns the health JSON.
    ///
    /// # Errors
    ///
    /// I/O, protocol, and server-side errors as for [`infer`](Self::infer).
    pub fn health(&mut self) -> Result<String, ServeError> {
        let body = self.round_trip(OP_HEALTH, &[])?;
        String::from_utf8(body).map_err(|_| ServeError::Protocol {
            reason: "health response is not UTF-8".to_string(),
        })
    }
}
