use std::error::Error;
use std::fmt;

/// Error type for the serving runtime.
///
/// The first three variants form the **backpressure ladder** a client can
/// act on: `Overloaded` (queue full — retry with backoff), `ShuttingDown`
/// (drain in progress — resubmit elsewhere), `BadRequest` (client bug —
/// don't retry). The rest are transport and internal failures.
#[derive(Debug)]
pub enum ServeError {
    /// The admission queue is full; the request was shed, not queued.
    Overloaded {
        /// Configured queue capacity that was exhausted.
        queue_depth: usize,
    },
    /// The runtime is draining; no new requests are accepted.
    ShuttingDown,
    /// The request's deadline expired before inference ran; the work was
    /// shed from the queue, never executed.
    DeadlineExceeded {
        /// How long the request sat in the queue before expiring, in µs.
        waited_us: u64,
    },
    /// The request itself is malformed (wrong sample length, bad op).
    BadRequest {
        /// Explanation of the violated expectation.
        reason: String,
    },
    /// The named model is not resident: never published, evicted under the
    /// resident-bytes budget, or rejected at ingestion. Retrying the same
    /// instance without re-publishing the model will fail the same way.
    ModelUnavailable {
        /// The model id the request named.
        model: String,
        /// Why it cannot serve (unknown, evicted, rejected).
        reason: String,
    },
    /// The server answered with a status byte this client build does not
    /// know — a newer server speaking a newer ladder. The request's fate is
    /// known (the server answered), so this is **not** retried.
    UnrecognizedStatus {
        /// The unknown status byte from the wire.
        status: u8,
        /// The response body (servers put the rendered error there).
        reason: String,
    },
    /// A wire-protocol violation (bad magic, oversized frame, truncation).
    Protocol {
        /// Explanation of the framing failure.
        reason: String,
    },
    /// An I/O failure on the socket or checkpoint file.
    Io(std::io::Error),
    /// A model-level failure (shape mismatch, corrupt checkpoint).
    Nn(apt_nn::NnError),
    /// An invariant violation inside the runtime itself.
    Internal {
        /// Explanation of the broken invariant.
        reason: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { queue_depth } => {
                write!(
                    f,
                    "overloaded: admission queue (depth {queue_depth}) is full"
                )
            }
            ServeError::ShuttingDown => write!(f, "shutting down: request not accepted"),
            ServeError::DeadlineExceeded { waited_us } => {
                write!(
                    f,
                    "deadline exceeded: request expired after {waited_us}µs queued, \
                     shed before inference"
                )
            }
            ServeError::BadRequest { reason } => write!(f, "bad request: {reason}"),
            ServeError::ModelUnavailable { model, reason } => {
                write!(f, "model `{model}` unavailable: {reason}")
            }
            ServeError::UnrecognizedStatus { status, reason } => {
                write!(f, "unrecognized response status {status}: {reason}")
            }
            ServeError::Protocol { reason } => write!(f, "protocol error: {reason}"),
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Nn(e) => write!(f, "model error: {e}"),
            ServeError::Internal { reason } => write!(f, "internal error: {reason}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<apt_nn::NnError> for ServeError {
    fn from(e: apt_nn::NnError) -> Self {
        ServeError::Nn(e)
    }
}

impl From<apt_tensor::TensorError> for ServeError {
    fn from(e: apt_tensor::TensorError) -> Self {
        ServeError::Nn(apt_nn::NnError::from(e))
    }
}

impl ServeError {
    /// Clones the error for fan-out to every request in a failed batch.
    ///
    /// `std::io::Error` is not `Clone`, so I/O errors degrade to an
    /// `Internal` carrying the rendered message — the per-request waiters
    /// only ever turn the error into a wire status and a string anyway.
    pub fn duplicate(&self) -> ServeError {
        match self {
            ServeError::Overloaded { queue_depth } => ServeError::Overloaded {
                queue_depth: *queue_depth,
            },
            ServeError::ShuttingDown => ServeError::ShuttingDown,
            ServeError::DeadlineExceeded { waited_us } => ServeError::DeadlineExceeded {
                waited_us: *waited_us,
            },
            ServeError::BadRequest { reason } => ServeError::BadRequest {
                reason: reason.clone(),
            },
            ServeError::ModelUnavailable { model, reason } => ServeError::ModelUnavailable {
                model: model.clone(),
                reason: reason.clone(),
            },
            ServeError::UnrecognizedStatus { status, reason } => ServeError::UnrecognizedStatus {
                status: *status,
                reason: reason.clone(),
            },
            ServeError::Protocol { reason } => ServeError::Protocol {
                reason: reason.clone(),
            },
            ServeError::Io(e) => ServeError::Internal {
                reason: format!("i/o: {e}"),
            },
            ServeError::Nn(e) => ServeError::Nn(e.clone()),
            ServeError::Internal { reason } => ServeError::Internal {
                reason: reason.clone(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let errs = vec![
            ServeError::Overloaded { queue_depth: 4 },
            ServeError::ShuttingDown,
            ServeError::DeadlineExceeded { waited_us: 100 },
            ServeError::BadRequest { reason: "x".into() },
            ServeError::ModelUnavailable {
                model: "m".into(),
                reason: "evicted".into(),
            },
            ServeError::UnrecognizedStatus {
                status: 250,
                reason: "future ladder".into(),
            },
            ServeError::Protocol { reason: "y".into() },
            ServeError::Io(std::io::Error::new(std::io::ErrorKind::Other, "z")),
            ServeError::Internal { reason: "w".into() },
        ];
        for e in &errs {
            assert!(!e.to_string().is_empty());
            let _ = e.source();
            assert!(!format!("{:?}", e.duplicate()).is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServeError>();
    }
}
