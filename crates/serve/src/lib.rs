//! `apt-serve` — the quantized inference serving runtime.
//!
//! Turns a trained `.aptc` checkpoint into a servable model in three
//! layers, each usable on its own:
//!
//! 1. **[`InferenceSession`]** — loads a checkpoint into an immutable,
//!    `Arc`-shared frozen network. Packed quantized weights stay resident
//!    at their physical width; the forward pass uses
//!    `Network::forward_inference` (no activation caching, no gradient
//!    bookkeeping) and stages request samples through a recycled
//!    [`ScratchArena`] so the steady-state hot path does not grow the heap.
//!    A [`KernelLane`] is armed at load: the default dequant cache keeps
//!    outputs bit-identical to the trainer's `Mode::Eval` forward, while
//!    the opt-in `int-gemm` lane serves dequant-free from packed integer
//!    panels (bit-close, documented bound, faster than fp32 at low `k`).
//! 2. **[`MicroBatcher`]** — a dynamic micro-batcher that coalesces
//!    single-sample requests from an MPSC queue under a
//!    [`BatchPolicy`] (`max_batch` / `max_delay_us`), executes them as one
//!    batched forward on the `apt_tensor::par` worker pool, and applies
//!    admission control: a bounded queue sheds excess load with a typed
//!    [`ServeError::Overloaded`] instead of building an unbounded backlog.
//!    Batching is lossless — batch-invariant kernels mean a coalesced
//!    batch answers every request bit-identically to running it alone.
//! 3. **[`Server`]** — a std-only TCP front-end built on a nonblocking
//!    readiness-driven reactor: one thread drives every connection through
//!    incremental per-connection frame state machines, so slow or hostile
//!    peers cost a table slot, not a thread. Overload protection is typed
//!    end-to-end ([`ConnLimits`]): connection caps refuse at accept, idle
//!    and mid-frame deadlines reap slowloris peers, request deadlines
//!    propagate into the batcher so expired work is shed *before*
//!    inference, and per-connection pipelining bounds plus a round-robin
//!    scan keep healthy clients fair under attack. Lock-free serving
//!    metrics ([`ServeStats`]) expose the full shed taxonomy
//!    (refused-at-accept, deadline-expired, idle-reaped, slow-reaped)
//!    alongside p50/p90/p99 latency and batch histograms. [`ServeClient`]
//!    is the matching blocking client, with optional socket timeouts
//!    ([`ClientConfig`]) and bounded exponential-backoff retry
//!    ([`RetryPolicy`]).
//!
//! Above the session sits the **[`ModelRegistry`]** — a crash-safe
//! multi-tenant fleet keyed by model id. Checkpoints pass a validation
//! ladder (structural verify → full decode + probe forward → digest
//! stability) before they can serve; rejected files are quarantined with a
//! `.reason` sidecar. Publishing is an atomic `Arc` swap: new requests run
//! the new plan instantly while in-flight requests finish on the old one.
//! A resident-bytes budget evicts least-recently-used models, and missing
//! or evicted models answer a typed [`ServeError::ModelUnavailable`]
//! (`STATUS_MODEL_UNAVAILABLE` on the wire) — degradation, never OOM.
//!
//! The CLI front-end is `apt serve`; the measurement harness is the
//! `serving` bench binary.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod batcher;
mod client;
mod error;
mod registry;
mod server;
mod session;
mod stats;

pub mod protocol;

pub use apt_nn::KernelLane;
pub use batcher::{BatchPolicy, BatcherHandle, MicroBatcher};
pub use client::{ClientConfig, RetryPolicy, ServeClient};
pub use error::ServeError;
pub use registry::{ModelInfo, ModelRegistry, PublishOutcome, RegistryConfig, RescanReport};
pub use server::{ConnLimits, Server, ServerConfig};
pub use session::{InferenceSession, ModelArch, ModelSpec, ScratchArena};
pub use stats::{ServeStats, StatsSnapshot};
