//! The length-prefixed binary wire protocol.
//!
//! Every message — request or response — is one frame:
//!
//! ```text
//! tag: u8 | len: u32 LE | payload: len bytes
//! ```
//!
//! For requests the tag is the **op** ([`OP_INFER`], [`OP_STATS`],
//! [`OP_HEALTH`]); for responses it is the **status** ([`STATUS_OK`] and
//! the error statuses, which mirror the [`ServeError`] backpressure
//! ladder). Infer payloads are a `count: u32 LE` followed by `count`
//! little-endian `f32`s; stats/health payloads are UTF-8 JSON. Error
//! responses carry the rendered error message as UTF-8.
//!
//! Frames are capped at [`MAX_FRAME`] so a corrupt or hostile length
//! prefix cannot make the server allocate unboundedly.

use crate::ServeError;
use std::io::{Read, Write};

/// Run one sample through the model; payload is `count + f32s`.
pub const OP_INFER: u8 = 1;
/// Fetch the serving counters as JSON; empty payload.
pub const OP_STATS: u8 = 2;
/// Liveness/identity check; empty payload.
pub const OP_HEALTH: u8 = 3;

/// Success; payload depends on the op.
pub const STATUS_OK: u8 = 0;
/// Shed by admission control ([`ServeError::Overloaded`]).
pub const STATUS_OVERLOADED: u8 = 1;
/// Malformed request ([`ServeError::BadRequest`] / protocol errors).
pub const STATUS_BAD_REQUEST: u8 = 2;
/// Server is draining ([`ServeError::ShuttingDown`]).
pub const STATUS_SHUTTING_DOWN: u8 = 3;
/// Anything else ([`ServeError::Internal`], model or I/O failures).
pub const STATUS_INTERNAL: u8 = 4;

/// Largest accepted frame payload (16 MiB).
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Maps a runtime error onto its wire status byte.
pub fn status_for(err: &ServeError) -> u8 {
    match err {
        ServeError::Overloaded { .. } => STATUS_OVERLOADED,
        ServeError::BadRequest { .. } | ServeError::Protocol { .. } => STATUS_BAD_REQUEST,
        ServeError::ShuttingDown => STATUS_SHUTTING_DOWN,
        ServeError::Io(_) | ServeError::Nn(_) | ServeError::Internal { .. } => STATUS_INTERNAL,
    }
}

/// Writes one frame.
///
/// # Errors
///
/// Returns [`ServeError::Protocol`] for an oversized payload and I/O
/// errors from the writer.
pub fn write_frame(w: &mut impl Write, tag: u8, payload: &[u8]) -> Result<(), ServeError> {
    if payload.len() > MAX_FRAME {
        return Err(ServeError::Protocol {
            reason: format!("outgoing frame of {} bytes exceeds cap", payload.len()),
        });
    }
    w.write_all(&[tag])?;
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame, enforcing [`MAX_FRAME`].
///
/// # Errors
///
/// Returns [`ServeError::Protocol`] for an oversized length prefix and
/// I/O errors (including clean EOF) from the reader.
pub fn read_frame(r: &mut impl Read) -> Result<(u8, Vec<u8>), ServeError> {
    let mut header = [0u8; 5];
    r.read_exact(&mut header)?;
    let tag = header[0];
    let len = u32::from_le_bytes([header[1], header[2], header[3], header[4]]) as usize;
    if len > MAX_FRAME {
        return Err(ServeError::Protocol {
            reason: format!("incoming frame claims {len} bytes, cap is {MAX_FRAME}"),
        });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok((tag, payload))
}

/// Encodes a float vector as `count: u32 LE` + little-endian `f32`s.
pub fn encode_f32s(values: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 4 * values.len());
    out.extend_from_slice(&(values.len() as u32).to_le_bytes());
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes a float vector written by [`encode_f32s`].
///
/// # Errors
///
/// Returns [`ServeError::Protocol`] when the count disagrees with the
/// payload length.
pub fn decode_f32s(payload: &[u8]) -> Result<Vec<f32>, ServeError> {
    if payload.len() < 4 {
        return Err(ServeError::Protocol {
            reason: format!("float payload of {} bytes has no count", payload.len()),
        });
    }
    let count = u32::from_le_bytes([payload[0], payload[1], payload[2], payload[3]]) as usize;
    let body = &payload[4..];
    if body.len() != count * 4 {
        return Err(ServeError::Protocol {
            reason: format!(
                "float payload count {count} disagrees with {} body bytes",
                body.len()
            ),
        });
    }
    Ok(body
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, OP_INFER, &[1, 2, 3]).unwrap();
        let (tag, payload) = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(tag, OP_INFER);
        assert_eq!(payload, vec![1, 2, 3]);
    }

    #[test]
    fn floats_round_trip_bit_exact() {
        let values = vec![0.0f32, -1.5, f32::MIN_POSITIVE, 1e20, -0.0];
        let decoded = decode_f32s(&encode_f32s(&values)).unwrap();
        assert_eq!(values.len(), decoded.len());
        for (a, b) in values.iter().zip(&decoded) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(decode_f32s(&encode_f32s(&[])).unwrap().is_empty());
    }

    #[test]
    fn corrupt_payloads_are_protocol_errors() {
        assert!(matches!(
            decode_f32s(&[1, 0]),
            Err(ServeError::Protocol { .. })
        ));
        let mut bad = encode_f32s(&[1.0, 2.0]);
        bad.truncate(bad.len() - 1);
        assert!(decode_f32s(&bad).is_err());
    }

    #[test]
    fn oversized_frames_rejected_both_ways() {
        let mut hdr = vec![OP_INFER];
        hdr.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            read_frame(&mut hdr.as_slice()),
            Err(ServeError::Protocol { .. })
        ));
        let huge = vec![0u8; MAX_FRAME + 1];
        let mut sink = Vec::new();
        assert!(write_frame(&mut sink, OP_INFER, &huge).is_err());
    }

    #[test]
    fn truncated_stream_is_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, OP_STATS, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(ServeError::Io(_))
        ));
    }

    #[test]
    fn status_mapping_covers_ladder() {
        assert_eq!(
            status_for(&ServeError::Overloaded { queue_depth: 1 }),
            STATUS_OVERLOADED
        );
        assert_eq!(status_for(&ServeError::ShuttingDown), STATUS_SHUTTING_DOWN);
        assert_eq!(
            status_for(&ServeError::BadRequest { reason: "x".into() }),
            STATUS_BAD_REQUEST
        );
        assert_eq!(
            status_for(&ServeError::Internal { reason: "x".into() }),
            STATUS_INTERNAL
        );
    }
}
