//! The length-prefixed binary wire protocol.
//!
//! Every message — request or response — is one frame:
//!
//! ```text
//! tag: u8 | len: u32 LE | payload: len bytes
//! ```
//!
//! For requests the tag is the **op** ([`OP_INFER`], [`OP_STATS`],
//! [`OP_HEALTH`], [`OP_INFER_MODEL`], [`OP_RELOAD`]); for responses it is
//! the **status** ([`STATUS_OK`] and the error statuses, which mirror the
//! [`ServeError`] backpressure ladder). Infer payloads are a
//! `count: u32 LE` followed by `count` little-endian `f32`s; named-model
//! infer payloads prepend a versioned model-id header
//! ([`encode_model_infer`]); stats/health/reload payloads are UTF-8 JSON.
//! Error responses carry the rendered error message as UTF-8.
//!
//! Frames are capped at [`MAX_FRAME`] so a corrupt or hostile length
//! prefix cannot make the server allocate unboundedly.

use crate::ServeError;
use std::io::{Read, Write};

/// Run one sample through the default model; payload is `count + f32s`.
pub const OP_INFER: u8 = 1;
/// Fetch the serving counters as JSON; empty payload.
pub const OP_STATS: u8 = 2;
/// Liveness/identity check; empty payload.
pub const OP_HEALTH: u8 = 3;
/// Run one sample through a **named** model; payload is the versioned
/// model-infer encoding ([`encode_model_infer`]). Servers predating the
/// model fleet answer `STATUS_BAD_REQUEST` (unknown op) — the original
/// [`OP_INFER`] frame layout is untouched, so old clients keep working.
pub const OP_INFER_MODEL: u8 = 4;
/// Rescan the server's model directory, ingesting new or changed
/// checkpoints; empty payload, JSON report response.
pub const OP_RELOAD: u8 = 5;

/// Success; payload depends on the op.
pub const STATUS_OK: u8 = 0;
/// Shed by admission control ([`ServeError::Overloaded`]).
pub const STATUS_OVERLOADED: u8 = 1;
/// Malformed request ([`ServeError::BadRequest`] / protocol errors).
pub const STATUS_BAD_REQUEST: u8 = 2;
/// Server is draining ([`ServeError::ShuttingDown`]).
pub const STATUS_SHUTTING_DOWN: u8 = 3;
/// Anything else ([`ServeError::Internal`], model or I/O failures).
pub const STATUS_INTERNAL: u8 = 4;
/// The request's deadline expired while it was queued
/// ([`ServeError::DeadlineExceeded`]); the work was shed, never executed.
pub const STATUS_DEADLINE_EXCEEDED: u8 = 5;
/// The named model is not resident — unknown, evicted under the
/// resident-bytes budget, or rejected at ingestion
/// ([`ServeError::ModelUnavailable`]).
pub const STATUS_MODEL_UNAVAILABLE: u8 = 6;

/// Largest accepted frame payload (16 MiB).
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Maps a runtime error onto its wire status byte.
pub fn status_for(err: &ServeError) -> u8 {
    match err {
        ServeError::Overloaded { .. } => STATUS_OVERLOADED,
        ServeError::BadRequest { .. } | ServeError::Protocol { .. } => STATUS_BAD_REQUEST,
        ServeError::ShuttingDown => STATUS_SHUTTING_DOWN,
        ServeError::DeadlineExceeded { .. } => STATUS_DEADLINE_EXCEEDED,
        ServeError::ModelUnavailable { .. } => STATUS_MODEL_UNAVAILABLE,
        // `UnrecognizedStatus` only exists on the client side (a response
        // was already received); a server never produces it, so it folds
        // into the internal bucket defensively.
        ServeError::Io(_)
        | ServeError::Nn(_)
        | ServeError::Internal { .. }
        | ServeError::UnrecognizedStatus { .. } => STATUS_INTERNAL,
    }
}

/// Writes one frame.
///
/// # Errors
///
/// Returns [`ServeError::Protocol`] for an oversized payload and I/O
/// errors from the writer.
pub fn write_frame(w: &mut impl Write, tag: u8, payload: &[u8]) -> Result<(), ServeError> {
    if payload.len() > MAX_FRAME {
        return Err(ServeError::Protocol {
            reason: format!("outgoing frame of {} bytes exceeds cap", payload.len()),
        });
    }
    w.write_all(&[tag])?;
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Encodes one frame into a byte vector (for buffered, non-blocking
/// writers that flush incrementally). The payload is truncated to
/// [`MAX_FRAME`] defensively; runtime responses are orders of magnitude
/// smaller.
pub fn encode_frame(tag: u8, payload: &[u8]) -> Vec<u8> {
    let payload = &payload[..payload.len().min(MAX_FRAME)];
    let mut out = Vec::with_capacity(5 + payload.len());
    out.push(tag);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Reads one frame, enforcing [`MAX_FRAME`].
///
/// # Errors
///
/// Returns [`ServeError::Protocol`] for an oversized length prefix and
/// I/O errors (including clean EOF) from the reader.
pub fn read_frame(r: &mut impl Read) -> Result<(u8, Vec<u8>), ServeError> {
    let mut header = [0u8; 5];
    r.read_exact(&mut header)?;
    let tag = header[0];
    let len = u32::from_le_bytes([header[1], header[2], header[3], header[4]]) as usize;
    if len > MAX_FRAME {
        return Err(ServeError::Protocol {
            reason: format!("incoming frame claims {len} bytes, cap is {MAX_FRAME}"),
        });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok((tag, payload))
}

/// An incremental, non-blocking frame decoder for the event-loop server.
///
/// Bytes arrive in whatever fragments the kernel hands out — a hostile or
/// slow client may deliver one byte at a time, or three frames glued
/// together. [`feed`](FrameDecoder::feed) appends raw bytes;
/// [`try_frame`](FrameDecoder::try_frame) yields complete frames without
/// ever blocking, returning `Ok(None)` (*need more bytes*) on a torn read.
///
/// An oversized length prefix is rejected the moment the 5-byte header is
/// visible — **before** any payload is buffered — and the decoder latches
/// the error: the stream offset can no longer be trusted, so every
/// subsequent call reports the same violation and the connection must be
/// closed.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
    poisoned: Option<String>,
}

/// Consumed-prefix threshold past which the decoder compacts its buffer.
const COMPACT_AT: usize = 64 * 1024;

impl FrameDecoder {
    /// A fresh decoder with nothing buffered.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Appends raw bytes from the socket. Cheap; no parsing happens here.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as complete frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` while a frame has started arriving but is not yet complete —
    /// the condition a slowloris read-deadline watches.
    pub fn mid_frame(&self) -> bool {
        self.buffered() > 0
    }

    /// Tries to extract the next complete frame.
    ///
    /// Returns `Ok(Some((tag, payload)))` for a complete frame,
    /// `Ok(None)` when more bytes are needed (torn/short read).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Protocol`] as soon as a header claims more
    /// than [`MAX_FRAME`] bytes; the error is latched and re-reported on
    /// every subsequent call.
    pub fn try_frame(&mut self) -> Result<Option<(u8, Vec<u8>)>, ServeError> {
        if let Some(reason) = &self.poisoned {
            return Err(ServeError::Protocol {
                reason: reason.clone(),
            });
        }
        if self.buffered() < 5 {
            self.compact();
            return Ok(None);
        }
        let h = &self.buf[self.pos..self.pos + 5];
        let tag = h[0];
        let len = u32::from_le_bytes([h[1], h[2], h[3], h[4]]) as usize;
        if len > MAX_FRAME {
            let reason = format!("incoming frame claims {len} bytes, cap is {MAX_FRAME}");
            self.poisoned = Some(reason.clone());
            return Err(ServeError::Protocol { reason });
        }
        if self.buffered() < 5 + len {
            return Ok(None);
        }
        let start = self.pos + 5;
        let payload = self.buf[start..start + len].to_vec();
        self.pos = start + len;
        self.compact();
        Ok(Some((tag, payload)))
    }

    /// Reclaims the consumed prefix once it is large (or the buffer is
    /// fully drained) so long-lived connections do not accrete memory.
    fn compact(&mut self) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > COMPACT_AT {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

/// Encodes a float vector as `count: u32 LE` + little-endian `f32`s.
pub fn encode_f32s(values: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 4 * values.len());
    out.extend_from_slice(&(values.len() as u32).to_le_bytes());
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes a float vector written by [`encode_f32s`].
///
/// # Errors
///
/// Returns [`ServeError::Protocol`] when the count disagrees with the
/// payload length.
pub fn decode_f32s(payload: &[u8]) -> Result<Vec<f32>, ServeError> {
    if payload.len() < 4 {
        return Err(ServeError::Protocol {
            reason: format!("float payload of {} bytes has no count", payload.len()),
        });
    }
    let count = u32::from_le_bytes([payload[0], payload[1], payload[2], payload[3]]) as usize;
    let body = &payload[4..];
    if body.len() != count * 4 {
        return Err(ServeError::Protocol {
            reason: format!(
                "float payload count {count} disagrees with {} body bytes",
                body.len()
            ),
        });
    }
    Ok(body
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

/// Version byte of the current [`OP_INFER_MODEL`] payload encoding. The
/// version leads the payload so the layout can evolve without a new op:
/// decoders reject versions they do not know with a typed error instead of
/// misparsing.
pub const MODEL_INFER_V1: u8 = 1;

/// Longest accepted model id on the wire (also bounds registry keys).
pub const MAX_MODEL_ID: usize = 255;

/// Encodes a named-model inference request:
///
/// ```text
/// ver: u8 = 1 | id_len: u8 | id: utf8 | count: u32 LE | f32 × count
/// ```
///
/// An over-long model id is truncated at [`MAX_MODEL_ID`] bytes
/// defensively; the server validates ids at publish time, so a truncated
/// id simply fails lookup with a typed status.
pub fn encode_model_infer(model: &str, sample: &[f32]) -> Vec<u8> {
    let id = &model.as_bytes()[..model.len().min(MAX_MODEL_ID)];
    let mut out = Vec::with_capacity(2 + id.len() + 4 + 4 * sample.len());
    out.push(MODEL_INFER_V1);
    out.push(id.len() as u8);
    out.extend_from_slice(id);
    out.extend_from_slice(&encode_f32s(sample));
    out
}

/// Decodes an [`OP_INFER_MODEL`] payload into `(model_id, sample)`.
///
/// # Errors
///
/// Returns [`ServeError::Protocol`] for an unknown payload version, a
/// truncated id section, a non-UTF-8 id, or a malformed float section.
pub fn decode_model_infer(payload: &[u8]) -> Result<(String, Vec<f32>), ServeError> {
    if payload.len() < 2 {
        return Err(ServeError::Protocol {
            reason: format!(
                "model-infer payload of {} bytes has no header",
                payload.len()
            ),
        });
    }
    let ver = payload[0];
    if ver != MODEL_INFER_V1 {
        return Err(ServeError::Protocol {
            reason: format!("unknown model-infer payload version {ver} (this build speaks 1)"),
        });
    }
    let id_len = payload[1] as usize;
    if payload.len() < 2 + id_len {
        return Err(ServeError::Protocol {
            reason: format!(
                "model-infer id claims {id_len} bytes, only {} present",
                payload.len() - 2
            ),
        });
    }
    let id = std::str::from_utf8(&payload[2..2 + id_len])
        .map_err(|_| ServeError::Protocol {
            reason: "model id is not UTF-8".to_string(),
        })?
        .to_string();
    let sample = decode_f32s(&payload[2 + id_len..])?;
    Ok((id, sample))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, OP_INFER, &[1, 2, 3]).unwrap();
        let (tag, payload) = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(tag, OP_INFER);
        assert_eq!(payload, vec![1, 2, 3]);
    }

    #[test]
    fn floats_round_trip_bit_exact() {
        let values = vec![0.0f32, -1.5, f32::MIN_POSITIVE, 1e20, -0.0];
        let decoded = decode_f32s(&encode_f32s(&values)).unwrap();
        assert_eq!(values.len(), decoded.len());
        for (a, b) in values.iter().zip(&decoded) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(decode_f32s(&encode_f32s(&[])).unwrap().is_empty());
    }

    #[test]
    fn corrupt_payloads_are_protocol_errors() {
        assert!(matches!(
            decode_f32s(&[1, 0]),
            Err(ServeError::Protocol { .. })
        ));
        let mut bad = encode_f32s(&[1.0, 2.0]);
        bad.truncate(bad.len() - 1);
        assert!(decode_f32s(&bad).is_err());
    }

    #[test]
    fn oversized_frames_rejected_both_ways() {
        let mut hdr = vec![OP_INFER];
        hdr.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            read_frame(&mut hdr.as_slice()),
            Err(ServeError::Protocol { .. })
        ));
        let huge = vec![0u8; MAX_FRAME + 1];
        let mut sink = Vec::new();
        assert!(write_frame(&mut sink, OP_INFER, &huge).is_err());
    }

    #[test]
    fn truncated_stream_is_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, OP_STATS, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(ServeError::Io(_))
        ));
    }

    #[test]
    fn incremental_decoder_handles_torn_reads() {
        let mut wire = Vec::new();
        write_frame(&mut wire, OP_INFER, &encode_f32s(&[1.0, -2.5])).unwrap();
        write_frame(&mut wire, OP_STATS, &[]).unwrap();

        // Byte at a time: NeedMore until each frame completes.
        let mut d = FrameDecoder::new();
        let mut frames = Vec::new();
        for &b in &wire {
            d.feed(&[b]);
            while let Some(f) = d.try_frame().unwrap() {
                frames.push(f);
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].0, OP_INFER);
        assert_eq!(decode_f32s(&frames[0].1).unwrap(), vec![1.0, -2.5]);
        assert_eq!(frames[1], (OP_STATS, Vec::new()));
        assert!(!d.mid_frame());

        // All at once: identical result.
        let mut d2 = FrameDecoder::new();
        d2.feed(&wire);
        assert_eq!(d2.try_frame().unwrap().unwrap().0, OP_INFER);
        assert_eq!(d2.try_frame().unwrap().unwrap().0, OP_STATS);
        assert!(d2.try_frame().unwrap().is_none());
    }

    #[test]
    fn decoder_rejects_oversized_header_before_buffering() {
        let mut d = FrameDecoder::new();
        let mut hdr = vec![OP_INFER];
        hdr.extend_from_slice(&(u32::MAX).to_le_bytes());
        d.feed(&hdr);
        assert!(matches!(d.try_frame(), Err(ServeError::Protocol { .. })));
        // Latched: the stream offset is untrusted from here on.
        d.feed(&[0; 16]);
        assert!(matches!(d.try_frame(), Err(ServeError::Protocol { .. })));
    }

    #[test]
    fn decoder_mid_frame_tracks_partial_input() {
        let mut d = FrameDecoder::new();
        assert!(!d.mid_frame());
        d.feed(&[OP_INFER, 8, 0, 0]); // 4 of 5 header bytes
        assert!(d.try_frame().unwrap().is_none());
        assert!(d.mid_frame());
        d.feed(&[0]); // header complete, claims 8 payload bytes
        assert!(d.try_frame().unwrap().is_none());
        d.feed(&[0; 8]);
        let (tag, payload) = d.try_frame().unwrap().unwrap();
        assert_eq!((tag, payload.len()), (OP_INFER, 8));
        assert!(!d.mid_frame());
    }

    #[test]
    fn status_mapping_covers_ladder() {
        assert_eq!(
            status_for(&ServeError::Overloaded { queue_depth: 1 }),
            STATUS_OVERLOADED
        );
        assert_eq!(status_for(&ServeError::ShuttingDown), STATUS_SHUTTING_DOWN);
        assert_eq!(
            status_for(&ServeError::DeadlineExceeded { waited_us: 9 }),
            STATUS_DEADLINE_EXCEEDED
        );
        assert_eq!(
            status_for(&ServeError::BadRequest { reason: "x".into() }),
            STATUS_BAD_REQUEST
        );
        assert_eq!(
            status_for(&ServeError::Internal { reason: "x".into() }),
            STATUS_INTERNAL
        );
        assert_eq!(
            status_for(&ServeError::ModelUnavailable {
                model: "m".into(),
                reason: "evicted".into()
            }),
            STATUS_MODEL_UNAVAILABLE
        );
        assert_eq!(
            status_for(&ServeError::UnrecognizedStatus {
                status: 200,
                reason: "x".into()
            }),
            STATUS_INTERNAL
        );
    }

    #[test]
    fn model_infer_round_trip() {
        let sample = vec![1.5f32, -0.25, 0.0, f32::MIN_POSITIVE];
        let payload = encode_model_infer("edge-07", &sample);
        let (id, decoded) = decode_model_infer(&payload).unwrap();
        assert_eq!(id, "edge-07");
        assert_eq!(
            decoded.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            sample.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        // Empty id and empty sample are legal encodings.
        let (id, decoded) = decode_model_infer(&encode_model_infer("", &[])).unwrap();
        assert!(id.is_empty() && decoded.is_empty());
    }

    #[test]
    fn model_infer_rejects_malformed_payloads_typed() {
        // No header.
        assert!(matches!(
            decode_model_infer(&[]),
            Err(ServeError::Protocol { .. })
        ));
        // Unknown payload version.
        assert!(matches!(
            decode_model_infer(&[9, 0, 0, 0, 0, 0]),
            Err(ServeError::Protocol { .. })
        ));
        // Id length overruns the payload.
        assert!(matches!(
            decode_model_infer(&[MODEL_INFER_V1, 10, b'a']),
            Err(ServeError::Protocol { .. })
        ));
        // Non-UTF-8 id.
        assert!(matches!(
            decode_model_infer(&[MODEL_INFER_V1, 1, 0xFF, 0, 0, 0, 0]),
            Err(ServeError::Protocol { .. })
        ));
        // Torn float section.
        let mut torn = encode_model_infer("m", &[1.0, 2.0]);
        torn.truncate(torn.len() - 3);
        assert!(matches!(
            decode_model_infer(&torn),
            Err(ServeError::Protocol { .. })
        ));
        // Over-long id truncates instead of panicking.
        let long = "x".repeat(4000);
        let (id, _) = decode_model_infer(&encode_model_infer(&long, &[])).unwrap();
        assert_eq!(id.len(), MAX_MODEL_ID);
    }
}
