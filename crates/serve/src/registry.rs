//! The multi-tenant model fleet: named, `Arc`-swapped inference plans with
//! validated ingestion, atomic hot-swap, and budgeted residency.
//!
//! A [`ModelRegistry`] keys frozen [`InferenceSession`]s by model id.
//! Publishing is **atomic**: the registry swaps the `Arc`-shared plan under
//! a short mutex hold, so requests resolved after the swap run the new
//! plan while requests already in flight finish on the old one — the old
//! network is freed only when the last in-flight batch drops its clone
//! (drain by reference count, no barrier, no lost or corrupted responses).
//!
//! Ingestion is a **validation ladder**; a checkpoint serves traffic only
//! after every rung passes:
//!
//! 1. [`apt_nn::checkpoint::verify`] — structural walk of the blob
//!    (framing, version, CRC, section bounds) with nothing materialised.
//! 2. [`apt_nn::checkpoint::load`] via [`InferenceSession::from_checkpoint`]
//!    — full decode with CRC/bounds/packed-word validation, plus the
//!    construction-time probe forward.
//! 3. Digest stability — per-layer FNV-1a integrity digests
//!    ([`apt_nn::Network::integrity_digests`]) are captured, a second probe
//!    forward runs, and the digests are re-captured: inference must not
//!    mutate the plan.
//!
//! A file failing the ladder is moved to a **quarantine directory** with a
//! `.reason` sidecar and counted; the previously published plan (if any)
//! keeps serving untouched.
//!
//! Residency is bounded: under a resident-bytes budget
//! ([`RegistryConfig::budget_bytes`]), publishing a model evicts the
//! least-recently-used *other* models until the fleet fits. Evicted and
//! unknown models answer with a typed [`ServeError::ModelUnavailable`]
//! (wire status `STATUS_MODEL_UNAVAILABLE`) — degradation, never OOM. A
//! single model larger than the whole budget is rejected at publish time.

use crate::protocol::MAX_MODEL_ID;
use crate::{InferenceSession, KernelLane, ModelSpec, ServeError, ServeStats, StatsSnapshot};
use apt_nn::checkpoint;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::SystemTime;

/// Fleet configuration.
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Resident-bytes budget across all models; `0` means unbounded.
    pub budget_bytes: u64,
    /// Directory scanned by [`ModelRegistry::rescan`] for `*.aptc` files
    /// (model id = file stem). `None` disables file ingestion.
    pub model_dir: Option<PathBuf>,
    /// Where rejected checkpoint files are moved. Defaults to a
    /// `quarantine/` directory next to the rejected file.
    pub quarantine_dir: Option<PathBuf>,
    /// Architecture used to load checkpoints ingested from files. Blob
    /// ingestion ([`ModelRegistry::ingest_blob`]) carries its own spec.
    pub spec: Option<ModelSpec>,
    /// Kernel lane armed on every ingested plan (default: the bit-exact
    /// dequant cache). Panels or cached weights built for the lane are
    /// part of each plan's resident bytes, so the budget sees them.
    pub lane: KernelLane,
    /// Compile ingested checkpoints into frozen plans (default `true`).
    /// `false` pins every session to the legacy layer-replay path.
    pub freeze: bool,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            budget_bytes: 0,
            model_dir: None,
            quarantine_dir: None,
            spec: None,
            lane: KernelLane::default(),
            freeze: true,
        }
    }
}

/// One registered model's bookkeeping.
#[derive(Debug)]
struct ModelEntry {
    /// The resident plan; `None` once evicted under the budget.
    session: Option<InferenceSession>,
    /// Publish generation for this id (1 on first publish).
    version: u64,
    /// Registry tick of the last `get`/publish (LRU clock).
    last_used: u64,
    /// Resident bytes of the published plan (kept for reporting even
    /// while evicted).
    resident_bytes: u64,
    /// Per-layer integrity digests captured at ingestion.
    digests: Vec<(String, u64)>,
    /// Source file identity (`path`, mtime, len) for rescan change
    /// detection; `None` for blob publishes.
    source: Option<(PathBuf, SystemTime, u64)>,
}

#[derive(Debug, Default)]
struct Inner {
    models: HashMap<String, ModelEntry>,
    tick: u64,
}

/// Public snapshot of one registered model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelInfo {
    /// The model id.
    pub id: String,
    /// `true` while the plan is resident (false = evicted).
    pub resident: bool,
    /// Publish generation (1 on first publish).
    pub version: u64,
    /// Resident bytes of the (last) published plan.
    pub resident_bytes: u64,
    /// Per-layer FNV-1a integrity digests captured at ingestion.
    pub digests: Vec<(String, u64)>,
}

/// What a successful publish did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublishOutcome {
    /// The published model id.
    pub model: String,
    /// Publish generation for this id (1 = first publish).
    pub version: u64,
    /// Resident bytes of the new plan.
    pub resident_bytes: u64,
    /// `true` when this publish hot-swapped an existing entry.
    pub replaced: bool,
    /// Models evicted to fit the new plan under the budget.
    pub evicted: Vec<String>,
}

/// Result of one [`ModelRegistry::rescan`] pass over the model directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RescanReport {
    /// Model ids ingested or re-ingested this pass.
    pub ingested: Vec<String>,
    /// `(file name, reason)` for every rejected (and quarantined) file.
    pub rejected: Vec<(String, String)>,
    /// Files skipped because they were unchanged and still resident.
    pub unchanged: usize,
}

impl RescanReport {
    /// Renders the report as a JSON object (hand-rolled; no serde in the
    /// workspace) — the `OP_RELOAD` response body.
    pub fn to_json(&self) -> String {
        let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let ingested: Vec<String> = self
            .ingested
            .iter()
            .map(|m| format!("\"{}\"", esc(m)))
            .collect();
        let rejected: Vec<String> = self
            .rejected
            .iter()
            .map(|(f, r)| format!("{{\"file\":\"{}\",\"reason\":\"{}\"}}", esc(f), esc(r)))
            .collect();
        format!(
            "{{\"ingested\":[{}],\"rejected\":[{}],\"unchanged\":{}}}",
            ingested.join(","),
            rejected.join(","),
            self.unchanged
        )
    }
}

/// The fleet registry. Cheap to share behind an `Arc`; every method takes
/// `&self`.
#[derive(Debug)]
pub struct ModelRegistry {
    config: RegistryConfig,
    inner: Mutex<Inner>,
    stats: Arc<ServeStats>,
}

impl ModelRegistry {
    /// Creates an empty registry with its own stats collector.
    pub fn new(config: RegistryConfig) -> ModelRegistry {
        ModelRegistry::with_stats(config, Arc::new(ServeStats::default()))
    }

    /// Creates an empty registry recording fleet gauges into a shared
    /// stats collector (so server, batcher, and registry report as one).
    pub fn with_stats(config: RegistryConfig, stats: Arc<ServeStats>) -> ModelRegistry {
        ModelRegistry {
            config,
            inner: Mutex::new(Inner::default()),
            stats,
        }
    }

    /// The registry's configuration.
    pub fn config(&self) -> &RegistryConfig {
        &self.config
    }

    /// The shared stats collector (fleet gauges live here).
    pub fn stats_handle(&self) -> Arc<ServeStats> {
        Arc::clone(&self.stats)
    }

    /// Snapshot of the shared serving counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Resolves a model id to its resident plan, bumping its LRU clock.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ModelUnavailable`] (and counts it) for an
    /// unknown id or an evicted model.
    pub fn get(&self, id: &str) -> Result<InferenceSession, ServeError> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.models.get_mut(id) {
            Some(entry) => match &entry.session {
                Some(session) => {
                    entry.last_used = tick;
                    Ok(session.clone())
                }
                None => {
                    self.stats.record_model_unavailable();
                    Err(ServeError::ModelUnavailable {
                        model: id.to_string(),
                        reason: "evicted under the resident-bytes budget".to_string(),
                    })
                }
            },
            None => {
                self.stats.record_model_unavailable();
                Err(ServeError::ModelUnavailable {
                    model: id.to_string(),
                    reason: "no such model published".to_string(),
                })
            }
        }
    }

    /// Resolves a model without bumping the LRU clock or counting a miss
    /// (monitoring paths: health output, tests).
    pub fn peek(&self, id: &str) -> Option<InferenceSession> {
        self.lock().models.get(id).and_then(|e| e.session.clone())
    }

    /// Snapshot of every registered model, sorted by id.
    pub fn models(&self) -> Vec<ModelInfo> {
        let inner = self.lock();
        let mut out: Vec<ModelInfo> = inner
            .models
            .iter()
            .map(|(id, e)| ModelInfo {
                id: id.clone(),
                resident: e.session.is_some(),
                version: e.version,
                resident_bytes: e.resident_bytes,
                digests: e.digests.clone(),
            })
            .collect();
        out.sort_by(|a, b| a.id.cmp(&b.id));
        out
    }

    /// Summed resident bytes across resident models.
    pub fn resident_bytes(&self) -> u64 {
        resident_total(&self.lock())
    }

    /// Runs the full ingestion ladder on a checkpoint blob, then publishes
    /// it atomically under `id`.
    ///
    /// # Errors
    ///
    /// Typed rejection from any rung: [`ServeError::Nn`] for structural or
    /// decode failures, [`ServeError::BadRequest`] for probe/shape
    /// failures, [`ServeError::Internal`] for digest instability, and
    /// [`ServeError::ModelUnavailable`] when the plan alone exceeds the
    /// budget. On error the registry is untouched — a previously published
    /// plan under `id` keeps serving.
    pub fn ingest_blob(
        &self,
        id: &str,
        spec: &ModelSpec,
        blob: &[u8],
    ) -> Result<PublishOutcome, ServeError> {
        let session = self.validate(spec, blob)?;
        self.publish_inner(id, session, None)
    }

    /// Like [`ingest_blob`](Self::ingest_blob), additionally requiring the
    /// loaded plan's per-layer integrity digests to equal `expected` —
    /// end-to-end transport verification when the uploader ships the
    /// digests out of band.
    ///
    /// # Errors
    ///
    /// As [`ingest_blob`](Self::ingest_blob), plus [`ServeError::Nn`]
    /// (corrupt) on a digest mismatch.
    pub fn ingest_blob_verified(
        &self,
        id: &str,
        spec: &ModelSpec,
        blob: &[u8],
        expected: &[(String, u64)],
    ) -> Result<PublishOutcome, ServeError> {
        let session = self.validate(spec, blob)?;
        let got = session.network().integrity_digests();
        if got != expected {
            return Err(ServeError::Nn(apt_nn::NnError::Corrupt {
                reason: "loaded plan's integrity digests differ from the expected set".to_string(),
            }));
        }
        self.publish_inner(id, session, None)
    }

    /// Publishes an already-validated session (e.g. straight out of a
    /// trainer) atomically under `id`.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] for an invalid id,
    /// [`ServeError::ModelUnavailable`] when the plan alone exceeds the
    /// budget.
    pub fn publish(
        &self,
        id: &str,
        session: InferenceSession,
    ) -> Result<PublishOutcome, ServeError> {
        self.publish_inner(id, session, None)
    }

    /// Reads one `.aptc` file through the ingestion ladder; a rejected
    /// file is moved to the quarantine directory with a `.reason` sidecar.
    ///
    /// # Errors
    ///
    /// As [`ingest_blob`](Self::ingest_blob), plus [`ServeError::Io`] for
    /// an unreadable file and [`ServeError::BadRequest`] when the registry
    /// has no [`RegistryConfig::spec`].
    pub fn ingest_file(&self, id: &str, path: &Path) -> Result<PublishOutcome, ServeError> {
        let spec = self
            .config
            .spec
            .clone()
            .ok_or_else(|| ServeError::BadRequest {
                reason: "registry has no model spec configured for file ingestion".to_string(),
            })?;
        let meta = std::fs::metadata(path)?;
        let source = (
            path.to_path_buf(),
            meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
            meta.len(),
        );
        let blob = std::fs::read(path)?;
        let session = match self.validate(&spec, &blob) {
            Ok(session) => session,
            Err(e) => {
                self.quarantine(path, &e);
                return Err(e);
            }
        };
        match self.publish_inner(id, session, Some(source)) {
            Ok(outcome) => Ok(outcome),
            // Budget rejection is not the file's fault; leave it in place.
            Err(e) => Err(e),
        }
    }

    /// Scans [`RegistryConfig::model_dir`] for `*.aptc` files (model id =
    /// file stem), ingesting new or changed ones. Unchanged files whose
    /// model is still resident are skipped; rejected files are quarantined
    /// and reported, never fatal to the scan.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] when no model directory is configured;
    /// [`ServeError::Io`] when the directory cannot be listed.
    pub fn rescan(&self) -> Result<RescanReport, ServeError> {
        let dir = self
            .config
            .model_dir
            .clone()
            .ok_or_else(|| ServeError::BadRequest {
                reason: "registry has no model directory configured".to_string(),
            })?;
        let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_file() && p.extension().and_then(|x| x.to_str()) == Some("aptc"))
            .collect();
        files.sort();
        let mut report = RescanReport::default();
        for path in files {
            let Some(id) = path.file_stem().and_then(|s| s.to_str()).map(String::from) else {
                continue;
            };
            if self.source_unchanged(&id, &path) {
                report.unchanged += 1;
                continue;
            }
            let file_name = path
                .file_name()
                .and_then(|s| s.to_str())
                .unwrap_or("?")
                .to_string();
            match self.ingest_file(&id, &path) {
                Ok(_) => report.ingested.push(id),
                Err(e) => report.rejected.push((file_name, e.to_string())),
            }
        }
        Ok(report)
    }

    /// `true` when `id` is resident and its recorded source file identity
    /// (path, mtime, length) matches the file on disk.
    fn source_unchanged(&self, id: &str, path: &Path) -> bool {
        let inner = self.lock();
        let Some(entry) = inner.models.get(id) else {
            return false;
        };
        if entry.session.is_none() {
            return false;
        }
        let Some((src_path, mtime, len)) = &entry.source else {
            return false;
        };
        if src_path != path {
            return false;
        }
        match std::fs::metadata(path) {
            Ok(meta) => {
                meta.len() == *len && meta.modified().unwrap_or(SystemTime::UNIX_EPOCH) == *mtime
            }
            Err(_) => false,
        }
    }

    /// Rungs 1–3 of the ingestion ladder, run **outside** the registry
    /// lock (a probe forward on a large plan is not cheap).
    fn validate(&self, spec: &ModelSpec, blob: &[u8]) -> Result<InferenceSession, ServeError> {
        // Rung 1: structural walk — framing, version, CRC, section bounds.
        checkpoint::verify(blob)?;
        // Rung 2: full decode + construction-time probe, arming the
        // configured kernel lane and (by default) compiling the frozen
        // plan — so rung 3's probe exercises the program that will serve.
        let session = InferenceSession::from_checkpoint_with_options(
            spec,
            blob,
            self.config.lane,
            self.config.freeze,
        )?;
        // Rung 3: digest stability — inference must not mutate the plan.
        let before = session.network().integrity_digests();
        let zeros = vec![0.0f32; session.sample_len()];
        session.infer_one(&zeros)?;
        let after = session.network().integrity_digests();
        if before != after {
            return Err(ServeError::Internal {
                reason: "integrity digests changed across a probe forward; \
                         plan is not immutable"
                    .to_string(),
            });
        }
        Ok(session)
    }

    /// The atomic publish: validate id and budget, swap the entry under
    /// the lock, evict LRU models until the fleet fits, refresh gauges.
    fn publish_inner(
        &self,
        id: &str,
        session: InferenceSession,
        source: Option<(PathBuf, SystemTime, u64)>,
    ) -> Result<PublishOutcome, ServeError> {
        validate_id(id)?;
        // Session-level residency: parameter stores plus the compiled
        // plan's packed weights (or the per-layer lane cache on fallback).
        let bytes = session.resident_bytes();
        let frozen = session.is_frozen();
        let budget = self.config.budget_bytes;
        if budget > 0 && bytes > budget {
            self.stats.record_model_unavailable();
            return Err(ServeError::ModelUnavailable {
                model: id.to_string(),
                reason: format!(
                    "plan needs {bytes} resident bytes, budget is {budget}; \
                     rejected rather than evicting the whole fleet"
                ),
            });
        }
        let digests = session.network().integrity_digests();
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let (replaced, version) = match inner.models.get_mut(id) {
            Some(entry) => {
                entry.version += 1;
                // The swap: the old Arc leaves the registry here. In-flight
                // batches still hold clones and finish on the old plan; its
                // memory is freed when the last clone drops.
                entry.session = Some(session);
                entry.resident_bytes = bytes;
                entry.digests = digests;
                entry.last_used = tick;
                entry.source = source;
                (true, entry.version)
            }
            None => {
                inner.models.insert(
                    id.to_string(),
                    ModelEntry {
                        session: Some(session),
                        version: 1,
                        last_used: tick,
                        resident_bytes: bytes,
                        digests,
                        source,
                    },
                );
                (false, 1)
            }
        };
        if replaced {
            self.stats.record_swap();
        }
        if frozen {
            self.stats.record_plan_frozen();
        } else {
            self.stats.record_freeze_fallback();
        }
        let evicted = self.evict_to_budget(&mut inner, id);
        self.refresh_gauges(&inner);
        Ok(PublishOutcome {
            model: id.to_string(),
            version,
            resident_bytes: bytes,
            replaced,
            evicted,
        })
    }

    /// Evicts least-recently-used models (never `keep`) until the resident
    /// total fits the budget. Entries stay registered so lookups answer
    /// "evicted", not "unknown".
    fn evict_to_budget(&self, inner: &mut Inner, keep: &str) -> Vec<String> {
        let budget = self.config.budget_bytes;
        let mut evicted = Vec::new();
        if budget == 0 {
            return evicted;
        }
        while resident_total(inner) > budget {
            let victim = inner
                .models
                .iter()
                .filter(|(vid, e)| e.session.is_some() && vid.as_str() != keep)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(vid, _)| vid.clone());
            let Some(vid) = victim else {
                break; // only `keep` is resident and it fits by itself
            };
            if let Some(entry) = inner.models.get_mut(&vid) {
                entry.session = None;
                self.stats.record_eviction();
                evicted.push(vid);
            }
        }
        evicted
    }

    /// Pushes the fleet gauges into the shared stats.
    fn refresh_gauges(&self, inner: &Inner) {
        let resident = inner
            .models
            .values()
            .filter(|e| e.session.is_some())
            .count() as u64;
        self.stats.set_fleet(resident, resident_total(inner));
    }

    /// Moves a rejected file into the quarantine directory (best effort)
    /// and writes a `.reason` sidecar; always counts the quarantine.
    fn quarantine(&self, path: &Path, err: &ServeError) {
        self.stats.record_quarantine();
        let dir = match &self.config.quarantine_dir {
            Some(d) => d.clone(),
            None => path
                .parent()
                .unwrap_or_else(|| Path::new("."))
                .join("quarantine"),
        };
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        let name = path
            .file_name()
            .and_then(|s| s.to_str())
            .unwrap_or("unnamed.aptc")
            .to_string();
        let mut dest = dir.join(&name);
        let mut n = 1;
        while dest.exists() {
            dest = dir.join(format!("{name}.{n}"));
            n += 1;
        }
        if std::fs::rename(path, &dest).is_err() {
            // Cross-device fallback: copy then remove.
            if std::fs::copy(path, &dest).is_err() {
                return;
            }
            let _ = std::fs::remove_file(path);
        }
        let mut reason_path = dest.clone().into_os_string();
        reason_path.push(".reason");
        let _ = std::fs::write(reason_path, format!("{err}\n"));
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned registry lock means a panic mid-publish; the map
        // itself is always in a consistent state (every mutation is a
        // single insert/assign), so serving on is strictly better than
        // taking the whole fleet down.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Summed resident bytes of every resident entry.
fn resident_total(inner: &Inner) -> u64 {
    inner
        .models
        .values()
        .filter(|e| e.session.is_some())
        .map(|e| e.resident_bytes)
        .sum()
}

/// Model ids travel on the wire and become quarantine-sidecar content, so
/// they are bounded and path-safe.
fn validate_id(id: &str) -> Result<(), ServeError> {
    if id.is_empty()
        || id.len() > MAX_MODEL_ID
        || id == "."
        || id == ".."
        || id.contains(['/', '\\', '\0'])
    {
        return Err(ServeError::BadRequest {
            reason: format!(
                "invalid model id {id:?} (1..={MAX_MODEL_ID} bytes, no path separators)"
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelArch;

    fn spec(dims: &[usize]) -> ModelSpec {
        ModelSpec {
            arch: ModelArch::Mlp(dims.to_vec()),
            classes: *dims.last().unwrap(),
            img_size: 0,
            width_mult: 1.0,
        }
    }

    fn blob(dims: &[usize], seed: u64) -> Vec<u8> {
        let s = spec(dims);
        let mut net = match &s.arch {
            ModelArch::Mlp(d) => apt_nn::models::mlp(
                "mlp",
                d,
                &apt_nn::QuantScheme::paper_apt(),
                &mut apt_tensor::rng::seeded(seed),
            )
            .unwrap(),
            _ => unreachable!(),
        };
        checkpoint::save_full(&mut net)
    }

    #[test]
    fn ingest_get_and_versioning() {
        let reg = ModelRegistry::new(RegistryConfig::default());
        let s = spec(&[4, 6, 2]);
        let out = reg.ingest_blob("m1", &s, &blob(&[4, 6, 2], 1)).unwrap();
        assert_eq!((out.version, out.replaced), (1, false));
        let session = reg.get("m1").unwrap();
        assert_eq!(session.sample_len(), 4);
        // Republish = hot-swap: version bumps, swap counted.
        let out = reg.ingest_blob("m1", &s, &blob(&[4, 6, 2], 2)).unwrap();
        assert_eq!((out.version, out.replaced), (2, true));
        assert_eq!(reg.stats().swaps, 1);
        assert_eq!(reg.stats().models_resident, 1);
        assert!(reg.stats().resident_bytes > 0);
    }

    #[test]
    fn unknown_and_invalid_ids_are_typed() {
        let reg = ModelRegistry::new(RegistryConfig::default());
        match reg.get("ghost") {
            Err(ServeError::ModelUnavailable { model, .. }) => assert_eq!(model, "ghost"),
            other => panic!("expected ModelUnavailable, got {other:?}"),
        }
        assert_eq!(reg.stats().model_unavailable, 1);
        let s = spec(&[3, 2]);
        let b = blob(&[3, 2], 1);
        for bad in ["", "a/b", "..", &"x".repeat(300)] {
            assert!(
                matches!(
                    reg.ingest_blob(bad, &s, &b),
                    Err(ServeError::BadRequest { .. })
                ),
                "id {bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn corrupt_blobs_never_publish() {
        let reg = ModelRegistry::new(RegistryConfig::default());
        let s = spec(&[4, 6, 2]);
        let good = blob(&[4, 6, 2], 1);
        reg.ingest_blob("m", &s, &good).unwrap();
        let baseline = reg.get("m").unwrap();
        let expect = baseline.infer_one(&[0.5; 4]).unwrap();
        // Flip one payload byte: rejected, old plan untouched.
        let mut hurt = good.clone();
        let last = hurt.len() - 1;
        hurt[last] ^= 0x40;
        assert!(reg.ingest_blob("m", &s, &hurt).is_err());
        let mut cut = good.clone();
        cut.truncate(cut.len() / 2);
        assert!(reg.ingest_blob("m", &s, &cut).is_err());
        // Wrong architecture for the spec: typed, not published.
        assert!(reg.ingest_blob("m", &s, &blob(&[9, 9, 3], 1)).is_err());
        let after = reg.get("m").unwrap();
        assert_eq!(
            after.infer_one(&[0.5; 4]).unwrap(),
            expect,
            "failed ingest must not disturb the serving plan"
        );
        assert_eq!(reg.models()[0].version, 1);
    }

    #[test]
    fn digest_verified_ingest() {
        let reg = ModelRegistry::new(RegistryConfig::default());
        let s = spec(&[4, 6, 2]);
        let b = blob(&[4, 6, 2], 5);
        let out = reg.ingest_blob("a", &s, &b).unwrap();
        assert!(out.resident_bytes > 0);
        let digests = reg.models()[0].digests.clone();
        assert!(!digests.is_empty());
        // Same blob against its own digests: accepted.
        reg.ingest_blob_verified("a", &s, &b, &digests).unwrap();
        // Different weights against those digests: typed corrupt.
        let other = blob(&[4, 6, 2], 6);
        assert!(matches!(
            reg.ingest_blob_verified("a", &s, &other, &digests),
            Err(ServeError::Nn(apt_nn::NnError::Corrupt { .. }))
        ));
    }

    #[test]
    fn lru_eviction_under_budget() {
        // Budget sized for roughly two of the three identical models.
        let s = spec(&[6, 8, 3]);
        let probe = ModelRegistry::new(RegistryConfig::default());
        probe.ingest_blob("p", &s, &blob(&[6, 8, 3], 0)).unwrap();
        let one = probe.resident_bytes();
        let reg = ModelRegistry::new(RegistryConfig {
            budget_bytes: one * 2 + one / 2,
            ..RegistryConfig::default()
        });
        reg.ingest_blob("a", &s, &blob(&[6, 8, 3], 1)).unwrap();
        reg.ingest_blob("b", &s, &blob(&[6, 8, 3], 2)).unwrap();
        // Touch `a` so `b` is the LRU victim.
        reg.get("a").unwrap();
        let out = reg.ingest_blob("c", &s, &blob(&[6, 8, 3], 3)).unwrap();
        assert_eq!(out.evicted, vec!["b".to_string()]);
        assert!(reg.get("a").is_ok());
        assert!(reg.get("c").is_ok());
        match reg.get("b") {
            Err(ServeError::ModelUnavailable { reason, .. }) => {
                assert!(reason.contains("evicted"), "{reason}")
            }
            other => panic!("expected eviction, got {other:?}"),
        }
        let snap = reg.stats();
        assert_eq!(snap.evictions, 1);
        assert_eq!(snap.models_resident, 2);
        assert!(snap.resident_bytes <= reg.config().budget_bytes);
        // Republishing `b` resurrects it (and evicts the new LRU).
        reg.ingest_blob("b", &s, &blob(&[6, 8, 3], 2)).unwrap();
        assert!(reg.get("b").is_ok());
    }

    #[test]
    fn oversized_plan_rejected_not_fleet_evicting() {
        let s = spec(&[6, 8, 3]);
        let reg = ModelRegistry::new(RegistryConfig {
            budget_bytes: 8, // absurdly tight: nothing fits
            ..RegistryConfig::default()
        });
        match reg.ingest_blob("big", &s, &blob(&[6, 8, 3], 1)) {
            Err(ServeError::ModelUnavailable { model, .. }) => assert_eq!(model, "big"),
            other => panic!("expected budget rejection, got {other:?}"),
        }
        assert!(reg.models().is_empty(), "rejected plan must not register");
    }

    #[test]
    fn file_ingestion_quarantines_bad_files() {
        let dir = std::env::temp_dir().join(format!(
            "apt-registry-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let qdir = dir.join("bad");
        let s = spec(&[4, 6, 2]);
        let reg = ModelRegistry::new(RegistryConfig {
            model_dir: Some(dir.clone()),
            quarantine_dir: Some(qdir.clone()),
            spec: Some(s.clone()),
            ..RegistryConfig::default()
        });
        let good = blob(&[4, 6, 2], 1);
        std::fs::write(dir.join("good.aptc"), &good).unwrap();
        let mut hurt = good.clone();
        let mid = hurt.len() / 2;
        hurt[mid] ^= 0x01;
        std::fs::write(dir.join("hurt.aptc"), &hurt).unwrap();
        std::fs::write(dir.join("noise.txt"), b"not a checkpoint").unwrap();

        let report = reg.rescan().unwrap();
        assert_eq!(report.ingested, vec!["good".to_string()]);
        assert_eq!(report.rejected.len(), 1);
        assert_eq!(report.rejected[0].0, "hurt.aptc");
        assert!(reg.get("good").is_ok());
        assert!(reg.get("hurt").is_err());
        // The bad file moved into quarantine with a reason sidecar.
        assert!(!dir.join("hurt.aptc").exists());
        assert!(qdir.join("hurt.aptc").exists());
        let reason = std::fs::read_to_string(qdir.join("hurt.aptc.reason")).unwrap();
        assert!(!reason.trim().is_empty());
        assert_eq!(reg.stats().quarantines, 1);
        // JSON report names both outcomes.
        let json = report.to_json();
        assert!(
            json.contains("\"good\"") && json.contains("hurt.aptc"),
            "{json}"
        );

        // Second scan: the good file is unchanged, nothing re-ingests.
        let report2 = reg.rescan().unwrap();
        assert_eq!(report2.ingested.len(), 0);
        assert_eq!(report2.unchanged, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
