//! The std-only TCP serving front-end.
//!
//! One accept loop (non-blocking, polling a stop flag), one thread per
//! connection, one shared [`MicroBatcher`] behind them all. Connections
//! speak the length-prefixed protocol from [`crate::protocol`]; a
//! connection stays open across any number of requests and closes on EOF,
//! protocol violation, or server shutdown.

use crate::protocol::{
    self, OP_HEALTH, OP_INFER, OP_STATS, STATUS_BAD_REQUEST, STATUS_OK, STATUS_SHUTTING_DOWN,
};
use crate::{
    BatchPolicy, BatcherHandle, InferenceSession, MicroBatcher, ServeError, StatsSnapshot,
};
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Front-end configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `"127.0.0.1:7878"` (`:0` picks a free port).
    pub addr: String,
    /// The micro-batching policy behind the socket.
    pub policy: BatchPolicy,
    /// Human-readable model identity reported by the health op.
    pub model_name: String,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            policy: BatchPolicy::default(),
            model_name: "unnamed".to_string(),
        }
    }
}

/// How often the accept loop and connection readers poll the stop flag.
const POLL: Duration = Duration::from_millis(50);

/// A running server. Dropping (or calling [`shutdown`](Server::shutdown))
/// stops accepting, drains in-flight requests, and joins every thread.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    batcher: MicroBatcher,
    accept_thread: Option<thread::JoinHandle<()>>,
    connections: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
}

impl Server {
    /// Binds the listener, spawns the batcher and the accept loop, and
    /// returns immediately.
    ///
    /// # Errors
    ///
    /// Propagates bind failures and policy validation errors.
    pub fn start(session: InferenceSession, config: ServerConfig) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let batcher = MicroBatcher::new(session.clone(), config.policy.clone())?;
        let stop = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let stop = Arc::clone(&stop);
            let connections = Arc::clone(&connections);
            let handle = batcher.handle();
            let ctx = Arc::new(ConnCtx {
                handle,
                session,
                model_name: config.model_name,
                stats: batcher.stats_handle(),
            });
            thread::spawn(move || accept_loop(&listener, &stop, &connections, &ctx))
        };
        Ok(Server {
            addr,
            stop,
            batcher,
            accept_thread: Some(accept_thread),
            connections,
        })
    }

    /// The bound address (useful with a `:0` ephemeral-port bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the serving counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.batcher.stats()
    }

    /// Graceful shutdown: stop accepting, answer in-flight requests, join
    /// every connection thread and the batcher worker. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let drained: Vec<_> = match self.connections.lock() {
            Ok(mut conns) => conns.drain(..).collect(),
            Err(_) => Vec::new(),
        };
        for t in drained {
            let _ = t.join();
        }
        self.batcher.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Everything a connection thread needs, bundled for one `Arc`.
#[derive(Debug)]
struct ConnCtx {
    handle: BatcherHandle,
    session: InferenceSession,
    model_name: String,
    stats: Arc<crate::ServeStats>,
}

fn accept_loop(
    listener: &TcpListener,
    stop: &Arc<AtomicBool>,
    connections: &Mutex<Vec<thread::JoinHandle<()>>>,
    ctx: &Arc<ConnCtx>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let ctx = Arc::clone(ctx);
                let stop = Arc::clone(stop);
                let t = thread::spawn(move || connection_loop(stream, &ctx, &stop));
                if let Ok(mut conns) = connections.lock() {
                    conns.push(t);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(POLL),
            // Transient accept errors (e.g. aborted handshake): keep going.
            Err(_) => thread::sleep(POLL),
        }
    }
}

fn connection_loop(stream: TcpStream, ctx: &ConnCtx, stop: &AtomicBool) {
    let mut reader = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    let mut writer = stream;
    let _ = reader.set_read_timeout(Some(POLL));
    let _ = writer.set_nodelay(true);
    loop {
        if stop.load(Ordering::SeqCst) {
            let _ = protocol::write_frame(&mut writer, STATUS_SHUTTING_DOWN, b"server stopping");
            return;
        }
        let (op, payload) = match protocol::read_frame(&mut reader) {
            Ok(frame) => frame,
            Err(ServeError::Io(e))
                if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
            {
                continue; // idle poll tick — re-check the stop flag
            }
            Err(ServeError::Io(_)) => return, // EOF / peer reset
            Err(e) => {
                // Protocol violation: answer once, then hang up (the
                // stream offset can no longer be trusted).
                let _ = protocol::write_frame(
                    &mut writer,
                    STATUS_BAD_REQUEST,
                    e.to_string().as_bytes(),
                );
                return;
            }
        };
        let keep_going = handle_request(&mut writer, ctx, op, &payload);
        if !keep_going {
            return;
        }
    }
}

/// Dispatches one request frame; returns `false` when the connection
/// should close.
fn handle_request(writer: &mut TcpStream, ctx: &ConnCtx, op: u8, payload: &[u8]) -> bool {
    let result: Result<Vec<u8>, ServeError> = match op {
        OP_INFER => protocol::decode_f32s(payload)
            .and_then(|sample| ctx.handle.infer_blocking(sample))
            .map(|row| protocol::encode_f32s(&row)),
        OP_STATS => Ok(ctx.stats.snapshot().to_json().into_bytes()),
        OP_HEALTH => Ok(format!(
            "{{\"status\":\"ok\",\"model\":\"{}\",\"sample_len\":{},\"num_outputs\":{}}}",
            ctx.model_name,
            ctx.session.sample_len(),
            ctx.session.num_outputs()
        )
        .into_bytes()),
        unknown => Err(ServeError::BadRequest {
            reason: format!("unknown op {unknown}"),
        }),
    };
    match result {
        Ok(body) => protocol::write_frame(writer, STATUS_OK, &body).is_ok(),
        Err(e) => {
            let ok =
                protocol::write_frame(writer, protocol::status_for(&e), e.to_string().as_bytes())
                    .is_ok();
            // Errors are answered in-band; only shutdown closes the stream.
            ok && !matches!(e, ServeError::ShuttingDown)
        }
    }
}
