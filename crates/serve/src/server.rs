//! The std-only, readiness-driven TCP serving front-end.
//!
//! One **reactor thread** owns every connection: the listener and all
//! accepted sockets run in nonblocking mode, and the reactor drives them
//! with a poll loop — accept, flush pending writes, read whatever bytes
//! the kernel has, feed them to each connection's incremental
//! [`protocol::FrameDecoder`], and dispatch complete frames. No thread is
//! ever parked on a single peer, so a slow or hostile client costs one
//! connection-table slot, not a thread.
//!
//! Overload protection is layered and typed:
//!
//! * **Connection limit** — accepts beyond [`ConnLimits::max_connections`]
//!   are answered with a `STATUS_OVERLOADED` refusal frame and closed
//!   (counted as `refused_accept`).
//! * **Idle deadline** — connections with no traffic for
//!   [`ConnLimits::idle_timeout`] are reaped (`idle_reaped`).
//! * **Read/write deadline** — a connection stuck mid-frame (slowloris) or
//!   not draining its responses for [`ConnLimits::read_timeout`] is reaped
//!   (`slow_reaped`).
//! * **Request deadline** — every infer request carries
//!   `now + request_timeout` into the [`MicroBatcher`]; work still queued
//!   at its deadline is shed with [`ServeError::DeadlineExceeded`]
//!   *before* inference runs.
//! * **Pipelining bound + fairness** — at most
//!   [`ConnLimits::max_pipeline`] in-flight requests per connection, one
//!   bounded read per connection per tick, and a rotating round-robin scan
//!   so no peer can monopolise the loop.
//!
//! Inference itself never runs on the reactor: requests are submitted to
//! the batcher without blocking, and results come back over a completion
//! channel tagged with a connection token and per-connection sequence
//! number, so responses are written strictly in request order.

use crate::batcher::Completion;
use crate::protocol::{
    self, FrameDecoder, OP_HEALTH, OP_INFER, OP_INFER_MODEL, OP_RELOAD, OP_STATS,
    STATUS_BAD_REQUEST, STATUS_OK, STATUS_OVERLOADED, STATUS_SHUTTING_DOWN,
};
use crate::{
    BatchPolicy, BatcherHandle, InferenceSession, MicroBatcher, ModelRegistry, RegistryConfig,
    ServeError, ServeStats, StatsSnapshot,
};
use std::collections::{BTreeMap, HashMap};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

/// Connection-plane limits: how much concurrency the front door admits and
/// how patient it is with slow peers. All deadlines are wall-clock.
#[derive(Debug, Clone)]
pub struct ConnLimits {
    /// Hard cap on concurrently open connections; accepts beyond it are
    /// refused with a typed `Overloaded` frame.
    pub max_connections: usize,
    /// A connection with no traffic for this long is closed (`idle_reaped`).
    pub idle_timeout: Duration,
    /// A connection stalled mid-frame, or not draining its responses, for
    /// this long is closed (`slow_reaped`) — the slowloris defence.
    pub read_timeout: Duration,
    /// Deadline attached to every infer request; queued work older than
    /// this is shed before inference ([`ServeError::DeadlineExceeded`]).
    /// Zero disables request deadlines.
    pub request_timeout: Duration,
    /// Most in-flight infer requests one connection may pipeline; further
    /// frames wait in the socket until responses drain.
    pub max_pipeline: usize,
}

impl Default for ConnLimits {
    fn default() -> Self {
        ConnLimits {
            max_connections: 1024,
            idle_timeout: Duration::from_secs(60),
            read_timeout: Duration::from_secs(10),
            request_timeout: Duration::from_secs(5),
            max_pipeline: 32,
        }
    }
}

impl ConnLimits {
    /// Validates the limits.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] for zero `max_connections` or
    /// `max_pipeline`.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.max_connections == 0 || self.max_pipeline == 0 {
            return Err(ServeError::BadRequest {
                reason: format!(
                    "connection limits need max_connections ≥ 1 and max_pipeline ≥ 1, got {self:?}"
                ),
            });
        }
        Ok(())
    }
}

/// Front-end configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `"127.0.0.1:7878"` (`:0` picks a free port).
    pub addr: String,
    /// The micro-batching policy behind the socket.
    pub policy: BatchPolicy,
    /// Human-readable model identity reported by the health op.
    pub model_name: String,
    /// Connection-plane limits (connection cap, deadlines, pipelining).
    pub limits: ConnLimits,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            policy: BatchPolicy::default(),
            model_name: "unnamed".to_string(),
            limits: ConnLimits::default(),
        }
    }
}

/// Per-read budget: one bounded read per connection per tick keeps a
/// fire-hose peer from starving the rest of the scan.
const READ_CHUNK: usize = 16 * 1024;
/// Frames dispatched per connection per tick (fairness for op floods).
const FRAMES_PER_TICK: usize = 64;
/// Pending-write backlog past which reads pause (per-connection flow
/// control; responses must drain before more work is admitted).
const OUT_SOFT_CAP: usize = 1024 * 1024;
/// Accepts processed per tick.
const ACCEPTS_PER_TICK: usize = 128;
/// Deadline-sweep cadence.
const SWEEP_EVERY: Duration = Duration::from_millis(20);
/// Shortest idle sleep; doubles per idle tick up to [`IDLE_SLEEP_MAX`].
const IDLE_SLEEP_MIN: Duration = Duration::from_micros(100);
/// Longest idle sleep (bounds wake-up latency for new connections).
const IDLE_SLEEP_MAX: Duration = Duration::from_millis(4);
/// How long a draining server waits for in-flight responses to flush.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(3);

/// A running server. Dropping (or calling [`shutdown`](Server::shutdown))
/// stops accepting, drains in-flight requests, and joins the reactor.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    batcher: MicroBatcher,
    registry: Arc<ModelRegistry>,
    reactor_thread: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Single-model convenience: wraps `session` in a fresh unbounded
    /// [`ModelRegistry`] published under [`ServerConfig::model_name`] and
    /// starts the fleet server on it.
    ///
    /// # Errors
    ///
    /// Propagates bind failures and policy/limit validation errors.
    pub fn start(session: InferenceSession, config: ServerConfig) -> Result<Server, ServeError> {
        let registry = Arc::new(ModelRegistry::new(RegistryConfig::default()));
        registry.publish(&config.model_name, session)?;
        Server::start_with_registry(registry, config)
    }

    /// Binds the listener, spawns the batcher and the reactor thread over
    /// an existing model fleet, and returns immediately.
    /// [`ServerConfig::model_name`] names the **default model** — the plan
    /// `OP_INFER` requests (which carry no model id) resolve to; it must be
    /// resident at start. Publishing to the registry while the server runs
    /// hot-swaps plans under live traffic.
    ///
    /// # Errors
    ///
    /// Propagates bind failures, policy/limit validation errors, and a
    /// missing default model.
    pub fn start_with_registry(
        registry: Arc<ModelRegistry>,
        config: ServerConfig,
    ) -> Result<Server, ServeError> {
        config.limits.validate()?;
        let default_session = registry.get(&config.model_name)?;
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stats = registry.stats_handle();
        let batcher = MicroBatcher::with_stats(default_session, config.policy.clone(), stats)?;
        let stop = Arc::new(AtomicBool::new(false));
        let reactor_thread = {
            let ctx = ConnCtx {
                handle: batcher.handle(),
                registry: Arc::clone(&registry),
                default_model: config.model_name,
                stats: batcher.stats_handle(),
                reload_busy: Arc::new(AtomicBool::new(false)),
            };
            let stop = Arc::clone(&stop);
            let limits = config.limits.clone();
            thread::spawn(move || Reactor::new(listener, ctx, limits, stop).run())
        };
        Ok(Server {
            addr,
            stop,
            batcher,
            registry,
            reactor_thread: Some(reactor_thread),
        })
    }

    /// The bound address (useful with a `:0` ephemeral-port bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The model fleet behind this server. Publishing or ingesting through
    /// it while the server runs performs an atomic hot-swap: requests
    /// resolved after the publish run the new plan, in-flight requests
    /// finish on the old one.
    pub fn registry(&self) -> Arc<ModelRegistry> {
        Arc::clone(&self.registry)
    }

    /// Snapshot of the serving counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.batcher.stats()
    }

    /// Graceful shutdown: stop accepting, flush responses for everything
    /// already in flight, close every connection, then drain and join the
    /// batcher. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.reactor_thread.take() {
            let _ = t.join();
        }
        self.batcher.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Everything request dispatch needs, owned by the reactor.
#[derive(Debug)]
struct ConnCtx {
    handle: BatcherHandle,
    registry: Arc<ModelRegistry>,
    /// The model `OP_INFER` (no model id on the wire) resolves to.
    default_model: String,
    stats: Arc<ServeStats>,
    /// At most one directory rescan runs at a time; concurrent `OP_RELOAD`
    /// requests are refused typed rather than queued.
    reload_busy: Arc<AtomicBool>,
}

/// Why a connection is being closed (drives the shed taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CloseReason {
    /// Peer closed / I/O error / protocol violation / normal teardown.
    Plain,
    /// Idle deadline expired.
    Idle,
    /// Stalled mid-frame or mid-write past the read deadline.
    Slow,
}

/// One connection's state machine.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Pending outgoing bytes (encoded frames) and the flush cursor.
    out: Vec<u8>,
    out_pos: usize,
    /// Next sequence number to assign to an incoming request.
    next_seq: u64,
    /// Next sequence number to append to `out` (strict response order).
    next_write: u64,
    /// Responses that are ready but waiting for earlier sequence numbers.
    ready: BTreeMap<u64, Vec<u8>>,
    /// Requests submitted to the batcher and not yet completed.
    inflight: usize,
    /// Last time bytes arrived or a write made progress.
    last_activity: Instant,
    /// Last time a pending write advanced (write-stall detection).
    last_write_progress: Instant,
    /// When the currently-buffered partial frame started arriving.
    partial_since: Option<Instant>,
    /// Peer sent EOF; serve out what's in flight, then close.
    peer_closed: bool,
    /// Close after the out buffer flushes (protocol violation).
    closing: bool,
    /// Shutdown notice has been queued (drain mode).
    notice_sent: bool,
    /// Remove this connection at the end of the tick.
    dead: Option<CloseReason>,
}

impl Conn {
    fn new(stream: TcpStream, now: Instant) -> Conn {
        Conn {
            stream,
            decoder: FrameDecoder::new(),
            out: Vec::new(),
            out_pos: 0,
            next_seq: 0,
            next_write: 0,
            ready: BTreeMap::new(),
            inflight: 0,
            last_activity: now,
            last_write_progress: now,
            partial_since: None,
            peer_closed: false,
            closing: false,
            notice_sent: false,
            dead: None,
        }
    }

    fn out_pending(&self) -> usize {
        self.out.len() - self.out_pos
    }

    /// Everything answered and flushed — nothing owed to the peer.
    fn drained(&self) -> bool {
        self.inflight == 0 && self.ready.is_empty() && self.out_pending() == 0
    }

    /// Queues one response frame at its sequence slot, then pours every
    /// now-contiguous response into the out buffer in order.
    fn push_response(&mut self, seq: u64, frame: Vec<u8>, now: Instant) {
        self.ready.insert(seq, frame);
        while let Some(f) = self.ready.remove(&self.next_write) {
            if self.out_pending() == 0 {
                self.last_write_progress = now;
            }
            self.out.extend_from_slice(&f);
            self.next_write += 1;
        }
    }

    /// Appends raw pre-encoded bytes outside the sequence stream (the
    /// shutdown notice).
    fn push_raw(&mut self, frame: &[u8], now: Instant) {
        if self.out_pending() == 0 {
            self.last_write_progress = now;
        }
        self.out.extend_from_slice(frame);
    }

    /// Flushes as much of the out buffer as the socket accepts.
    /// Returns `true` on progress.
    fn flush(&mut self, now: Instant) -> bool {
        let mut progress = false;
        while self.out_pending() > 0 {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => {
                    self.dead = Some(CloseReason::Plain);
                    break;
                }
                Ok(n) => {
                    self.out_pos += n;
                    self.last_write_progress = now;
                    self.last_activity = now;
                    progress = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = Some(CloseReason::Plain);
                    break;
                }
            }
        }
        if self.out_pending() == 0 && !self.out.is_empty() {
            self.out.clear();
            self.out_pos = 0;
        }
        progress
    }
}

/// The single-threaded readiness loop driving every connection.
struct Reactor {
    listener: Option<TcpListener>,
    ctx: ConnCtx,
    limits: ConnLimits,
    conns: HashMap<u64, Conn>,
    /// Round-robin scan order (tokens); start index rotates every tick.
    order: Vec<u64>,
    rr: usize,
    next_token: u64,
    completions_rx: mpsc::Receiver<Completion>,
    completions_tx: mpsc::Sender<Completion>,
    stop: Arc<AtomicBool>,
    stopping: Option<Instant>,
    last_sweep: Instant,
}

impl Reactor {
    fn new(
        listener: TcpListener,
        ctx: ConnCtx,
        limits: ConnLimits,
        stop: Arc<AtomicBool>,
    ) -> Reactor {
        let (completions_tx, completions_rx) = mpsc::channel();
        Reactor {
            listener: Some(listener),
            ctx,
            limits,
            conns: HashMap::new(),
            order: Vec::new(),
            rr: 0,
            next_token: 0,
            completions_rx,
            completions_tx,
            stop,
            stopping: None,
            last_sweep: Instant::now(),
        }
    }

    fn run(mut self) {
        let mut idle_ticks = 0u32;
        loop {
            let mut progress = false;
            if self.stop.load(Ordering::SeqCst) && self.stopping.is_none() {
                self.begin_drain();
                progress = true;
            }
            progress |= self.drain_completions();
            progress |= self.accept_new();
            progress |= self.io_pass();
            self.reap_dead();
            let now = Instant::now();
            if self.stopping.is_none() && now.duration_since(self.last_sweep) >= SWEEP_EVERY {
                self.sweep(now);
                self.last_sweep = now;
            }
            if let Some(since) = self.stopping {
                if self.conns.is_empty() || since.elapsed() > SHUTDOWN_GRACE {
                    return;
                }
            }
            if progress {
                idle_ticks = 0;
            } else {
                idle_ticks = idle_ticks.saturating_add(1);
                let sleep =
                    (IDLE_SLEEP_MIN * 2u32.saturating_pow(idle_ticks.min(8))).min(IDLE_SLEEP_MAX);
                // The sleep doubles as completion delivery: a finishing
                // batch wakes the reactor immediately instead of waiting
                // out the timeout.
                match self.completions_rx.recv_timeout(sleep) {
                    Ok(c) => {
                        self.route_completion(c);
                        idle_ticks = 0;
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    // Unreachable while we hold completions_tx; exit safe.
                    Err(mpsc::RecvTimeoutError::Disconnected) => return,
                }
            }
        }
    }

    /// Enters drain mode: the listener closes (new connects are refused by
    /// the OS), reads stop, and each connection is held open just long
    /// enough to flush responses for its in-flight requests.
    fn begin_drain(&mut self) {
        self.stopping = Some(Instant::now());
        self.listener = None;
    }

    /// Delivers every completed batch result waiting on the channel.
    fn drain_completions(&mut self) -> bool {
        let mut progress = false;
        while let Ok(c) = self.completions_rx.try_recv() {
            self.route_completion(c);
            progress = true;
        }
        progress
    }

    fn route_completion(&mut self, c: Completion) {
        // A completion for a connection that died in the meantime is
        // dropped, like a hung-up blocking requester.
        if let Some(conn) = self.conns.get_mut(&c.conn) {
            conn.inflight = conn.inflight.saturating_sub(1);
            let frame = match c.result {
                Ok(payload) => protocol::encode_frame(STATUS_OK, &payload),
                Err(e) => {
                    protocol::encode_frame(protocol::status_for(&e), e.to_string().as_bytes())
                }
            };
            conn.push_response(c.seq, frame, Instant::now());
        }
    }

    /// Accepts waiting connections, refusing typed past the limit.
    fn accept_new(&mut self) -> bool {
        let Some(listener) = &self.listener else {
            return false;
        };
        let mut progress = false;
        for _ in 0..ACCEPTS_PER_TICK {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    progress = true;
                    if self.conns.len() >= self.limits.max_connections {
                        // Count before writing the frame: a client that
                        // has read the typed refusal must already see it
                        // in the stats.
                        self.ctx.stats.record_refused_accept();
                        refuse(stream, self.limits.max_connections);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    self.conns.insert(token, Conn::new(stream, Instant::now()));
                    self.order.push(token);
                    self.ctx.stats.record_conn_open();
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                // Transient accept errors (e.g. aborted handshake).
                Err(_) => break,
            }
        }
        progress
    }

    /// One round-robin scan: flush writes, then read/dispatch, for every
    /// connection. The start index rotates so no connection is always
    /// served first.
    fn io_pass(&mut self) -> bool {
        let mut progress = false;
        let n = self.order.len();
        if n == 0 {
            return false;
        }
        self.rr = (self.rr + 1) % n;
        for i in 0..n {
            let token = self.order[(self.rr + i) % n];
            let Some(conn) = self.conns.get_mut(&token) else {
                continue;
            };
            if conn.dead.is_some() {
                continue;
            }
            let now = Instant::now();
            progress |= conn.flush(now);
            if conn.dead.is_some() {
                continue;
            }
            let readable = self.stopping.is_none()
                && !conn.closing
                && !conn.peer_closed
                && conn.inflight < self.limits.max_pipeline
                && conn.out_pending() <= OUT_SOFT_CAP;
            if readable {
                progress |=
                    read_and_dispatch(conn, token, &self.ctx, &self.limits, &self.completions_tx);
            }
            // Close-after-flush states.
            if conn.dead.is_none() {
                let now = Instant::now();
                if self.stopping.is_some() {
                    if conn.drained() && !conn.notice_sent {
                        conn.push_raw(
                            &protocol::encode_frame(STATUS_SHUTTING_DOWN, b"server stopping"),
                            now,
                        );
                        conn.notice_sent = true;
                        conn.flush(now);
                    }
                    if conn.notice_sent && conn.out_pending() == 0 {
                        conn.dead = Some(CloseReason::Plain);
                    }
                } else if (conn.closing || conn.peer_closed) && conn.drained() {
                    conn.dead = Some(CloseReason::Plain);
                }
            }
        }
        progress
    }

    /// Applies idle and slow-peer deadlines.
    fn sweep(&mut self, now: Instant) {
        for conn in self.conns.values_mut() {
            if conn.dead.is_some() {
                continue;
            }
            // Write stall: responses pending, peer not draining them.
            if conn.out_pending() > 0
                && now.duration_since(conn.last_write_progress) > self.limits.read_timeout
            {
                conn.dead = Some(CloseReason::Slow);
                continue;
            }
            // Slowloris: a frame started arriving but never completes.
            // (Connections paused by the pipelining bound are exempt —
            // the stall is ours, not the peer's.)
            if conn.inflight < self.limits.max_pipeline {
                if let Some(since) = conn.partial_since {
                    if now.duration_since(since) > self.limits.read_timeout {
                        conn.dead = Some(CloseReason::Slow);
                        continue;
                    }
                }
            }
            // Idle: nothing owed either way for the whole idle window.
            if conn.drained()
                && !conn.decoder.mid_frame()
                && now.duration_since(conn.last_activity) > self.limits.idle_timeout
            {
                conn.dead = Some(CloseReason::Idle);
            }
        }
    }

    /// Removes connections marked dead this tick and rebuilds the scan
    /// order.
    fn reap_dead(&mut self) {
        if self.conns.values().all(|c| c.dead.is_none()) {
            return;
        }
        let stats = &self.ctx.stats;
        self.conns.retain(|_, c| match c.dead {
            None => true,
            Some(reason) => {
                match reason {
                    CloseReason::Idle => stats.record_idle_reaped(),
                    CloseReason::Slow => stats.record_slow_reaped(),
                    CloseReason::Plain => {}
                }
                stats.record_conn_close();
                false
            }
        });
        self.order.retain(|t| self.conns.contains_key(t));
        self.rr = 0;
    }
}

/// Best-effort typed refusal for an over-limit accept: one `Overloaded`
/// frame, then close.
fn refuse(stream: TcpStream, limit: usize) {
    if stream.set_nonblocking(true).is_ok() {
        let msg = format!("overloaded: connection limit ({limit}) reached");
        let frame = protocol::encode_frame(STATUS_OVERLOADED, msg.as_bytes());
        let mut s = &stream;
        let _ = s.write(&frame);
    }
}

/// Reads one bounded chunk from the socket, advances the frame decoder,
/// and dispatches every complete frame. Returns `true` on progress.
fn read_and_dispatch(
    conn: &mut Conn,
    token: u64,
    ctx: &ConnCtx,
    limits: &ConnLimits,
    completions: &mpsc::Sender<Completion>,
) -> bool {
    let mut buf = [0u8; READ_CHUNK];
    let now = Instant::now();
    let mut got_bytes = false;
    match conn.stream.read(&mut buf) {
        Ok(0) => {
            conn.peer_closed = true;
        }
        Ok(n) => {
            conn.decoder.feed(&buf[..n]);
            conn.last_activity = now;
            got_bytes = true;
        }
        Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::Interrupted => {}
        Err(_) => {
            conn.dead = Some(CloseReason::Plain);
            return false;
        }
    }

    let mut frames = 0usize;
    let mut dispatched = false;
    while frames < FRAMES_PER_TICK && conn.inflight < limits.max_pipeline && !conn.closing {
        match conn.decoder.try_frame() {
            Ok(Some((op, payload))) => {
                frames += 1;
                dispatch(conn, token, op, &payload, ctx, limits, completions);
                dispatched = true;
            }
            Ok(None) => break,
            Err(e) => {
                // Framing violation: answer once, close after flush — the
                // stream offset can no longer be trusted.
                let seq = conn.next_seq;
                conn.next_seq += 1;
                conn.push_response(
                    seq,
                    protocol::encode_frame(STATUS_BAD_REQUEST, e.to_string().as_bytes()),
                    now,
                );
                conn.closing = true;
            }
        }
    }
    // Track when the currently-buffered partial frame started arriving
    // (the clock a slowloris read-deadline runs against).
    if conn.decoder.mid_frame() {
        if dispatched || conn.partial_since.is_none() {
            conn.partial_since = Some(now);
        }
    } else {
        conn.partial_since = None;
    }
    got_bytes || dispatched
}

/// Handles one complete request frame: infer goes to the batcher with a
/// deadline attached (the sample resolved against the fleet registry at
/// admission time); reloads run on a spawned thread and answer through the
/// completion channel; stats/health/errors are answered immediately.
fn dispatch(
    conn: &mut Conn,
    token: u64,
    op: u8,
    payload: &[u8],
    ctx: &ConnCtx,
    limits: &ConnLimits,
    completions: &mpsc::Sender<Completion>,
) {
    let now = Instant::now();
    let seq = conn.next_seq;
    conn.next_seq += 1;
    let immediate: Result<Vec<u8>, ServeError> = match op {
        OP_INFER => {
            let admitted = protocol::decode_f32s(payload).and_then(|sample| {
                submit_infer(
                    &ctx.default_model,
                    sample,
                    now,
                    token,
                    seq,
                    ctx,
                    limits,
                    completions,
                )
            });
            match admitted {
                Ok(()) => {
                    conn.inflight += 1;
                    return; // response arrives via the completion channel
                }
                Err(e) => Err(e), // typed refusal, answered now
            }
        }
        OP_INFER_MODEL => {
            let admitted = protocol::decode_model_infer(payload).and_then(|(model, sample)| {
                submit_infer(&model, sample, now, token, seq, ctx, limits, completions)
            });
            match admitted {
                Ok(()) => {
                    conn.inflight += 1;
                    return;
                }
                Err(e) => Err(e),
            }
        }
        OP_RELOAD => {
            if ctx.registry.config().model_dir.is_none() {
                Err(ServeError::BadRequest {
                    reason: "server has no model directory to rescan".to_string(),
                })
            } else if ctx.reload_busy.swap(true, Ordering::SeqCst) {
                Err(ServeError::Overloaded { queue_depth: 1 })
            } else {
                // Rescans validate checkpoints (probe forwards included),
                // which is far too slow for the reactor thread: run it on
                // a one-shot thread and deliver the report as a normal
                // sequenced completion.
                let registry = Arc::clone(&ctx.registry);
                let busy = Arc::clone(&ctx.reload_busy);
                let tx = completions.clone();
                thread::spawn(move || {
                    let result = registry.rescan().map(|r| r.to_json().into_bytes());
                    busy.store(false, Ordering::SeqCst);
                    let _ = tx.send(Completion {
                        conn: token,
                        seq,
                        result,
                    });
                });
                conn.inflight += 1;
                return;
            }
        }
        OP_STATS => Ok(ctx.stats.snapshot().to_json().into_bytes()),
        OP_HEALTH => {
            let resident = ctx.stats.snapshot().models_resident;
            let body = match ctx.registry.peek(&ctx.default_model) {
                Some(s) => format!(
                    "{{\"status\":\"ok\",\"model\":\"{}\",\"sample_len\":{},\
                     \"num_outputs\":{},\"models_resident\":{resident}}}",
                    ctx.default_model,
                    s.sample_len(),
                    s.num_outputs()
                ),
                // The default model was evicted or never came back: the
                // process is alive but degraded; say so instead of lying.
                None => format!(
                    "{{\"status\":\"degraded\",\"model\":\"{}\",\"sample_len\":0,\
                     \"num_outputs\":0,\"models_resident\":{resident}}}",
                    ctx.default_model
                ),
            };
            Ok(body.into_bytes())
        }
        unknown => Err(ServeError::BadRequest {
            reason: format!("unknown op {unknown}"),
        }),
    };
    let frame = match immediate {
        Ok(body) => protocol::encode_frame(STATUS_OK, &body),
        Err(e) => protocol::encode_frame(protocol::status_for(&e), e.to_string().as_bytes()),
    };
    conn.push_response(seq, frame, now);
}

/// Resolves `model` against the fleet and submits the sample to the
/// batcher. `Ok(())` means a completion will arrive for `(token, seq)`.
#[allow(clippy::too_many_arguments)]
fn submit_infer(
    model: &str,
    sample: Vec<f32>,
    now: Instant,
    token: u64,
    seq: u64,
    ctx: &ConnCtx,
    limits: &ConnLimits,
    completions: &mpsc::Sender<Completion>,
) -> Result<(), ServeError> {
    // The hot-swap read point: the plan is pinned here, so this request
    // finishes on it even if a new version is published a microsecond
    // later.
    let session = ctx.registry.get(model)?;
    // Geometry is checked against the pinned plan before admission, so a
    // wrong-length sample can never reach (and fail) a coalesced batch
    // that also carries other connections' requests.
    if sample.len() != session.sample_len() {
        return Err(ServeError::BadRequest {
            reason: format!(
                "model `{model}` expects {} input values, got {}",
                session.sample_len(),
                sample.len()
            ),
        });
    }
    let deadline = (!limits.request_timeout.is_zero()).then(|| now + limits.request_timeout);
    ctx.handle
        .submit_event(session, sample, deadline, token, seq, completions.clone())
}
