//! Frozen inference sessions over `.aptc` checkpoints.
//!
//! An [`InferenceSession`] is the serving counterpart of the trainer: the
//! network is loaded once, kept **immutable** behind an `Arc`, and executed
//! through [`apt_nn::Network::forward_inference`] — evaluation arithmetic,
//! no activation caching, no gradient or MAC bookkeeping. Quantised
//! weights stay resident at their physical packed width (the code store is
//! loaded verbatim from the checkpoint; nothing is inflated to fp32 at
//! rest).
//!
//! At load time the session arms a [`KernelLane`] on the network — the
//! default [`KernelLane::DequantCache`] caches each weight's f32 value once
//! (bit-exact vs the unarmed forward), while [`KernelLane::IntGemm`] serves
//! straight from packed integer panels through the fused integer GEMM
//! kernels (bit-close, documented bound). Whatever the plans keep resident
//! is counted by [`apt_nn::Network::resident_bytes`], so registry eviction
//! budgets see the real footprint.
//!
//! Input staging goes through a [`ScratchArena`] so steady-state request
//! handling reuses buffers instead of allocating per call. Layer
//! intermediates inside ops still allocate; the arena removes the
//! per-request staging churn on the batcher's hot loop, which is the
//! allocation the runtime actually controls.

use crate::ServeError;
use apt_nn::{checkpoint, models, FrozenPlan, KernelLane, Network, PlanReport, QuantScheme};
use apt_tensor::{rng, Tensor};
use std::str::FromStr;
use std::sync::{Arc, Mutex};

/// Which model-zoo architecture a checkpoint belongs to. A `.aptc` blob
/// stores parameters by name, not architecture, so the loader must be told
/// what to instantiate.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelArch {
    /// Multilayer perceptron; `dims` is `[input, hidden…, output]`.
    Mlp(Vec<usize>),
    /// CifarNet (two conv stages + two linear layers).
    Cifarnet,
    /// VGG-small.
    VggSmall,
    /// ResNet-20.
    Resnet20,
    /// ResNet-110.
    Resnet110,
    /// MobileNetV2.
    MobilenetV2,
}

impl FromStr for ModelArch {
    type Err = ServeError;

    /// Parses `"cifarnet"`, `"vgg_small"`, `"resnet20"`, `"resnet110"`,
    /// `"mobilenet_v2"`, or `"mlp:IN-HIDDEN-…-OUT"` (e.g. `mlp:784-128-10`).
    fn from_str(s: &str) -> Result<Self, ServeError> {
        match s {
            "cifarnet" => Ok(ModelArch::Cifarnet),
            "vgg_small" => Ok(ModelArch::VggSmall),
            "resnet20" => Ok(ModelArch::Resnet20),
            "resnet110" => Ok(ModelArch::Resnet110),
            "mobilenet_v2" => Ok(ModelArch::MobilenetV2),
            other => {
                if let Some(dims) = other.strip_prefix("mlp:") {
                    let parsed: Result<Vec<usize>, _> =
                        dims.split('-').map(|d| d.parse::<usize>()).collect();
                    match parsed {
                        Ok(d) if d.len() >= 2 => return Ok(ModelArch::Mlp(d)),
                        _ => {
                            return Err(ServeError::BadRequest {
                                reason: format!("bad mlp dims `{dims}` (want e.g. mlp:784-128-10)"),
                            })
                        }
                    }
                }
                Err(ServeError::BadRequest {
                    reason: format!(
                        "unknown model `{other}` (known: cifarnet, vgg_small, resnet20, \
                         resnet110, mobilenet_v2, mlp:IN-…-OUT)"
                    ),
                })
            }
        }
    }
}

/// Everything needed to rebuild the architecture a checkpoint was trained
/// on. The quantisation scheme does **not** need to match training:
/// checkpoint loading replaces each parameter's store wholesale, so any
/// scheme works as a construction placeholder.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// The backbone to instantiate.
    pub arch: ModelArch,
    /// Classifier output count.
    pub classes: usize,
    /// Input image side length (ignored for [`ModelArch::Mlp`]).
    pub img_size: usize,
    /// Width multiplier (ignored for [`ModelArch::Mlp`]).
    pub width_mult: f32,
}

impl ModelSpec {
    /// Instantiates the architecture with placeholder weights, ready for
    /// [`checkpoint::load`].
    ///
    /// # Errors
    ///
    /// Propagates model-constructor configuration errors.
    pub fn build(&self) -> Result<Network, ServeError> {
        // Seed is irrelevant: every parameter is overwritten by the load.
        let mut r = rng::seeded(0);
        let scheme = QuantScheme::paper_apt();
        let net = match &self.arch {
            ModelArch::Mlp(dims) => models::mlp("mlp", dims, &scheme, &mut r)?,
            ModelArch::Cifarnet => models::cifarnet(
                self.classes,
                self.img_size,
                self.width_mult,
                &scheme,
                &mut r,
            )?,
            ModelArch::VggSmall => models::vgg_small(
                self.classes,
                self.img_size,
                self.width_mult,
                &scheme,
                &mut r,
            )?,
            ModelArch::Resnet20 => {
                models::resnet20(self.classes, self.width_mult, &scheme, &mut r)?
            }
            ModelArch::Resnet110 => {
                models::resnet110(self.classes, self.width_mult, &scheme, &mut r)?
            }
            ModelArch::MobilenetV2 => {
                models::mobilenet_v2(self.classes, self.width_mult, &scheme, &mut r)?
            }
        };
        Ok(net)
    }

    /// Shape of one input sample (without the batch axis).
    pub fn sample_dims(&self) -> Vec<usize> {
        match &self.arch {
            ModelArch::Mlp(dims) => vec![dims[0]],
            _ => vec![3, self.img_size, self.img_size],
        }
    }
}

/// A bounded free-list of staging buffers. `take` prefers a recycled
/// buffer; `put` returns one for reuse. Bounded so a burst can't pin
/// unbounded memory.
#[derive(Debug, Default)]
pub struct ScratchArena {
    free: Mutex<Vec<Vec<f32>>>,
}

/// Maximum buffers the arena retains; beyond this, `put` just drops.
const ARENA_CAP: usize = 16;

impl ScratchArena {
    /// Fetches an empty buffer with at least `capacity` reserved,
    /// recycling a previously returned one when available.
    pub fn take(&self, capacity: usize) -> Vec<f32> {
        let recycled = match self.free.lock() {
            Ok(mut free) => free.pop(),
            Err(_) => None,
        };
        match recycled {
            Some(mut buf) => {
                buf.clear();
                buf.reserve(capacity.saturating_sub(buf.capacity()));
                buf
            }
            None => Vec::with_capacity(capacity),
        }
    }

    /// Returns a buffer to the free list (dropped if the arena is full).
    pub fn put(&self, buf: Vec<f32>) {
        if let Ok(mut free) = self.free.lock() {
            if free.len() < ARENA_CAP {
                free.push(buf);
            }
        }
    }

    /// Number of buffers currently parked in the free list.
    pub fn parked(&self) -> usize {
        self.free.lock().map(|f| f.len()).unwrap_or(0)
    }
}

/// An immutable, `Arc`-shared frozen network plus the bookkeeping the
/// batcher and server need: sample geometry, output width, and a scratch
/// arena for staging buffers.
///
/// Cloning a session is cheap — clones share the network and the arena.
#[derive(Debug, Clone)]
pub struct InferenceSession {
    net: Arc<Network>,
    /// Compiled frozen plan — the default serving path. `None` when the
    /// session was built with freezing disabled or freezing fell back.
    plan: Option<Arc<FrozenPlan>>,
    /// Why freezing fell back to layer-by-layer replay, when it did.
    freeze_reason: Option<Arc<str>>,
    arena: Arc<ScratchArena>,
    sample_dims: Vec<usize>,
    sample_len: usize,
    num_outputs: usize,
    lane: KernelLane,
}

impl InferenceSession {
    /// Loads a `.aptc` checkpoint blob (any supported version: v1, v2, v3)
    /// into the architecture described by `spec` and freezes the result,
    /// arming the default [`KernelLane::DequantCache`] (bit-exact).
    ///
    /// # Errors
    ///
    /// Propagates architecture construction and checkpoint decode errors,
    /// and fails if a probe forward pass cannot run.
    pub fn from_checkpoint(spec: &ModelSpec, blob: &[u8]) -> Result<Self, ServeError> {
        Self::from_checkpoint_with_lane(spec, blob, KernelLane::default())
    }

    /// [`from_checkpoint`](Self::from_checkpoint) with an explicit kernel
    /// lane request; see [`from_network_with_lane`]
    /// (Self::from_network_with_lane) for lane semantics.
    ///
    /// # Errors
    ///
    /// Same contract as [`from_checkpoint`](Self::from_checkpoint).
    pub fn from_checkpoint_with_lane(
        spec: &ModelSpec,
        blob: &[u8],
        lane: KernelLane,
    ) -> Result<Self, ServeError> {
        Self::from_checkpoint_with_options(spec, blob, lane, true)
    }

    /// [`from_checkpoint_with_lane`](Self::from_checkpoint_with_lane) with
    /// the freeze compiler toggleable; see
    /// [`from_network_with_options`](Self::from_network_with_options).
    ///
    /// # Errors
    ///
    /// Same contract as [`from_checkpoint`](Self::from_checkpoint).
    pub fn from_checkpoint_with_options(
        spec: &ModelSpec,
        blob: &[u8],
        lane: KernelLane,
        freeze: bool,
    ) -> Result<Self, ServeError> {
        let mut net = spec.build()?;
        checkpoint::load(&mut net, blob)?;
        Self::from_network_with_options(net, &spec.sample_dims(), lane, freeze)
    }

    /// Freezes an already-constructed network (e.g. straight out of a
    /// trainer) into a session, arming the default
    /// [`KernelLane::DequantCache`]. `sample_dims` is the shape of one
    /// input sample without the batch axis.
    ///
    /// # Errors
    ///
    /// Fails if the probe forward pass (batch of one zero sample) errors,
    /// which catches sample-shape mismatches at construction time rather
    /// than on the first request.
    pub fn from_network(net: Network, sample_dims: &[usize]) -> Result<Self, ServeError> {
        Self::from_network_with_lane(net, sample_dims, KernelLane::default())
    }

    /// [`from_network`](Self::from_network) with an explicit kernel lane.
    /// The requested lane is armed on every layer before the network is
    /// frozen; the session records the **achieved** lane (layers that
    /// cannot build an integer panel degrade, see
    /// [`apt_nn::Network::prepare_inference`]), readable via
    /// [`lane`](Self::lane).
    ///
    /// # Errors
    ///
    /// Same contract as [`from_network`](Self::from_network), plus any
    /// plan-construction error from the layers.
    pub fn from_network_with_lane(
        net: Network,
        sample_dims: &[usize],
        lane: KernelLane,
    ) -> Result<Self, ServeError> {
        Self::from_network_with_options(net, sample_dims, lane, true)
    }

    /// [`from_network_with_lane`](Self::from_network_with_lane) with the
    /// freeze compiler toggleable. With `freeze = true` (the default
    /// everywhere) the network is compiled into a [`FrozenPlan`]: BN
    /// folded, activations fused, intermediates arena-planned, weights
    /// packed at load. When compilation reports a typed
    /// [`apt_nn::NnError::Unfreezable`] the session records the reason
    /// ([`freeze_reason`](Self::freeze_reason)) and falls back to
    /// layer-by-layer replay — a fallback is never a load failure. With
    /// `freeze = false` the legacy replay path is used unconditionally.
    ///
    /// # Errors
    ///
    /// Same contract as [`from_network`](Self::from_network), plus any
    /// plan-construction error from the layers.
    pub fn from_network_with_options(
        mut net: Network,
        sample_dims: &[usize],
        lane: KernelLane,
        freeze: bool,
    ) -> Result<Self, ServeError> {
        if sample_dims.is_empty() || sample_dims.contains(&0) {
            return Err(ServeError::BadRequest {
                reason: format!("invalid sample dims {sample_dims:?}"),
            });
        }
        let sample_len: usize = sample_dims.iter().product();
        let (plan, freeze_reason) = if freeze {
            match net.freeze(sample_dims, lane) {
                Ok(plan) => (Some(Arc::new(plan)), None),
                Err(e) => (None, Some(Arc::<str>::from(e.to_string().as_str()))),
            }
        } else {
            (None, Some(Arc::<str>::from("freezing disabled by request")))
        };
        if let Some(plan) = plan {
            // Frozen path: the plan holds the compiled weights, so the
            // layer-side lane is left unarmed (no double residency). A
            // zero-sample probe validates the compiled program end to end.
            let mut probe_out = vec![0.0f32; plan.output_len()];
            plan.execute(
                &vec![0.0f32; sample_len],
                1,
                &mut Vec::new(),
                &mut probe_out,
            )?;
            return Ok(InferenceSession {
                net: Arc::new(net),
                num_outputs: plan.output_len(),
                lane: plan.lane(),
                plan: Some(plan),
                freeze_reason: None,
                arena: Arc::new(ScratchArena::default()),
                sample_dims: sample_dims.to_vec(),
                sample_len,
            });
        }
        let achieved = net.prepare_inference(lane)?;
        let mut probe_dims = vec![1];
        probe_dims.extend_from_slice(sample_dims);
        let probe = net.forward_inference(&Tensor::zeros(&probe_dims))?;
        let num_outputs = probe.len();
        Ok(InferenceSession {
            net: Arc::new(net),
            plan: None,
            freeze_reason,
            arena: Arc::new(ScratchArena::default()),
            sample_dims: sample_dims.to_vec(),
            sample_len,
            num_outputs,
            lane: achieved,
        })
    }

    /// The frozen network.
    pub fn network(&self) -> &Arc<Network> {
        &self.net
    }

    /// Whether this session serves from a compiled [`FrozenPlan`] (as
    /// opposed to layer-by-layer replay).
    pub fn is_frozen(&self) -> bool {
        self.plan.is_some()
    }

    /// Why freezing fell back to layer replay, when it did. `None` on the
    /// frozen path.
    pub fn freeze_reason(&self) -> Option<&str> {
        self.freeze_reason.as_deref()
    }

    /// The compile report of the frozen plan, when one was compiled.
    pub fn plan_report(&self) -> Option<&PlanReport> {
        self.plan.as_deref().map(FrozenPlan::report)
    }

    /// Bytes this session keeps resident for serving: the parameter
    /// stores plus whatever the compiled plan (or the per-layer lane
    /// cache, on the fallback path) holds. This is the figure registry
    /// budgets must count.
    pub fn resident_bytes(&self) -> u64 {
        self.net.resident_bytes() + self.plan.as_deref().map_or(0, FrozenPlan::resident_bytes)
    }

    /// The kernel lane the session actually achieved at load time (the
    /// weakest lane across its weight-bearing layers).
    pub fn lane(&self) -> KernelLane {
        self.lane
    }

    /// Shape of one input sample (no batch axis).
    pub fn sample_dims(&self) -> &[usize] {
        &self.sample_dims
    }

    /// Scalar count of one input sample.
    pub fn sample_len(&self) -> usize {
        self.sample_len
    }

    /// Scalar count of one output row (e.g. class logits).
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// The session's staging-buffer arena.
    pub fn arena(&self) -> &ScratchArena {
        &self.arena
    }

    /// Runs a pre-shaped batch `[n, sample_dims…]` through the frozen
    /// network.
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    pub fn infer_batch(&self, batch: &Tensor) -> Result<Tensor, ServeError> {
        match &self.plan {
            Some(plan) => Ok(plan.infer(batch)?),
            None => Ok(self.net.forward_inference(batch)?),
        }
    }

    /// Zero-allocation inference into a caller-provided output buffer:
    /// `input` is `n` concatenated flat samples, `output` must hold
    /// `n * num_outputs` floats. Steady state performs **no heap
    /// allocation** — the plan's scratch arena is recycled through the
    /// session arena and every intermediate lives at a precomputed offset.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Internal`] when the session is not frozen
    /// (the replay path cannot honour the no-allocation contract), and
    /// [`ServeError::BadRequest`] on geometry mismatches.
    pub fn infer_into(
        &self,
        input: &[f32],
        n: usize,
        output: &mut [f32],
    ) -> Result<(), ServeError> {
        let plan = self.plan.as_ref().ok_or_else(|| ServeError::Internal {
            reason: "infer_into requires a frozen session".into(),
        })?;
        if input.len() != n * self.sample_len {
            return Err(ServeError::BadRequest {
                reason: format!(
                    "expected {} input floats for {n} samples, got {}",
                    n * self.sample_len,
                    input.len()
                ),
            });
        }
        if output.len() != n * self.num_outputs {
            return Err(ServeError::BadRequest {
                reason: format!(
                    "expected {} output floats for {n} samples, got {}",
                    n * self.num_outputs,
                    output.len()
                ),
            });
        }
        let mut scratch = self.arena.take(plan.arena_floats_per_sample() * n);
        plan.execute(input, n, &mut scratch, output)?;
        self.arena.put(scratch);
        Ok(())
    }

    /// Runs a set of flat samples as one coalesced batch and returns one
    /// output row per sample. This is the micro-batcher's execution path:
    /// samples are staged into an arena buffer, run once, and the staging
    /// buffer is recycled.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadRequest`] if any sample has the wrong
    /// length, and propagates forward-pass errors.
    pub fn infer_samples(&self, samples: &[Vec<f32>]) -> Result<Vec<Vec<f32>>, ServeError> {
        let n = samples.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        for (i, s) in samples.iter().enumerate() {
            if s.len() != self.sample_len {
                return Err(ServeError::BadRequest {
                    reason: format!(
                        "sample {i}: expected {} values, got {}",
                        self.sample_len,
                        s.len()
                    ),
                });
            }
        }
        let mut staging = self.arena.take(n * self.sample_len);
        for s in samples {
            staging.extend_from_slice(s);
        }
        if self.plan.is_some() {
            // Frozen path: run straight out of the staging buffer into a
            // recycled output buffer — no tensor wrapping, no per-request
            // intermediate allocation.
            let mut out = self.arena.take(n * self.num_outputs);
            out.resize(n * self.num_outputs, 0.0);
            self.infer_into(&staging, n, &mut out)?;
            let rows = out.chunks(self.num_outputs).map(<[f32]>::to_vec).collect();
            self.arena.put(staging);
            self.arena.put(out);
            return Ok(rows);
        }
        let mut dims = vec![n];
        dims.extend_from_slice(&self.sample_dims);
        let batch = Tensor::from_vec(staging, &dims).map_err(apt_nn::NnError::from)?;
        let out = self.net.forward_inference(&batch)?;
        self.arena.put(batch.into_vec());
        let rows = (0..n)
            .map(|i| out.row(i).map(<[f32]>::to_vec))
            .collect::<Result<Vec<_>, _>>()
            .map_err(apt_nn::NnError::from)?;
        Ok(rows)
    }

    /// Convenience single-sample inference (a batch of one).
    ///
    /// # Errors
    ///
    /// Same contract as [`infer_samples`](Self::infer_samples).
    pub fn infer_one(&self, sample: &[f32]) -> Result<Vec<f32>, ServeError> {
        let mut rows = self.infer_samples(std::slice::from_ref(&sample.to_vec()))?;
        rows.pop().ok_or(ServeError::Internal {
            reason: "batch of one produced no rows".into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apt_nn::Mode;

    fn mlp_session() -> InferenceSession {
        let spec = ModelSpec {
            arch: ModelArch::Mlp(vec![6, 10, 4]),
            classes: 4,
            img_size: 0,
            width_mult: 1.0,
        };
        let mut net = spec.build().unwrap();
        let blob = checkpoint::save_full(&mut net);
        InferenceSession::from_checkpoint(&spec, &blob).unwrap()
    }

    #[test]
    fn arch_parsing() {
        assert_eq!(
            "cifarnet".parse::<ModelArch>().unwrap(),
            ModelArch::Cifarnet
        );
        assert_eq!(
            "mlp:784-128-10".parse::<ModelArch>().unwrap(),
            ModelArch::Mlp(vec![784, 128, 10])
        );
        assert!("mlp:784".parse::<ModelArch>().is_err());
        assert!("mlp:a-b".parse::<ModelArch>().is_err());
        assert!("alexnet".parse::<ModelArch>().is_err());
        for name in ["vgg_small", "resnet20", "resnet110", "mobilenet_v2"] {
            assert!(name.parse::<ModelArch>().is_ok(), "{name}");
        }
    }

    #[test]
    fn session_probe_and_shapes() {
        let s = mlp_session();
        assert_eq!(s.sample_dims(), &[6]);
        assert_eq!(s.sample_len(), 6);
        assert_eq!(s.num_outputs(), 4);
    }

    #[test]
    fn session_matches_eval_forward() {
        let spec = ModelSpec {
            arch: ModelArch::Mlp(vec![6, 10, 4]),
            classes: 4,
            img_size: 0,
            width_mult: 1.0,
        };
        let mut net = spec.build().unwrap();
        let blob = checkpoint::save_full(&mut net);
        let session = InferenceSession::from_checkpoint(&spec, &blob).unwrap();
        let x = apt_tensor::rng::normal(&[3, 6], 1.0, &mut rng::seeded(7));
        let want = net.forward(&x, Mode::Eval).unwrap();
        let got = session.infer_batch(&x).unwrap();
        assert_eq!(want.data(), got.data());
    }

    #[test]
    fn infer_samples_splits_rows() {
        let s = mlp_session();
        let a = vec![0.5; 6];
        let b = vec![-0.25; 6];
        let rows = s.infer_samples(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].len(), 4);
        assert_eq!(rows[0], s.infer_one(&a).unwrap());
        assert_eq!(rows[1], s.infer_one(&b).unwrap());
    }

    #[test]
    fn arena_recycles_staging() {
        let s = mlp_session();
        let _ = s.infer_one(&vec![1.0; 6]).unwrap();
        assert!(s.arena().parked() >= 1, "staging buffer should be recycled");
        let before = s.arena().parked();
        let _ = s.infer_one(&vec![1.0; 6]).unwrap();
        assert_eq!(s.arena().parked(), before, "steady state reuses buffers");
    }

    #[test]
    fn wrong_sample_length_is_bad_request() {
        let s = mlp_session();
        assert!(matches!(
            s.infer_one(&[1.0, 2.0]),
            Err(ServeError::BadRequest { .. })
        ));
        assert!(s.infer_samples(&[]).unwrap().is_empty());
    }

    #[test]
    fn concurrent_inference_through_arc() {
        let s = mlp_session();
        let base = s.infer_one(&vec![0.1; 6]).unwrap();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = s.clone();
            let base = base.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..25 {
                    assert_eq!(s.infer_one(&vec![0.1; 6]).unwrap(), base);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn invalid_sample_dims_rejected() {
        let spec = ModelSpec {
            arch: ModelArch::Mlp(vec![4, 2]),
            classes: 2,
            img_size: 0,
            width_mult: 1.0,
        };
        let net = spec.build().unwrap();
        assert!(InferenceSession::from_network(net, &[]).is_err());
        let net2 = spec.build().unwrap();
        assert!(InferenceSession::from_network(net2, &[0]).is_err());
        // probe catches arch/sample mismatch up front
        let net3 = spec.build().unwrap();
        assert!(InferenceSession::from_network(net3, &[5]).is_err());
    }
}
