//! Lock-free serving metrics: request counters, a log₂-bucketed latency
//! histogram (p50/p90/p99), and the batch-size distribution.
//!
//! Everything is plain atomics so the hot path (batcher worker, connection
//! threads) records without locks, and any thread can snapshot at any time.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log₂ latency buckets: bucket `i` holds `[2^(i-1), 2^i)` µs
/// (bucket 0 is `< 1` µs), so 40 buckets cover up to ~9 minutes.
const LAT_BUCKETS: usize = 40;

/// Batch sizes `1..=BATCH_BUCKETS-1` recorded exactly; larger clamp into
/// the last bucket.
const BATCH_BUCKETS: usize = 65;

/// Shared, lock-free serving counters. One instance per runtime; handles
/// clone the `Arc` around it.
#[derive(Debug)]
pub struct ServeStats {
    completed: AtomicU64,
    shed: AtomicU64,
    errors: AtomicU64,
    batches: AtomicU64,
    refused_accept: AtomicU64,
    deadline_expired: AtomicU64,
    idle_reaped: AtomicU64,
    slow_reaped: AtomicU64,
    open_conns: AtomicU64,
    swaps: AtomicU64,
    evictions: AtomicU64,
    quarantines: AtomicU64,
    model_unavailable: AtomicU64,
    models_resident: AtomicU64,
    resident_bytes: AtomicU64,
    plans_frozen: AtomicU64,
    freeze_fallbacks: AtomicU64,
    lat: [AtomicU64; LAT_BUCKETS],
    batch_sizes: [AtomicU64; BATCH_BUCKETS],
}

impl Default for ServeStats {
    fn default() -> Self {
        ServeStats {
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            refused_accept: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            idle_reaped: AtomicU64::new(0),
            slow_reaped: AtomicU64::new(0),
            open_conns: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            quarantines: AtomicU64::new(0),
            model_unavailable: AtomicU64::new(0),
            models_resident: AtomicU64::new(0),
            resident_bytes: AtomicU64::new(0),
            plans_frozen: AtomicU64::new(0),
            freeze_fallbacks: AtomicU64::new(0),
            lat: std::array::from_fn(|_| AtomicU64::new(0)),
            batch_sizes: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Index of the log₂ bucket for a microsecond latency.
fn lat_bucket(us: u64) -> usize {
    if us == 0 {
        0
    } else {
        ((64 - us.leading_zeros()) as usize).min(LAT_BUCKETS - 1)
    }
}

/// Upper bound (µs) of a latency bucket — what the percentile estimator
/// reports, making it a conservative (never understated) figure.
fn bucket_upper_us(bucket: usize) -> u64 {
    1u64 << bucket
}

impl ServeStats {
    /// Records one successfully answered request and its end-to-end
    /// latency (enqueue → response ready).
    pub fn record_completed(&self, latency_us: u64) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.lat[lat_bucket(latency_us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request shed by admission control.
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request that failed inside the runtime.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one connection refused at accept time (connection limit).
    pub fn record_refused_accept(&self) {
        self.refused_accept.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request whose deadline expired in the queue; the work
    /// was shed before inference ran.
    pub fn record_deadline_expired(&self) {
        self.deadline_expired.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one connection reaped for sitting idle past its deadline.
    pub fn record_idle_reaped(&self) {
        self.idle_reaped.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one connection reaped for stalling mid-frame or mid-write
    /// (slowloris defence).
    pub fn record_slow_reaped(&self) {
        self.slow_reaped.fetch_add(1, Ordering::Relaxed);
    }

    /// Adjusts the open-connection gauge at accept (+1) / close (−1).
    pub fn record_conn_open(&self) {
        self.open_conns.fetch_add(1, Ordering::Relaxed);
    }

    /// See [`record_conn_open`](Self::record_conn_open).
    pub fn record_conn_close(&self) {
        self.open_conns.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records one hot-swap: a publish that **replaced** an existing entry
    /// for the same model id (first publishes are not swaps).
    pub fn record_swap(&self) {
        self.swaps.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one cold model evicted under the resident-bytes budget.
    pub fn record_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one checkpoint file rejected at ingestion and moved to the
    /// quarantine directory.
    pub fn record_quarantine(&self) {
        self.quarantines.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request answered `ModelUnavailable` (unknown id or
    /// evicted model).
    pub fn record_model_unavailable(&self) {
        self.model_unavailable.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one session served from a compiled frozen plan.
    pub fn record_plan_frozen(&self) {
        self.plans_frozen.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one session that fell back to layer-by-layer replay
    /// because its network could not be frozen (or freezing was disabled).
    pub fn record_freeze_fallback(&self) {
        self.freeze_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Sets the fleet gauges: models currently resident and their summed
    /// resident bytes. Called by the registry after every mutation.
    pub fn set_fleet(&self, models: u64, bytes: u64) {
        self.models_resident.store(models, Ordering::Relaxed);
        self.resident_bytes.store(bytes, Ordering::Relaxed);
    }

    /// Records one executed batch and its coalesced size.
    pub fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_sizes[size.min(BATCH_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot for reporting. Counters are read
    /// relaxed; exactness across concurrent updates is not required for
    /// monitoring output.
    pub fn snapshot(&self) -> StatsSnapshot {
        let lat: Vec<u64> = self.lat.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = lat.iter().sum();
        let pct = |q: f64| -> u64 {
            if total == 0 {
                return 0;
            }
            let target = (q * total as f64).ceil() as u64;
            let mut cum = 0;
            for (i, &n) in lat.iter().enumerate() {
                cum += n;
                if cum >= target {
                    return bucket_upper_us(i);
                }
            }
            bucket_upper_us(LAT_BUCKETS - 1)
        };
        let batch_hist: Vec<(usize, u64)> = self
            .batch_sizes
            .iter()
            .enumerate()
            .filter_map(|(size, n)| {
                let n = n.load(Ordering::Relaxed);
                (n > 0).then_some((size, n))
            })
            .collect();
        let batches = self.batches.load(Ordering::Relaxed);
        let weighted: u64 = batch_hist.iter().map(|&(s, n)| s as u64 * n).sum();
        StatsSnapshot {
            completed: self.completed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            batches,
            refused_accept: self.refused_accept.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            idle_reaped: self.idle_reaped.load(Ordering::Relaxed),
            slow_reaped: self.slow_reaped.load(Ordering::Relaxed),
            open_conns: self.open_conns.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            quarantines: self.quarantines.load(Ordering::Relaxed),
            model_unavailable: self.model_unavailable.load(Ordering::Relaxed),
            models_resident: self.models_resident.load(Ordering::Relaxed),
            resident_bytes: self.resident_bytes.load(Ordering::Relaxed),
            plans_frozen: self.plans_frozen.load(Ordering::Relaxed),
            freeze_fallbacks: self.freeze_fallbacks.load(Ordering::Relaxed),
            p50_us: pct(0.50),
            p90_us: pct(0.90),
            p99_us: pct(0.99),
            mean_batch: if batches == 0 {
                0.0
            } else {
                weighted as f64 / batches as f64
            },
            batch_hist,
        }
    }
}

/// A point-in-time copy of the serving counters, with percentiles already
/// estimated from the histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests shed by admission control (`Overloaded`).
    pub shed: u64,
    /// Requests that failed inside the runtime.
    pub errors: u64,
    /// Batches executed.
    pub batches: u64,
    /// Connections refused at accept time by the connection limit.
    pub refused_accept: u64,
    /// Requests whose deadline expired in the queue (shed pre-inference).
    pub deadline_expired: u64,
    /// Connections reaped for exceeding the idle deadline.
    pub idle_reaped: u64,
    /// Connections reaped for stalling mid-frame or mid-write (slowloris).
    pub slow_reaped: u64,
    /// Connections currently open (gauge, not a counter).
    pub open_conns: u64,
    /// Publishes that replaced an already-registered model (hot-swaps).
    pub swaps: u64,
    /// Cold models evicted under the resident-bytes budget.
    pub evictions: u64,
    /// Checkpoint files rejected at ingestion and quarantined.
    pub quarantines: u64,
    /// Requests answered `ModelUnavailable` (unknown or evicted model).
    pub model_unavailable: u64,
    /// Models currently resident in the registry (gauge).
    pub models_resident: u64,
    /// Summed resident bytes of every resident model (gauge).
    pub resident_bytes: u64,
    /// Sessions loaded onto the compiled frozen-plan path.
    pub plans_frozen: u64,
    /// Sessions that fell back to layer-by-layer replay at load.
    pub freeze_fallbacks: u64,
    /// Median end-to-end latency, µs (log₂-bucket upper bound).
    pub p50_us: u64,
    /// 90th-percentile latency, µs.
    pub p90_us: u64,
    /// 99th-percentile latency, µs.
    pub p99_us: u64,
    /// Mean coalesced batch size.
    pub mean_batch: f64,
    /// `(batch size, count)` pairs for every batch size observed.
    pub batch_hist: Vec<(usize, u64)>,
}

impl StatsSnapshot {
    /// Renders the snapshot as a self-contained JSON object (hand-rolled;
    /// the workspace has no serde).
    pub fn to_json(&self) -> String {
        let hist: Vec<String> = self
            .batch_hist
            .iter()
            .map(|&(s, n)| format!("{{\"size\":{s},\"count\":{n}}}"))
            .collect();
        format!(
            "{{\"completed\":{},\"shed\":{},\"errors\":{},\"batches\":{},\
             \"refused_accept\":{},\"deadline_expired\":{},\"idle_reaped\":{},\
             \"slow_reaped\":{},\"open_conns\":{},\
             \"swaps\":{},\"evictions\":{},\"quarantines\":{},\
             \"model_unavailable\":{},\"models_resident\":{},\
             \"resident_bytes\":{},\
             \"plans_frozen\":{},\"freeze_fallbacks\":{},\
             \"p50_us\":{},\"p90_us\":{},\"p99_us\":{},\"mean_batch\":{:.3},\
             \"batch_hist\":[{}]}}",
            self.completed,
            self.shed,
            self.errors,
            self.batches,
            self.refused_accept,
            self.deadline_expired,
            self.idle_reaped,
            self.slow_reaped,
            self.open_conns,
            self.swaps,
            self.evictions,
            self.quarantines,
            self.model_unavailable,
            self.models_resident,
            self.resident_bytes,
            self.plans_frozen,
            self.freeze_fallbacks,
            self.p50_us,
            self.p90_us,
            self.p99_us,
            self.mean_batch,
            hist.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone() {
        assert_eq!(lat_bucket(0), 0);
        assert_eq!(lat_bucket(1), 1);
        assert_eq!(lat_bucket(2), 2);
        assert_eq!(lat_bucket(1023), 10);
        assert_eq!(lat_bucket(1024), 11);
        assert_eq!(lat_bucket(u64::MAX), LAT_BUCKETS - 1);
        for us in [1u64, 5, 100, 4096] {
            assert!(us <= bucket_upper_us(lat_bucket(us)));
        }
    }

    #[test]
    fn percentiles_track_distribution() {
        let s = ServeStats::default();
        // 90 fast requests (~8 µs) and 10 slow ones (~4096 µs).
        for _ in 0..90 {
            s.record_completed(8);
        }
        for _ in 0..10 {
            s.record_completed(4000);
        }
        let snap = s.snapshot();
        assert_eq!(snap.completed, 100);
        assert!(snap.p50_us <= 16, "p50={}", snap.p50_us);
        assert!(snap.p99_us >= 2048, "p99={}", snap.p99_us);
        assert!(snap.p50_us <= snap.p90_us && snap.p90_us <= snap.p99_us);
    }

    #[test]
    fn batch_histogram_and_mean() {
        let s = ServeStats::default();
        s.record_batch(1);
        s.record_batch(1);
        s.record_batch(8);
        s.record_batch(1000); // clamps into the last bucket
        let snap = s.snapshot();
        assert_eq!(snap.batches, 4);
        assert!(snap.batch_hist.contains(&(1, 2)));
        assert!(snap.batch_hist.contains(&(8, 1)));
        assert!(snap.batch_hist.contains(&(64, 1)));
        assert!(snap.mean_batch > 1.0);
    }

    #[test]
    fn failure_taxonomy_counts_exactly() {
        let s = ServeStats::default();
        s.record_refused_accept();
        s.record_refused_accept();
        s.record_deadline_expired();
        s.record_idle_reaped();
        s.record_slow_reaped();
        s.record_conn_open();
        s.record_conn_open();
        s.record_conn_close();
        let snap = s.snapshot();
        assert_eq!(snap.refused_accept, 2);
        assert_eq!(snap.deadline_expired, 1);
        assert_eq!(snap.idle_reaped, 1);
        assert_eq!(snap.slow_reaped, 1);
        assert_eq!(snap.open_conns, 1);
        let j = snap.to_json();
        for key in [
            "refused_accept",
            "deadline_expired",
            "idle_reaped",
            "slow_reaped",
            "open_conns",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }

    #[test]
    fn fleet_counters_and_gauges() {
        let s = ServeStats::default();
        s.record_swap();
        s.record_swap();
        s.record_eviction();
        s.record_quarantine();
        s.record_quarantine();
        s.record_quarantine();
        s.record_model_unavailable();
        s.set_fleet(4, 12_345);
        let snap = s.snapshot();
        assert_eq!(snap.swaps, 2);
        assert_eq!(snap.evictions, 1);
        assert_eq!(snap.quarantines, 3);
        assert_eq!(snap.model_unavailable, 1);
        assert_eq!(snap.models_resident, 4);
        assert_eq!(snap.resident_bytes, 12_345);
        // Gauges are set, not accumulated.
        s.set_fleet(2, 99);
        let snap = s.snapshot();
        assert_eq!(snap.models_resident, 2);
        assert_eq!(snap.resident_bytes, 99);
        let j = snap.to_json();
        for key in [
            "\"swaps\":2",
            "\"evictions\":1",
            "\"quarantines\":3",
            "\"model_unavailable\":1",
            "\"models_resident\":2",
            "\"resident_bytes\":99",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }

    #[test]
    fn freeze_gauges_count_and_serialize() {
        let s = ServeStats::default();
        s.record_plan_frozen();
        s.record_plan_frozen();
        s.record_freeze_fallback();
        let snap = s.snapshot();
        assert_eq!(snap.plans_frozen, 2);
        assert_eq!(snap.freeze_fallbacks, 1);
        let j = snap.to_json();
        assert!(j.contains("\"plans_frozen\":2"), "{j}");
        assert!(j.contains("\"freeze_fallbacks\":1"), "{j}");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let s = ServeStats::default();
        s.record_completed(10);
        s.record_shed();
        s.record_error();
        s.record_batch(2);
        let j = s.snapshot().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        for key in [
            "completed",
            "shed",
            "errors",
            "batches",
            "p50_us",
            "p99_us",
            "batch_hist",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let snap = ServeStats::default().snapshot();
        assert_eq!(snap.completed, 0);
        assert_eq!(snap.p99_us, 0);
        assert_eq!(snap.mean_batch, 0.0);
        assert!(snap.batch_hist.is_empty());
    }
}
