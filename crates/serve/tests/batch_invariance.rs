//! Property test for the batching contract the micro-batcher relies on:
//! however a set of requests is coalesced into batches, every sample's
//! output is bit-for-bit what it would be alone. This is what makes
//! dynamic micro-batching lossless rather than approximately-right.

use apt_nn::checkpoint;
use apt_serve::{InferenceSession, ModelArch, ModelSpec};
use proptest::prelude::*;

const IN_DIM: usize = 7;

fn session() -> InferenceSession {
    let spec = ModelSpec {
        arch: ModelArch::Mlp(vec![IN_DIM, 16, 5]),
        classes: 5,
        img_size: 0,
        width_mult: 1.0,
    };
    let mut net = spec.build().unwrap();
    let blob = checkpoint::save_full(&mut net);
    InferenceSession::from_checkpoint(&spec, &blob).unwrap()
}

fn sample(seed: u64, i: usize) -> Vec<f32> {
    (0..IN_DIM)
        .map(|j| {
            let h = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(((i * IN_DIM + j) as u64).wrapping_mul(1442695040888963407));
            ((h >> 33) % 4096) as f32 / 1024.0 - 2.0
        })
        .collect()
}

fn bits(rows: &[Vec<f32>]) -> Vec<u32> {
    rows.iter().flatten().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // `cuts` is a bitmask: bit i set means "start a new batch before
    // sample i", so the cases sweep every coalescing the batcher could
    // produce — one big batch, all singles, and everything between.
    #[test]
    fn any_batch_split_is_bit_identical(
        n in 1usize..12,
        seed in 0u64..256,
        cuts in 0u64..2048,
    ) {
        let s = session();
        let samples: Vec<Vec<f32>> = (0..n).map(|i| sample(seed, i)).collect();

        // Reference: every sample alone.
        let mut solo = Vec::new();
        for x in &samples {
            solo.push(s.infer_one(x).unwrap());
        }

        // One maximal batch.
        let whole = s.infer_samples(&samples).unwrap();
        prop_assert_eq!(bits(&whole), bits(&solo));

        // The arbitrary split.
        let mut split = Vec::new();
        let mut start = 0;
        for i in 1..=n {
            if i == n || cuts & (1 << i) != 0 {
                split.extend(s.infer_samples(&samples[start..i]).unwrap());
                start = i;
            }
        }
        prop_assert_eq!(bits(&split), bits(&solo));
    }
}
