//! Differential proof that the serving path is the training eval path:
//! an [`InferenceSession`] loaded from a checkpoint must reproduce the
//! trainer's own `forward(Mode::Eval)` on the network that wrote the
//! checkpoint — across every checkpoint version the loader accepts (v1
//! unframed, v2 byte-granular, v3 packed+CRC) and both code-store backends
//! (legacy one-`i64`-per-code and tiered physical).
//!
//! Two grades of agreement, matching the two serving paths:
//!
//! * the **replay** path (freezing disabled) is **bit-identical** — it
//!   runs the same layer kernels as the trainer's eval forward;
//! * the default **frozen** path folds BatchNorm into conv weights at
//!   compile time, which reassociates per-channel float multiplies, so
//!   its logits agree within a small relative tolerance.
//!
//! The backend is selected through the process-global override, so this
//! file holds a single serial `#[test]`.

use apt_core::{PolicyConfig, TrainConfig, Trainer};
use apt_data::{SynthCifar, SynthCifarConfig};
use apt_nn::{checkpoint, Mode, Network};
use apt_optim::LrSchedule;
use apt_quant::{set_store_backend, StoreBackend};
use apt_serve::{InferenceSession, ModelArch, ModelSpec};
use apt_tensor::Tensor;

fn spec() -> ModelSpec {
    ModelSpec {
        arch: ModelArch::Cifarnet,
        classes: 3,
        img_size: 8,
        width_mult: 0.25,
    }
}

/// A short real training run (APT policy on, batch norm collecting running
/// stats) so the checkpoint carries non-trivial quantisers and BN state.
fn trained_network() -> Network {
    let data = SynthCifar::generate(&SynthCifarConfig {
        num_classes: 3,
        train_per_class: 16,
        test_per_class: 6,
        img_size: 8,
        seed: 7,
        ..Default::default()
    })
    .unwrap();
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 16,
        schedule: LrSchedule::Constant(0.05),
        interval: 1,
        policy: Some(PolicyConfig::default()),
        ..Default::default()
    };
    let net = spec().build().unwrap();
    let mut t = Trainer::new(net, cfg).unwrap();
    t.train(&data.train, &data.test).unwrap();
    // Steal the trained network back out of the trainer via a checkpoint
    // round trip (Trainer keeps ownership of its Network).
    let blob = checkpoint::save_full(t.network_mut());
    let mut fresh = spec().build().unwrap();
    checkpoint::load(&mut fresh, &blob).unwrap();
    fresh
}

fn eval_logits(net: &mut Network, batch: &Tensor) -> Vec<u32> {
    net.forward(batch, Mode::Eval)
        .unwrap()
        .data()
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

#[test]
fn session_matches_trainer_eval_across_versions_and_backends() {
    let samples: Vec<Vec<f32>> = (0..4)
        .map(|i| {
            (0..3 * 8 * 8)
                .map(|j| ((i * 97 + j * 13) % 29) as f32 * 0.07 - 1.0)
                .collect()
        })
        .collect();
    let flat: Vec<f32> = samples.iter().flatten().copied().collect();
    let batch = Tensor::from_vec(flat, &[4, 3, 8, 8]).unwrap();

    for backend in [StoreBackend::I64, StoreBackend::Tiered] {
        set_store_backend(backend);
        let mut net = trained_network();
        let want = eval_logits(&mut net, &batch);

        for version in [1u16, 2, 3] {
            let blob = checkpoint::save_full_as(&mut net, version).unwrap();
            // Replay path: bit-identical to the trainer's eval forward.
            let replay = InferenceSession::from_checkpoint_with_options(
                &spec(),
                &blob,
                apt_nn::KernelLane::default(),
                false,
            )
            .unwrap();
            assert!(!replay.is_frozen());
            let rows = replay.infer_samples(&samples).unwrap();
            let got: Vec<u32> = rows.iter().flatten().map(|v| v.to_bits()).collect();
            assert_eq!(
                got, want,
                "replay serving logits diverged from trainer eval \
                 (checkpoint v{version}, backend {backend:?})"
            );
            // Frozen path: BN folding drifts only by float reassociation.
            let frozen = InferenceSession::from_checkpoint(&spec(), &blob).unwrap();
            assert!(frozen.is_frozen(), "{:?}", frozen.freeze_reason());
            let frows = frozen.infer_samples(&samples).unwrap();
            for (row, frow) in rows.iter().zip(&frows) {
                let scale = row.iter().fold(1.0f32, |m, v| m.max(v.abs()));
                for (&e, &g) in row.iter().zip(frow) {
                    assert!(
                        (e - g).abs() <= 1e-4 * scale,
                        "frozen logits drifted past tolerance: {e} vs {g} \
                         (checkpoint v{version}, backend {backend:?})"
                    );
                }
            }
        }
    }
    set_store_backend(StoreBackend::Tiered);
}
