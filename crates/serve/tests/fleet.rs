//! Multi-tenant fleet behaviour over the wire: named-model routing,
//! directory reloads through `OP_RELOAD`, and memory-pressure degradation
//! (budgeted eviction answering typed `STATUS_MODEL_UNAVAILABLE`, never
//! aborting).

use apt_nn::checkpoint;
use apt_serve::{
    BatchPolicy, ModelArch, ModelRegistry, ModelSpec, RegistryConfig, ServeClient, ServeError,
    Server, ServerConfig,
};
use std::path::PathBuf;
use std::sync::Arc;

const DIMS: [usize; 3] = [5, 9, 3];

fn spec() -> ModelSpec {
    ModelSpec {
        arch: ModelArch::Mlp(DIMS.to_vec()),
        classes: DIMS[2],
        img_size: 0,
        width_mult: 1.0,
    }
}

fn blob(seed: u64) -> Vec<u8> {
    let mut net = apt_nn::models::mlp(
        "mlp",
        &DIMS,
        &apt_nn::QuantScheme::paper_apt(),
        &mut apt_tensor::rng::seeded(seed),
    )
    .unwrap();
    checkpoint::save_full(&mut net)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("apt-fleet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start_fleet(registry: Arc<ModelRegistry>, default: &str) -> Server {
    Server::start_with_registry(
        registry,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            policy: BatchPolicy::default(),
            model_name: default.to_string(),
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

/// `OP_RELOAD` ingests new checkpoint files, quarantines corrupt ones,
/// and the new model serves immediately — all without restarting or
/// disturbing the models already resident.
#[test]
fn reload_over_tcp_ingests_and_quarantines() {
    let dir = temp_dir("reload");
    std::fs::write(dir.join("alpha.aptc"), blob(1)).unwrap();

    let registry = Arc::new(ModelRegistry::new(RegistryConfig {
        model_dir: Some(dir.clone()),
        spec: Some(spec()),
        ..RegistryConfig::default()
    }));
    let report = registry.rescan().unwrap();
    assert_eq!(report.ingested, vec!["alpha".to_string()]);
    let server = start_fleet(Arc::clone(&registry), "alpha");
    let mut client = ServeClient::connect(server.addr()).unwrap();
    let sample: Vec<f32> = (0..DIMS[0]).map(|j| j as f32 * 0.2 - 0.5).collect();
    let before = client.infer(&sample).unwrap();

    // Drop in one good and one corrupt checkpoint, then reload in-band.
    std::fs::write(dir.join("beta.aptc"), blob(2)).unwrap();
    let mut bad = blob(3);
    let mid = bad.len() / 2;
    bad[mid] ^= 0x10;
    std::fs::write(dir.join("broken.aptc"), &bad).unwrap();

    let report = client.reload().unwrap();
    assert!(report.contains("\"beta\""), "report: {report}");
    assert!(report.contains("broken.aptc"), "report: {report}");

    // The new model serves; the corrupt one was quarantined with a
    // reason sidecar; the old model is untouched bit-for-bit.
    assert!(client.infer_model("beta", &sample).is_ok());
    assert!(matches!(
        client.infer_model("broken", &sample),
        Err(ServeError::ModelUnavailable { .. })
    ));
    let qdir = dir.join("quarantine");
    assert!(qdir.join("broken.aptc").exists());
    assert!(qdir.join("broken.aptc.reason").exists());
    assert!(!dir.join("broken.aptc").exists());
    let after = client.infer(&sample).unwrap();
    assert_eq!(
        before.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        after.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );
    let stats = client.stats_json().unwrap();
    assert!(stats.contains("\"quarantines\":1"), "stats: {stats}");
    assert!(stats.contains("\"models_resident\":2"), "stats: {stats}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Under a tight resident-bytes budget the fleet degrades by evicting
/// cold models — evicted ids answer typed `ModelUnavailable` on the wire
/// while hot models keep serving bit-exactly.
#[test]
fn budget_eviction_degrades_typed_over_tcp() {
    // Measure one plan's residency, then budget for roughly two.
    let probe = ModelRegistry::new(RegistryConfig::default());
    probe.ingest_blob("p", &spec(), &blob(0)).unwrap();
    let one = probe.resident_bytes();

    let registry = Arc::new(ModelRegistry::new(RegistryConfig {
        budget_bytes: one * 2 + one / 2,
        ..RegistryConfig::default()
    }));
    registry.ingest_blob("hot", &spec(), &blob(10)).unwrap();
    registry.ingest_blob("cold", &spec(), &blob(11)).unwrap();
    let server = start_fleet(Arc::clone(&registry), "hot");
    let mut client = ServeClient::connect(server.addr()).unwrap();
    let sample: Vec<f32> = (0..DIMS[0]).map(|j| j as f32 * 0.15 - 0.2).collect();

    let hot_before = client.infer_model("hot", &sample).unwrap();
    // Publishing a third model exceeds the budget; "cold" is the LRU
    // victim ("hot" was just touched).
    let outcome = registry.ingest_blob("third", &spec(), &blob(12)).unwrap();
    assert_eq!(outcome.evicted, vec!["cold".to_string()]);

    match client.infer_model("cold", &sample) {
        Err(ServeError::ModelUnavailable { model, reason }) => {
            assert_eq!(model, "cold");
            assert!(reason.contains("evicted"), "reason: {reason}");
        }
        other => panic!("expected typed eviction, got {other:?}"),
    }
    // Hot and new models serve on; hot is bit-identical to before.
    let hot_after = client.infer_model("hot", &sample).unwrap();
    assert_eq!(
        hot_before.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        hot_after.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );
    assert!(client.infer_model("third", &sample).is_ok());

    let stats = client.stats_json().unwrap();
    assert!(stats.contains("\"evictions\":1"), "stats: {stats}");
    assert!(stats.contains("\"model_unavailable\":1"), "stats: {stats}");
}

/// A plan too large for the whole budget is refused at publish — the
/// fleet is never evicted wholesale to make room, and the server keeps
/// serving.
#[test]
fn oversized_publish_rejected_fleet_survives() {
    let probe = ModelRegistry::new(RegistryConfig::default());
    probe.ingest_blob("p", &spec(), &blob(0)).unwrap();
    let one = probe.resident_bytes();

    let registry = Arc::new(ModelRegistry::new(RegistryConfig {
        budget_bytes: one + one / 4,
        ..RegistryConfig::default()
    }));
    registry.ingest_blob("small", &spec(), &blob(20)).unwrap();

    // A wider model that cannot fit alone.
    let big_spec = ModelSpec {
        arch: ModelArch::Mlp(vec![5, 512, 3]),
        classes: 3,
        img_size: 0,
        width_mult: 1.0,
    };
    let mut big_net = apt_nn::models::mlp(
        "mlp",
        &[5, 512, 3],
        &apt_nn::QuantScheme::paper_apt(),
        &mut apt_tensor::rng::seeded(9),
    )
    .unwrap();
    let big_blob = checkpoint::save_full(&mut big_net);
    match registry.ingest_blob("big", &big_spec, &big_blob) {
        Err(ServeError::ModelUnavailable { model, .. }) => assert_eq!(model, "big"),
        other => panic!("expected budget rejection, got {other:?}"),
    }

    let server = start_fleet(Arc::clone(&registry), "small");
    let mut client = ServeClient::connect(server.addr()).unwrap();
    let sample: Vec<f32> = (0..DIMS[0]).map(|j| j as f32 * 0.1).collect();
    assert!(client.infer_model("small", &sample).is_ok());
    assert_eq!(
        registry.models().len(),
        1,
        "rejected plan must not register"
    );
}
