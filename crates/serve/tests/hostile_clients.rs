//! Hostile-client fault suite for the event-loop front-end: slowloris
//! writers, idle squatters, connection floods, oversized frames, and
//! pipelining — each must degrade into a typed refusal or a reaped
//! connection while healthy clients keep getting bit-exact answers.

use apt_nn::checkpoint;
use apt_serve::protocol::{
    self, OP_INFER, STATUS_BAD_REQUEST, STATUS_OK, STATUS_OVERLOADED, STATUS_SHUTTING_DOWN,
};
use apt_serve::{
    BatchPolicy, ConnLimits, InferenceSession, ModelArch, ModelSpec, ServeClient, ServeError,
    Server, ServerConfig,
};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

const IN_DIM: usize = 5;

fn session() -> InferenceSession {
    let spec = ModelSpec {
        arch: ModelArch::Mlp(vec![IN_DIM, 8, 3]),
        classes: 3,
        img_size: 0,
        width_mult: 1.0,
    };
    let mut net = spec.build().unwrap();
    let blob = checkpoint::save_full(&mut net);
    InferenceSession::from_checkpoint(&spec, &blob).unwrap()
}

fn start(limits: ConnLimits) -> (Server, InferenceSession) {
    let s = session();
    let server = Server::start(
        s.clone(),
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            policy: BatchPolicy::default(),
            model_name: "hostile-test".to_string(),
            limits,
        },
    )
    .unwrap();
    (server, s)
}

/// Reads until EOF or timeout; returns all bytes seen.
fn read_until_eof(stream: &mut TcpStream, budget: Duration) -> Vec<u8> {
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    let mut all = Vec::new();
    let mut buf = [0u8; 1024];
    let t0 = Instant::now();
    while t0.elapsed() < budget {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => all.extend_from_slice(&buf[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(_) => break,
        }
    }
    all
}

#[test]
fn slowloris_is_reaped_while_healthy_client_unaffected() {
    let (mut server, local) = start(ConnLimits {
        read_timeout: Duration::from_millis(150),
        ..ConnLimits::default()
    });
    let addr = server.addr();

    // The attacker: a valid-looking header claiming 1000 bytes, then one
    // byte every 40ms — the frame would take 40 seconds to complete.
    let mut slow = TcpStream::connect(addr).unwrap();
    let mut header = vec![OP_INFER];
    header.extend_from_slice(&1000u32.to_le_bytes());
    slow.write_all(&header).unwrap();

    let t0 = Instant::now();
    let mut reaped_after = None;
    for _ in 0..100 {
        if slow.write_all(&[0]).is_err() {
            reaped_after = Some(t0.elapsed());
            break;
        }
        // A closed peer can also surface as EOF on read.
        slow.set_read_timeout(Some(Duration::from_millis(1)))
            .unwrap();
        let mut b = [0u8; 16];
        if matches!(slow.read(&mut b), Ok(0)) {
            reaped_after = Some(t0.elapsed());
            break;
        }
        std::thread::sleep(Duration::from_millis(40));

        // Healthy traffic keeps flowing the whole time.
        let mut healthy = ServeClient::connect(addr).unwrap();
        let sample = vec![0.25; IN_DIM];
        assert_eq!(
            healthy.infer(&sample).unwrap(),
            local.infer_one(&sample).unwrap(),
            "healthy client corrupted while slowloris in progress"
        );
    }
    let reaped_after = reaped_after.expect("slowloris connection was never reaped");
    assert!(
        reaped_after >= Duration::from_millis(100),
        "reaped too eagerly ({reaped_after:?}) — legitimate slow frames need headroom"
    );
    assert!(
        reaped_after < Duration::from_secs(5),
        "reaped too late ({reaped_after:?})"
    );
    let snap = server.stats();
    assert!(snap.slow_reaped >= 1, "slow_reaped not counted: {snap:?}");
    server.shutdown();
}

#[test]
fn idle_connections_are_reaped_and_counted() {
    let (mut server, _local) = start(ConnLimits {
        idle_timeout: Duration::from_millis(120),
        ..ConnLimits::default()
    });
    let mut idle = TcpStream::connect(server.addr()).unwrap();

    // The peer says nothing at all; within a few sweep periods the server
    // must close it.
    let bytes = read_until_eof(&mut idle, Duration::from_secs(3));
    assert!(bytes.is_empty(), "unexpected data on an idle connection");
    let deadline = Instant::now() + Duration::from_secs(3);
    loop {
        let snap = server.stats();
        if snap.idle_reaped >= 1 {
            assert_eq!(snap.open_conns, 0, "gauge must drop back to zero");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "idle conn never reaped: {snap:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    server.shutdown();
}

#[test]
fn connection_limit_refuses_typed_at_accept() {
    let (mut server, local) = start(ConnLimits {
        max_connections: 2,
        ..ConnLimits::default()
    });
    let addr = server.addr();

    // Two residents, both registered (a round trip proves acceptance).
    let mut a = ServeClient::connect(addr).unwrap();
    let mut b = ServeClient::connect(addr).unwrap();
    a.health().unwrap();
    b.health().unwrap();

    // A third connect is answered with a typed Overloaded frame, then
    // closed. A single connect is racey on a loaded one-core host (the
    // reactor may still be mid-registration and the probe can observe a
    // bare close), so retry until a *typed* refusal is observed or the
    // deadline passes — the claim is that the server refuses with a typed
    // frame, not that any particular probe sees it.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let mut refused = TcpStream::connect(addr).unwrap();
        let bytes = read_until_eof(&mut refused, Duration::from_secs(3));
        if bytes.len() >= 5 && bytes[0] == STATUS_OVERLOADED {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no typed refusal frame before the deadline (last probe got {} bytes)",
            bytes.len()
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let snap = server.stats();
    assert!(snap.refused_accept >= 1, "refusals counted: {snap:?}");
    assert_eq!(snap.open_conns, 2);

    // The residents are unharmed.
    let sample = vec![-0.5; IN_DIM];
    assert_eq!(a.infer(&sample).unwrap(), local.infer_one(&sample).unwrap());

    // Capacity freed by a departing resident is reusable.
    drop(b);
    let deadline = Instant::now() + Duration::from_secs(3);
    let mut c = loop {
        if let Ok(mut c) = ServeClient::connect(addr) {
            if c.health().is_ok() {
                break c;
            }
        }
        assert!(Instant::now() < deadline, "slot never freed");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(c.infer(&sample).is_ok());
    server.shutdown();
}

#[test]
fn oversized_length_prefix_gets_bad_request_then_close() {
    let (mut server, _local) = start(ConnLimits::default());
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    let mut hdr = vec![OP_INFER];
    hdr.extend_from_slice(&u32::MAX.to_le_bytes());
    raw.write_all(&hdr).unwrap();

    let bytes = read_until_eof(&mut raw, Duration::from_secs(3));
    assert!(bytes.len() >= 5, "no error frame before close");
    assert_eq!(bytes[0], STATUS_BAD_REQUEST);
    // After the error frame the server hung up (EOF was reached) — any
    // following write eventually errors.
    let mut dead = false;
    for _ in 0..50 {
        if raw.write_all(&[0u8; 64]).is_err() {
            dead = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(dead, "connection survived a framing violation");
    server.shutdown();
}

#[test]
fn pipelined_requests_answered_in_order() {
    let (mut server, local) = start(ConnLimits::default());
    let mut raw = TcpStream::connect(server.addr()).unwrap();

    // Fire 8 infer frames back-to-back without reading.
    let samples: Vec<Vec<f32>> = (0..8)
        .map(|i| {
            (0..IN_DIM)
                .map(|j| (i * IN_DIM + j) as f32 * 0.13 - 1.0)
                .collect()
        })
        .collect();
    let mut burst = Vec::new();
    for s in &samples {
        protocol::write_frame(&mut burst, OP_INFER, &protocol::encode_f32s(s)).unwrap();
    }
    raw.write_all(&burst).unwrap();

    // Responses come back in request order, each bit-exact.
    for (i, s) in samples.iter().enumerate() {
        let (status, body) = protocol::read_frame(&mut raw).unwrap();
        assert_eq!(status, STATUS_OK, "pipelined request {i} failed");
        let got = protocol::decode_f32s(&body).unwrap();
        let want = local.infer_one(s).unwrap();
        assert_eq!(
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "pipelined request {i} corrupted or misordered"
        );
    }
    server.shutdown();
}

#[test]
fn pipelining_beyond_bound_is_throttled_not_dropped() {
    // max_pipeline 2: the server stops reading while 2 requests are in
    // flight, but every request still gets exactly one in-order answer.
    let (mut server, local) = start(ConnLimits {
        max_pipeline: 2,
        ..ConnLimits::default()
    });
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    let samples: Vec<Vec<f32>> = (0..12)
        .map(|i| vec![i as f32 * 0.07 - 0.4; IN_DIM])
        .collect();
    let mut burst = Vec::new();
    for s in &samples {
        protocol::write_frame(&mut burst, OP_INFER, &protocol::encode_f32s(s)).unwrap();
    }
    raw.write_all(&burst).unwrap();
    for (i, s) in samples.iter().enumerate() {
        let (status, body) = protocol::read_frame(&mut raw).unwrap();
        assert_eq!(status, STATUS_OK, "request {i}");
        assert_eq!(
            protocol::decode_f32s(&body).unwrap(),
            local.infer_one(s).unwrap(),
            "request {i} corrupted under pipeline throttling"
        );
    }
    server.shutdown();
}

#[test]
fn request_deadline_sheds_typed_through_the_wire() {
    // A zero-ish request deadline: everything expires in the queue and
    // must come back as a typed deadline status, never a hang.
    let (mut server, _local) = start(ConnLimits {
        request_timeout: Duration::from_nanos(1),
        ..ConnLimits::default()
    });
    let mut client = ServeClient::connect(server.addr()).unwrap();
    match client.infer(&vec![0.1; IN_DIM]) {
        Err(ServeError::DeadlineExceeded { .. }) => {}
        other => panic!("expected DeadlineExceeded over the wire, got {other:?}"),
    }
    let snap = server.stats();
    assert_eq!(snap.deadline_expired, 1);
    assert_eq!(snap.completed, 0, "expired work must not run");
    server.shutdown();
}

#[test]
fn shutdown_notice_is_typed_on_idle_connections() {
    let (mut server, _local) = start(ConnLimits::default());
    let mut client = ServeClient::connect(server.addr()).unwrap();
    client.health().unwrap();
    server.shutdown();
    // The pushed SHUTTING_DOWN frame (or a closed socket) is what the next
    // round trip sees.
    match client.infer(&vec![0.0; IN_DIM]) {
        Err(ServeError::ShuttingDown) | Err(ServeError::Io(_)) => {}
        other => panic!("expected typed shutdown, got {other:?}"),
    }
    // And the raw bytes really are the typed status, when they made it out.
    let (mut server2, _) = start(ConnLimits::default());
    let mut raw = TcpStream::connect(server2.addr()).unwrap();
    // Ensure registration before shutdown.
    protocol::write_frame(&mut raw, apt_serve::protocol::OP_HEALTH, &[]).unwrap();
    let (status, _) = protocol::read_frame(&mut raw).unwrap();
    assert_eq!(status, STATUS_OK);
    server2.shutdown();
    let bytes = read_until_eof(&mut raw, Duration::from_secs(3));
    if bytes.len() >= 5 {
        assert_eq!(bytes[0], STATUS_SHUTTING_DOWN);
    }
}

#[test]
fn retry_policy_rides_out_overload() {
    // Tiny queue on a slow batch window: bare sends shed; retried sends
    // eventually land.
    let s = session();
    let server = Server::start(
        s.clone(),
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            policy: BatchPolicy {
                max_batch: 1,
                max_delay: Duration::from_micros(1),
                queue_depth: 1,
            },
            model_name: "retry-test".to_string(),
            limits: ConnLimits::default(),
        },
    )
    .unwrap();
    let addr = server.addr();
    let mut threads = Vec::new();
    for t in 0..6 {
        let s = s.clone();
        threads.push(std::thread::spawn(move || {
            let mut client = ServeClient::connect(addr).unwrap();
            let policy = apt_serve::RetryPolicy {
                max_retries: 40,
                base_delay: Duration::from_micros(200),
                max_delay: Duration::from_millis(10),
                jitter: 0.5,
                seed: t,
            };
            let sample = vec![t as f32 * 0.11; IN_DIM];
            let got = client.infer_retry(&sample, &policy).unwrap();
            assert_eq!(got, s.infer_one(&sample).unwrap());
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    let mut server = server;
    server.shutdown();
}
