//! Atomic hot-swap under load.
//!
//! The acceptance contract: while closed-loop TCP clients hammer the
//! default model, a swapper republishes new checkpoint versions over a
//! hundred times. Every response must be bit-exact for *some* published
//! plan version (the one that served it) or a typed error — zero
//! corrupted, zero lost — and client-side counts must reconcile exactly
//! with the server's counters.

use apt_nn::checkpoint;
use apt_serve::{
    BatchPolicy, InferenceSession, ModelArch, ModelRegistry, ModelSpec, RegistryConfig,
    ServeClient, ServeError, Server, ServerConfig,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const DIMS: [usize; 3] = [6, 12, 4];

fn spec() -> ModelSpec {
    ModelSpec {
        arch: ModelArch::Mlp(DIMS.to_vec()),
        classes: DIMS[2],
        img_size: 0,
        width_mult: 1.0,
    }
}

/// A v3 checkpoint with weights drawn from `seed` (distinct seeds give
/// distinct plans).
fn blob(seed: u64) -> Vec<u8> {
    let mut net = apt_nn::models::mlp(
        "mlp",
        &DIMS,
        &apt_nn::QuantScheme::paper_apt(),
        &mut apt_tensor::rng::seeded(seed),
    )
    .unwrap();
    checkpoint::save_full(&mut net)
}

fn bits(row: &[f32]) -> Vec<u32> {
    row.iter().map(|v| v.to_bits()).collect()
}

/// ≥100 hot-swaps while concurrent closed-loop clients run inference;
/// every response is bit-exact for the plan version that served it, and
/// client/server accounting reconciles exactly. Doubles as the swap
/// determinism differential: expected rows come from fresh single-model
/// sessions over the same checkpoints.
#[test]
fn hundred_swaps_under_load_lose_nothing() {
    const VERSIONS: usize = 8;
    const SWAPS: usize = 110;
    const CLIENTS: usize = 4;

    let s = spec();
    let blobs: Vec<Vec<u8>> = (0..VERSIONS as u64).map(|v| blob(1000 + v)).collect();
    let sample: Vec<f32> = (0..DIMS[0]).map(|j| j as f32 * 0.13 - 0.4).collect();

    // The differential baseline: a fresh single-model session per
    // checkpoint defines the only legal response bits for that version.
    let expected: Vec<Vec<u32>> = blobs
        .iter()
        .map(|b| {
            let fresh = InferenceSession::from_checkpoint(&s, b).unwrap();
            bits(&fresh.infer_one(&sample).unwrap())
        })
        .collect();
    for i in 0..VERSIONS {
        for j in (i + 1)..VERSIONS {
            assert_ne!(expected[i], expected[j], "plans {i} and {j} collide");
        }
    }

    let registry = Arc::new(ModelRegistry::new(RegistryConfig::default()));
    registry.ingest_blob("m", &s, &blobs[0]).unwrap();
    let server = Server::start_with_registry(
        Arc::clone(&registry),
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            policy: BatchPolicy {
                max_batch: 8,
                max_delay: Duration::from_micros(200),
                queue_depth: 512,
            },
            model_name: "m".to_string(),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    let stop = Arc::new(AtomicBool::new(false));
    let mut clients = Vec::new();
    for c in 0..CLIENTS {
        let stop = Arc::clone(&stop);
        let sample = sample.clone();
        let expected = expected.clone();
        clients.push(thread::spawn(move || {
            let mut client = ServeClient::connect(addr).unwrap();
            let mut ok = 0u64;
            let mut typed = 0u64;
            let mut versions_seen = vec![false; VERSIONS];
            while !stop.load(Ordering::SeqCst) {
                match client.infer(&sample) {
                    Ok(row) => {
                        let got = bits(&row);
                        let v = expected
                            .iter()
                            .position(|want| *want == got)
                            .unwrap_or_else(|| panic!("client {c}: corrupted response {got:?}"));
                        versions_seen[v] = true;
                        ok += 1;
                    }
                    // Transient sheds are legal; corruption is not.
                    Err(ServeError::Overloaded { .. } | ServeError::DeadlineExceeded { .. }) => {
                        typed += 1
                    }
                    Err(e) => panic!("client {c}: untyped failure: {e}"),
                }
            }
            (ok, typed, versions_seen)
        }));
    }

    // The swapper: republishes a rotating set of plans under live load.
    let swap_registry = Arc::clone(&registry);
    let s2 = s.clone();
    let swapper = thread::spawn(move || {
        for i in 0..SWAPS {
            let b = &blobs[(i + 1) % VERSIONS];
            let outcome = swap_registry.ingest_blob("m", &s2, b).unwrap();
            assert!(outcome.replaced, "swap {i} did not replace");
            thread::sleep(Duration::from_millis(2));
        }
    });
    swapper.join().unwrap();
    // Let clients run a little against the final plan, then stop.
    thread::sleep(Duration::from_millis(50));
    stop.store(true, Ordering::SeqCst);

    let mut client_ok = 0u64;
    let mut client_typed = 0u64;
    let mut seen = vec![false; VERSIONS];
    for t in clients {
        let (ok, typed, versions_seen) = t.join().unwrap();
        assert!(ok > 0, "a client never completed a request");
        client_ok += ok;
        client_typed += typed;
        for (a, b) in seen.iter_mut().zip(versions_seen) {
            *a |= b;
        }
    }
    assert!(
        seen.iter().filter(|&&v| v).count() >= 2,
        "load never observed a swap take effect: {seen:?}"
    );

    let snap = server.stats();
    assert_eq!(
        snap.completed, client_ok,
        "client/server completion counts must reconcile exactly"
    );
    assert_eq!(snap.errors, 0, "no batch may have failed");
    assert_eq!(
        snap.shed + snap.deadline_expired,
        client_typed,
        "typed rejections must reconcile exactly"
    );
    assert_eq!(
        snap.swaps, SWAPS as u64,
        "every publish must count as a swap"
    );
    assert_eq!(snap.models_resident, 1);

    // Post-quiesce differential: the resident plan answers bit-identically
    // to a fresh single-model session over the checkpoint that was
    // published last.
    let mut client = ServeClient::connect(addr).unwrap();
    let got = bits(&client.infer(&sample).unwrap());
    assert_eq!(got, expected[SWAPS % VERSIONS]);
}

/// Swapped-in plans answer bit-identically to a fresh single-model
/// session over the same checkpoint, for every version in a swap chain
/// (the satellite's determinism differential, without load).
#[test]
fn swapped_plan_matches_fresh_session_bitwise() {
    let s = spec();
    let registry = Arc::new(ModelRegistry::new(RegistryConfig::default()));
    registry.ingest_blob("m", &s, &blob(7)).unwrap();
    let server = Server::start_with_registry(
        Arc::clone(&registry),
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            policy: BatchPolicy::default(),
            model_name: "m".to_string(),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    let samples: Vec<Vec<f32>> = (0..4)
        .map(|i| {
            (0..DIMS[0])
                .map(|j| (i * 5 + j) as f32 * 0.11 - 0.3)
                .collect()
        })
        .collect();

    for seed in [21u64, 22, 23, 24, 21] {
        let b = blob(seed);
        let fresh = InferenceSession::from_checkpoint(&s, &b).unwrap();
        registry.ingest_blob("m", &s, &b).unwrap();
        for sample in &samples {
            let want = bits(&fresh.infer_one(sample).unwrap());
            let got = bits(&client.infer(sample).unwrap());
            assert_eq!(got, want, "swapped plan (seed {seed}) diverged");
            let got_named = bits(&client.infer_model("m", sample).unwrap());
            assert_eq!(got_named, want, "named route (seed {seed}) diverged");
        }
    }
}
