//! Checkpoint-ingestion fault campaign: sweep byte flips and truncations
//! (via `apt_core::faults`) over on-disk `.aptc` files of every format
//! version and prove the ingestion path never panics and never publishes
//! a damaged checkpoint silently.
//!
//! v2/v3 carry a CRC over the payload, so **every** mutation must be
//! rejected with a typed error. v1 predates the CRC — the contract there
//! is weaker but still crash-safe: loads may succeed or fail, but never
//! panic, and structural validation still catches truncations.

use apt_core::faults::{flip_byte, truncate_file};
use apt_nn::checkpoint;
use apt_serve::{ModelArch, ModelRegistry, ModelSpec, RegistryConfig, ServeError};
use std::path::PathBuf;

const DIMS: [usize; 3] = [6, 10, 4];

fn spec() -> ModelSpec {
    ModelSpec {
        arch: ModelArch::Mlp(DIMS.to_vec()),
        classes: DIMS[2],
        img_size: 0,
        width_mult: 1.0,
    }
}

fn net() -> apt_nn::Network {
    apt_nn::models::mlp(
        "mlp",
        &DIMS,
        &apt_nn::QuantScheme::paper_apt(),
        &mut apt_tensor::rng::seeded(42),
    )
    .unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("apt-ingest-faults-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Every single-byte flip of a v2/v3 file is rejected typed by the load
/// path; v1 flips never panic. The sweep goes through real files so the
/// fault injectors exercise the same read path ingestion uses.
#[test]
fn flip_sweep_never_panics_and_crc_versions_always_reject() {
    let dir = temp_dir("flip");
    for version in [1u16, 2, 3] {
        let original = checkpoint::save_full_as(&mut net(), version).unwrap();
        let path = dir.join(format!("v{version}.aptc"));
        for offset in 0..original.len() {
            std::fs::write(&path, &original).unwrap();
            flip_byte(&path, offset, 0xA5).unwrap();
            let hurt = std::fs::read(&path).unwrap();
            // Structural verify and the full load must both stay typed.
            let verify = checkpoint::verify(&hurt);
            let mut target = net();
            let load = checkpoint::load(&mut target, &hurt);
            if version >= 2 {
                assert!(
                    load.is_err(),
                    "v{version}: flip at {offset} loaded silently"
                );
                assert!(
                    verify.is_err(),
                    "v{version}: flip at {offset} passed verify"
                );
            }
            // (v1: reaching here without a panic is the contract.)
            drop(load);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every truncation of any version is rejected typed — a cut file can
/// never parse as complete, for v1 too (the section walk runs out of
/// bytes before every parameter is filled).
#[test]
fn truncate_sweep_always_rejects_typed() {
    let dir = temp_dir("trunc");
    for version in [1u16, 2, 3] {
        let original = checkpoint::save_full_as(&mut net(), version).unwrap();
        let path = dir.join(format!("v{version}.aptc"));
        for len in (0..original.len()).step_by(3) {
            std::fs::write(&path, &original).unwrap();
            truncate_file(&path, len).unwrap();
            let cut = std::fs::read(&path).unwrap();
            assert_eq!(cut.len(), len);
            let mut target = net();
            assert!(
                checkpoint::load(&mut target, &cut).is_err(),
                "v{version}: truncation to {len} bytes loaded silently"
            );
            assert!(
                checkpoint::verify(&cut).is_err(),
                "v{version}: truncation to {len} bytes passed verify"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The registry's file-ingestion path quarantines every corrupted upload
/// from a campaign of flipped and truncated files across versions, while
/// the previously published model keeps serving bit-exactly.
#[test]
fn corrupt_upload_campaign_quarantines_everything() {
    let dir = temp_dir("campaign");
    let qdir = dir.join("bad");
    let s = spec();
    let registry = ModelRegistry::new(RegistryConfig {
        model_dir: Some(dir.clone()),
        quarantine_dir: Some(qdir.clone()),
        spec: Some(s.clone()),
        ..RegistryConfig::default()
    });

    // A good model first — corruption must never disturb it.
    let good = checkpoint::save_full_as(&mut net(), 3).unwrap();
    std::fs::write(dir.join("serving.aptc"), &good).unwrap();
    registry.rescan().unwrap();
    let baseline = registry.get("serving").unwrap();
    let sample: Vec<f32> = (0..DIMS[0]).map(|j| j as f32 * 0.21 - 0.6).collect();
    let expect = baseline.infer_one(&sample).unwrap();

    // The campaign: flipped and truncated uploads across all versions.
    let mut campaign = 0usize;
    for (i, version) in [1u16, 2, 3].iter().enumerate() {
        let original = checkpoint::save_full_as(&mut net(), *version).unwrap();
        for k in 0..4usize {
            let path = dir.join(format!("bad-v{version}-flip{k}.aptc"));
            std::fs::write(&path, &original).unwrap();
            let offset = (original.len() / 5) * (k + 1) + i;
            flip_byte(&path, offset, 0x42).unwrap();
            campaign += 1;
        }
        for k in 0..2usize {
            let path = dir.join(format!("bad-v{version}-cut{k}.aptc"));
            std::fs::write(&path, &original).unwrap();
            truncate_file(&path, original.len() / (k + 2)).unwrap();
            campaign += 1;
        }
    }

    let report = registry.rescan().unwrap();
    // v1 flips may load (no CRC) — but only if the result still walks the
    // full structural ladder; anything rejected must be quarantined with
    // a reason sidecar, and nothing may panic (reaching here proves that).
    let rejected = report.rejected.len();
    let v1_flips_accepted = report
        .ingested
        .iter()
        .filter(|id| id.starts_with("bad-v1-flip"))
        .count();
    assert_eq!(
        rejected + v1_flips_accepted,
        campaign,
        "every campaign file must be typed-rejected or (v1 flips only) cleanly loaded: {report:?}"
    );
    // Every v2/v3 upload and every truncation was rejected and moved to
    // quarantine with a sidecar.
    for (file, reason) in &report.rejected {
        assert!(
            file.starts_with("bad-"),
            "quarantined the wrong file: {file}"
        );
        assert!(!reason.is_empty());
        assert!(qdir.join(file).exists(), "{file} not quarantined");
        assert!(
            qdir.join(format!("{file}.reason")).exists(),
            "{file} has no reason sidecar"
        );
        assert!(!dir.join(file).exists(), "{file} left in the model dir");
    }
    assert_eq!(registry.stats().quarantines, rejected as u64);

    // The serving model is untouched bit-for-bit.
    let after = registry.get("serving").unwrap();
    assert_eq!(
        after.infer_one(&sample).unwrap(),
        expect,
        "corrupt uploads disturbed the serving plan"
    );

    // Unknown models stay typed even mid-campaign.
    assert!(matches!(
        registry.get("bad-v3-flip0"),
        Err(ServeError::ModelUnavailable { .. })
    ));
    let _ = std::fs::remove_dir_all(&dir);
}
