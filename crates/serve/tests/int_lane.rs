//! Differential coverage for the dequant-free integer serving lane.
//!
//! Two claims, both against the exact (unarmed / `fp32`-lane) forward:
//!
//! 1. **Dequant cache is bit-exact.** Arming [`KernelLane::DequantCache`]
//!    must not change a single output bit on any backbone — it is the same
//!    arithmetic reading a cached weight tensor.
//! 2. **Integer lane is bit-close with a documented bound.** The
//!    [`KernelLane::IntGemm`] lane computes entirely on integer codes; its
//!    only approximation is the per-row 8-bit activation requantisation
//!    (weight side exact, integer bracket exact in `i64`). Per layer that
//!    is an error of at most `εx/2 · Σ|ŵ|`; end to end we assert logits
//!    within 6% of the largest exact logit magnitude on every supported
//!    backbone, and across every checkpoint version (v1/v2/v3) and both
//!    code-store backends on a *trained* network.
//!
//! Both claims are about the **layer replay** path, so sessions here are
//! built with freezing disabled. The frozen-plan compiler keeps convs in
//! f32 (packing conv panels would break the plan's zero-allocation arena
//! contract), so a frozen conv net honestly reports the weakened
//! `dequant-cache` lane under an `int-gemm` request — asserted below —
//! while a frozen all-linear net still achieves the full integer lane.
//!
//! The store backend is a process global, so this file holds a single
//! serial `#[test]` (integration tests compile to their own binary, so
//! this cannot race `differential.rs`).

use apt_core::{PolicyConfig, TrainConfig, Trainer};
use apt_data::{SynthCifar, SynthCifarConfig};
use apt_nn::{checkpoint, Network};
use apt_optim::LrSchedule;
use apt_quant::{set_store_backend, StoreBackend};
use apt_serve::{InferenceSession, KernelLane, ModelArch, ModelSpec};

fn cifar_spec() -> ModelSpec {
    ModelSpec {
        arch: ModelArch::Cifarnet,
        classes: 3,
        img_size: 8,
        width_mult: 0.25,
    }
}

/// A short real training run so the checkpoint carries non-trivial
/// quantisers and batch-norm state (mirrors `differential.rs`).
fn trained_network() -> Network {
    let data = SynthCifar::generate(&SynthCifarConfig {
        num_classes: 3,
        train_per_class: 16,
        test_per_class: 6,
        img_size: 8,
        seed: 7,
        ..Default::default()
    })
    .unwrap();
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 16,
        schedule: LrSchedule::Constant(0.05),
        interval: 1,
        policy: Some(PolicyConfig::default()),
        ..Default::default()
    };
    let net = cifar_spec().build().unwrap();
    let mut t = Trainer::new(net, cfg).unwrap();
    t.train(&data.train, &data.test).unwrap();
    let blob = checkpoint::save_full(t.network_mut());
    let mut fresh = cifar_spec().build().unwrap();
    checkpoint::load(&mut fresh, &blob).unwrap();
    fresh
}

fn synth_samples(n: usize, sample_len: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|i| {
            (0..sample_len)
                .map(|j| ((i * 31 + j * 7) % 23) as f32 * 0.08 - 0.9)
                .collect()
        })
        .collect()
}

fn assert_rows_bitwise(got: &[Vec<f32>], want: &[Vec<f32>], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: row count");
    for (gr, wr) in got.iter().zip(want) {
        assert_eq!(gr.len(), wr.len(), "{ctx}: row width");
        for (g, w) in gr.iter().zip(wr) {
            assert_eq!(g.to_bits(), w.to_bits(), "{ctx}: {g} vs {w}");
        }
    }
}

/// Logit-level closeness: every element within `rel` of the largest exact
/// logit magnitude (floored at 1 so near-zero logits don't demand exact
/// zeros). Also proves no row was lost or resized — "zero corrupted or
/// lost responses" at the session level.
fn assert_rows_close(got: &[Vec<f32>], want: &[Vec<f32>], rel: f32, ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: row count");
    let scale = want.iter().flatten().fold(1.0f32, |a, &v| a.max(v.abs()));
    for (i, (gr, wr)) in got.iter().zip(want).enumerate() {
        assert_eq!(gr.len(), wr.len(), "{ctx}: row {i} width");
        for (g, w) in gr.iter().zip(wr) {
            assert!(g.is_finite(), "{ctx}: non-finite logit {g}");
            assert!(
                (g - w).abs() <= rel * scale,
                "{ctx}: row {i}: {g} vs {w} (± {} = {rel}·{scale})",
                rel * scale
            );
        }
    }
}

#[test]
fn integer_lane_is_bit_close_everywhere_dequant_cache_bit_exact() {
    set_store_backend(StoreBackend::Tiered);
    // ── Claim 1 + 2 across every supported backbone (fresh paper-APT
    //    quantised weights straight from the model zoo). ──
    let backbones = [
        ModelSpec {
            arch: ModelArch::Mlp(vec![48, 32, 3]),
            classes: 3,
            img_size: 0,
            width_mult: 1.0,
        },
        cifar_spec(),
        ModelSpec {
            arch: ModelArch::VggSmall,
            ..cifar_spec()
        },
        ModelSpec {
            arch: ModelArch::Resnet20,
            ..cifar_spec()
        },
        ModelSpec {
            arch: ModelArch::Resnet110,
            ..cifar_spec()
        },
        ModelSpec {
            arch: ModelArch::MobilenetV2,
            ..cifar_spec()
        },
    ];
    for spec in &backbones {
        let ctx = format!("{:?}", spec.arch);
        let mut net = spec.build().unwrap();
        let blob = checkpoint::save_full(&mut net);
        let sample_len: usize = spec.sample_dims().iter().product();
        let samples = synth_samples(2, sample_len);

        let exact =
            InferenceSession::from_checkpoint_with_options(spec, &blob, KernelLane::F32, false)
                .unwrap();
        assert_eq!(exact.lane(), KernelLane::F32);
        assert_eq!(exact.network().plan_resident_bytes(), 0);
        let want = exact.infer_samples(&samples).unwrap();

        let cached = InferenceSession::from_checkpoint_with_options(
            spec,
            &blob,
            KernelLane::DequantCache,
            false,
        )
        .unwrap();
        assert_eq!(cached.lane(), KernelLane::DequantCache);
        assert_rows_bitwise(&cached.infer_samples(&samples).unwrap(), &want, &ctx);

        let int =
            InferenceSession::from_checkpoint_with_options(spec, &blob, KernelLane::IntGemm, false)
                .unwrap();
        assert_eq!(
            int.lane(),
            KernelLane::IntGemm,
            "{ctx}: paper-APT weights are quantised, the whole net must go integer"
        );
        assert!(
            int.network().plan_resident_bytes() > 0,
            "{ctx}: panels must be counted resident"
        );
        assert_rows_close(&int.infer_samples(&samples).unwrap(), &want, 0.06, &ctx);

        // Frozen-path lane honesty: an all-linear plan packs integer
        // panels and keeps the full lane; a plan with convs degrades to
        // dequant-cache (convs compile f32) and must say so.
        let frozen =
            InferenceSession::from_checkpoint_with_lane(spec, &blob, KernelLane::IntGemm).unwrap();
        assert!(frozen.is_frozen(), "{ctx}: {:?}", frozen.freeze_reason());
        let expect_lane = if matches!(spec.arch, ModelArch::Mlp(_)) {
            KernelLane::IntGemm
        } else {
            KernelLane::DequantCache
        };
        assert_eq!(frozen.lane(), expect_lane, "{ctx}");
        assert!(
            frozen.resident_bytes() > frozen.network().resident_bytes(),
            "{ctx}: the compiled plan's weights must be counted resident"
        );
        assert_rows_close(&frozen.infer_samples(&samples).unwrap(), &want, 0.06, &ctx);
    }

    // ── Claim 2 on a trained network, across checkpoint versions and
    //    both store backends. ──
    let spec = cifar_spec();
    let samples = synth_samples(4, 3 * 8 * 8);
    for backend in [StoreBackend::I64, StoreBackend::Tiered] {
        set_store_backend(backend);
        let mut net = trained_network();
        let blob = checkpoint::save_full(&mut net);
        let exact =
            InferenceSession::from_checkpoint_with_options(&spec, &blob, KernelLane::F32, false)
                .unwrap();
        let want = exact.infer_samples(&samples).unwrap();
        for version in [1u16, 2, 3] {
            let vblob = checkpoint::save_full_as(&mut net, version).unwrap();
            let session = InferenceSession::from_checkpoint_with_options(
                &spec,
                &vblob,
                KernelLane::IntGemm,
                false,
            )
            .unwrap();
            assert_eq!(session.lane(), KernelLane::IntGemm);
            let ctx = format!("trained cifarnet v{version} {backend:?}");
            assert_rows_close(&session.infer_samples(&samples).unwrap(), &want, 0.06, &ctx);
        }
    }
    set_store_backend(StoreBackend::Tiered);
}
