//! Fuzz-style property tests for the incremental frame decoder: however a
//! byte stream is fragmented — byte-at-a-time, random chunking, frames
//! glued together, or truncated mid-frame — the decoder must recover
//! exactly the frames a blocking reader would, never block, and reject an
//! oversized length prefix the instant the header is visible.

use apt_serve::protocol::{self, FrameDecoder, MAX_FRAME};
use apt_serve::ServeError;
use proptest::prelude::*;

/// Collects every complete frame a decoder finds in `wire` when fed in the
/// given chunk sizes.
fn decode_chunked(wire: &[u8], chunks: &[usize]) -> Result<Vec<(u8, Vec<u8>)>, ServeError> {
    let mut d = FrameDecoder::new();
    let mut frames = Vec::new();
    let mut pos = 0;
    let mut ci = 0;
    while pos < wire.len() {
        let step = chunks[ci % chunks.len()].clamp(1, wire.len() - pos);
        ci += 1;
        d.feed(&wire[pos..pos + step]);
        pos += step;
        while let Some(f) = d.try_frame()? {
            frames.push(f);
        }
    }
    Ok(frames)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any fragmentation of a valid multi-frame stream yields exactly the
    /// frames that were written, in order.
    #[test]
    fn any_fragmentation_decodes_identically(
        payload_lens in prop::collection::vec(0usize..200, 1..6),
        tags in prop::collection::vec(0u8..8, 6..7),
        chunks in prop::collection::vec(1usize..17, 1..8),
        fill in 0u8..255,
    ) {
        let mut wire = Vec::new();
        let mut want = Vec::new();
        for (i, &len) in payload_lens.iter().enumerate() {
            let tag = tags[i.min(tags.len() - 1)];
            let payload = vec![fill.wrapping_add(i as u8); len];
            protocol::write_frame(&mut wire, tag, &payload).unwrap();
            want.push((tag, payload));
        }

        let got = decode_chunked(&wire, &chunks).unwrap();
        prop_assert_eq!(got, want.clone());

        // Byte-at-a-time is the degenerate slow-client case.
        let got1 = decode_chunked(&wire, &[1]).unwrap();
        prop_assert_eq!(got1, want);
    }

    /// Truncating a stream anywhere mid-frame yields the complete frames
    /// before the cut and `NeedMore` (never a block, never a bogus frame).
    #[test]
    fn truncated_streams_need_more(
        len in 0usize..200,
        cut in 0usize..100,
        chunk in 1usize..9,
    ) {
        let mut wire = Vec::new();
        protocol::write_frame(&mut wire, 1, &vec![0xAB; len]).unwrap();
        let cut = cut % wire.len().max(1);
        let truncated = &wire[..cut];

        let mut d = FrameDecoder::new();
        for piece in truncated.chunks(chunk) {
            d.feed(piece);
        }
        // cut < full frame, so no complete frame may appear.
        prop_assert!(d.try_frame().unwrap().is_none());
        prop_assert_eq!(d.mid_frame(), cut > 0);

        // Feeding the remainder completes the frame bit-exactly.
        d.feed(&wire[cut..]);
        let (tag, payload) = d.try_frame().unwrap().unwrap();
        prop_assert_eq!(tag, 1);
        prop_assert_eq!(payload, vec![0xAB; len]);
    }

    /// An oversized length prefix is rejected as soon as the 5-byte header
    /// is complete — before any payload is buffered — and the error
    /// latches.
    #[test]
    fn oversized_prefix_rejected_at_header(
        over in 1u64..u64::from(u32::MAX) - MAX_FRAME as u64,
        tag in 0u8..255,
        chunk in 1usize..6,
    ) {
        let len = (MAX_FRAME as u64 + over) as u32;
        let mut header = vec![tag];
        header.extend_from_slice(&len.to_le_bytes());

        let mut d = FrameDecoder::new();
        for piece in header.chunks(chunk) {
            d.feed(piece);
        }
        let rejected = matches!(d.try_frame(), Err(ServeError::Protocol { .. }));
        prop_assert!(rejected);
        prop_assert_eq!(d.buffered(), 5, "no payload may be buffered");
        // Latched: more bytes don't resurrect the stream.
        d.feed(&[0; 64]);
        let still_rejected = matches!(d.try_frame(), Err(ServeError::Protocol { .. }));
        prop_assert!(still_rejected);
    }
}
