//! End-to-end tests for the TCP front-end: protocol round trips, bit-exact
//! inference through the full stack, concurrent-load integrity, and
//! graceful shutdown.

use apt_nn::checkpoint;
use apt_serve::protocol::{self, OP_INFER, STATUS_BAD_REQUEST, STATUS_OK};
use apt_serve::{
    BatchPolicy, InferenceSession, ModelArch, ModelSpec, ServeClient, ServeError, Server,
    ServerConfig,
};
use std::net::TcpStream;
use std::thread;

fn session(dims: &[usize]) -> InferenceSession {
    let spec = ModelSpec {
        arch: ModelArch::Mlp(dims.to_vec()),
        classes: *dims.last().unwrap(),
        img_size: 0,
        width_mult: 1.0,
    };
    let mut net = spec.build().unwrap();
    let blob = checkpoint::save_full(&mut net);
    InferenceSession::from_checkpoint(&spec, &blob).unwrap()
}

fn start_server(dims: &[usize], policy: BatchPolicy) -> (Server, InferenceSession) {
    let s = session(dims);
    let server = Server::start(
        s.clone(),
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            policy,
            model_name: "test-mlp".to_string(),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    (server, s)
}

#[test]
fn infer_over_tcp_is_bit_exact() {
    let (mut server, local) = start_server(&[6, 10, 4], BatchPolicy::default());
    let mut client = ServeClient::connect(server.addr()).unwrap();

    for i in 0..5 {
        let sample: Vec<f32> = (0..6).map(|j| (i * 6 + j) as f32 * 0.17 - 1.0).collect();
        let want = local.infer_one(&sample).unwrap();
        let got = client.infer(&sample).unwrap();
        assert_eq!(got.len(), want.len());
        for (a, b) in got.iter().zip(&want) {
            assert_eq!(a.to_bits(), b.to_bits(), "sample {i} diverged over TCP");
        }
    }

    let health = client.health().unwrap();
    assert!(health.contains("\"status\":\"ok\""));
    assert!(health.contains("test-mlp"));
    assert!(health.contains("\"sample_len\":6"));

    let stats = client.stats_json().unwrap();
    assert!(stats.contains("\"completed\":5"), "stats: {stats}");
    server.shutdown();
}

#[test]
fn concurrent_clients_lose_nothing() {
    let policy = BatchPolicy {
        max_batch: 8,
        max_delay: std::time::Duration::from_micros(500),
        queue_depth: 256,
    };
    let (mut server, local) = start_server(&[4, 12, 3], policy);
    let addr = server.addr();

    const CLIENTS: usize = 6;
    const PER_CLIENT: usize = 25;
    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        let local = local.clone();
        handles.push(thread::spawn(move || {
            let mut client = ServeClient::connect(addr).unwrap();
            for r in 0..PER_CLIENT {
                let sample: Vec<f32> = (0..4)
                    .map(|j| ((c * 31 + r * 7 + j) % 13) as f32 * 0.21 - 1.2)
                    .collect();
                let want = local.infer_one(&sample).unwrap();
                let got = client.infer(&sample).unwrap();
                assert_eq!(
                    got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "client {c} request {r} corrupted"
                );
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let snap = server.stats();
    assert_eq!(snap.completed, (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(snap.errors, 0);
    assert_eq!(snap.shed, 0);
    assert!(snap.batches <= snap.completed);
    server.shutdown();
}

#[test]
fn protocol_errors_answered_in_band() {
    let (mut server, _local) = start_server(&[3, 5, 2], BatchPolicy::default());
    let mut client = ServeClient::connect(server.addr()).unwrap();

    // Wrong sample length: typed BadRequest, connection survives.
    match client.infer(&[1.0, 2.0]) {
        Err(ServeError::BadRequest { .. }) => {}
        other => panic!("expected BadRequest, got {other:?}"),
    }
    assert!(client.infer(&[0.1, 0.2, 0.3]).is_ok(), "connection died");

    // Unknown op: BadRequest status, connection survives.
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    protocol::write_frame(&mut raw, 99, &[]).unwrap();
    let (status, _) = protocol::read_frame(&mut raw).unwrap();
    assert_eq!(status, STATUS_BAD_REQUEST);
    protocol::write_frame(&mut raw, OP_INFER, &protocol::encode_f32s(&[0.0, 0.0, 0.0])).unwrap();
    let (status, _) = protocol::read_frame(&mut raw).unwrap();
    assert_eq!(status, STATUS_OK);

    server.shutdown();
}

#[test]
fn model_infer_routes_and_unknown_model_is_typed() {
    let (mut server, local) = start_server(&[6, 10, 4], BatchPolicy::default());
    let mut client = ServeClient::connect(server.addr()).unwrap();
    let sample: Vec<f32> = (0..6).map(|j| j as f32 * 0.3 - 0.8).collect();
    let want = local.infer_one(&sample).unwrap();

    // Naming the default model explicitly answers bit-identically to the
    // plain infer op.
    let got = client.infer_model("test-mlp", &sample).unwrap();
    assert_eq!(
        got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        want.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );

    // An unknown model is a typed in-band failure carrying the id; the
    // connection survives it.
    match client.infer_model("no-such-model", &sample) {
        Err(ServeError::ModelUnavailable { model, reason }) => {
            assert_eq!(model, "no-such-model");
            assert!(!reason.is_empty());
        }
        other => panic!("expected ModelUnavailable, got {other:?}"),
    }
    assert!(client.infer(&sample).is_ok(), "connection died");

    // The miss is visible in the fleet counters and health keeps serving.
    let stats = client.stats_json().unwrap();
    assert!(stats.contains("\"model_unavailable\":1"), "stats: {stats}");
    assert!(stats.contains("\"models_resident\":1"), "stats: {stats}");
    let health = client.health().unwrap();
    assert!(health.contains("\"models_resident\":1"), "health: {health}");

    // A second model published under live traffic serves its own plan.
    let other = session(&[6, 10, 4]);
    let want_b = other.infer_one(&sample).unwrap();
    server.registry().publish("side", other).unwrap();
    let got_b = client.infer_model("side", &sample).unwrap();
    assert_eq!(
        got_b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        want_b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );
    server.shutdown();
}

#[test]
fn shutdown_drains_and_refuses() {
    let (mut server, _local) = start_server(&[3, 4, 2], BatchPolicy::default());
    let addr = server.addr();
    let mut client = ServeClient::connect(addr).unwrap();
    client.infer(&[0.5, 0.5, 0.5]).unwrap();

    server.shutdown();

    // Existing connection: next round trip sees shutdown (in-band status)
    // or a closed socket — never a hang or a corrupt frame.
    match client.infer(&[0.5, 0.5, 0.5]) {
        Err(ServeError::ShuttingDown) | Err(ServeError::Io(_)) => {}
        Ok(_) => panic!("request answered after shutdown"),
        Err(e) => panic!("unexpected error after shutdown: {e}"),
    }

    // New connections are refused once the listener is gone.
    assert!(TcpStream::connect(addr).is_err());

    // Idempotent.
    server.shutdown();
}
