use std::error::Error;
use std::fmt;

/// Error type for tensor operations.
///
/// Returned by fallible constructors and kernels when shapes disagree or an
/// argument is structurally invalid. All variants carry enough context to
/// diagnose the failing call without a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by a shape does not match the data
    /// buffer length.
    LengthMismatch {
        /// Elements implied by the requested shape.
        expected: usize,
        /// Elements actually provided.
        actual: usize,
    },
    /// Two operands have incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Human-readable operation name (e.g. `"matmul"`).
        op: &'static str,
        /// Shape of the left/first operand.
        lhs: Vec<usize>,
        /// Shape of the right/second operand.
        rhs: Vec<usize>,
    },
    /// An operation required a tensor of a particular rank.
    RankMismatch {
        /// Human-readable operation name.
        op: &'static str,
        /// Required rank.
        expected: usize,
        /// Rank of the offending tensor.
        actual: usize,
    },
    /// A scalar argument was out of its documented domain.
    InvalidArgument {
        /// Human-readable operation name.
        op: &'static str,
        /// Explanation of the violated constraint.
        reason: String,
    },
    /// An index was outside the tensor bounds.
    IndexOutOfBounds {
        /// The offending flat or axis index.
        index: usize,
        /// The bound that was exceeded.
        bound: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "data length {actual} does not match shape volume {expected}"
                )
            }
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: incompatible shapes {lhs:?} and {rhs:?}")
            }
            TensorError::RankMismatch {
                op,
                expected,
                actual,
            } => {
                write!(f, "{op}: expected rank {expected}, got rank {actual}")
            }
            TensorError::InvalidArgument { op, reason } => {
                write!(f, "{op}: invalid argument: {reason}")
            }
            TensorError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds (must be < {bound})")
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errs: Vec<TensorError> = vec![
            TensorError::LengthMismatch {
                expected: 4,
                actual: 3,
            },
            TensorError::ShapeMismatch {
                op: "matmul",
                lhs: vec![2, 3],
                rhs: vec![4, 5],
            },
            TensorError::RankMismatch {
                op: "conv2d",
                expected: 4,
                actual: 2,
            },
            TensorError::InvalidArgument {
                op: "pad",
                reason: "negative pad".into(),
            },
            TensorError::IndexOutOfBounds { index: 9, bound: 4 },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!format!("{e:?}").is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
