//! # apt-tensor
//!
//! Dense `f32` tensor substrate for the Adaptive Precision Training (APT)
//! reproduction. This crate provides everything the upper layers (quantised
//! parameters, neural-network layers, data pipeline) need from a numerical
//! array library:
//!
//! * [`Tensor`] — a contiguous, row-major, heap-allocated `f32` array with a
//!   dynamic [`Shape`].
//! * Matrix multiply ([`ops::matmul`]) with a cache-blocked inner kernel.
//! * 2-D convolution via im2col + GEMM ([`ops::conv`]), including the two
//!   backward kernels (gradient w.r.t. input and w.r.t. weights).
//! * Pooling, padding/cropping/flipping (used by data augmentation),
//!   reductions, element-wise kernels.
//! * Deterministic random initialisation helpers ([`rng`]).
//! * A deterministic in-tree thread pool ([`par`]) that parallelises the
//!   hot kernels while keeping results bit-identical to the serial
//!   reference for every thread count.
//!
//! The crate is deliberately dependency-light (only `rand`) and fully
//! deterministic given a seed, which the experiment harness relies on.
//!
//! ## Example
//!
//! ```
//! use apt_tensor::{Tensor, ops};
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
//! let b = Tensor::eye(2);
//! let c = ops::matmul(&a, &b).unwrap();
//! assert_eq!(c.data(), a.data());
//! ```

#![deny(missing_docs)]
// `unsafe` is denied everywhere except the narrowly-audited pointer
// plumbing inside `par`, which carries per-site SAFETY justifications.
#![deny(unsafe_code)]

mod error;
pub mod ops;
pub mod par;
pub mod rng;
mod shape;
mod tensor;

pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, TensorError>;
