//! 2-D convolution (NCHW) via im2col + GEMM.
//!
//! Three kernels implement the full training path of a conv layer:
//!
//! * [`conv2d`] — forward.
//! * [`conv2d_backward_input`] — gradient w.r.t. the input (col2im of
//!   `Wᵀ·dY`).
//! * [`conv2d_backward_weight`] — gradient w.r.t. the weights
//!   (`dY·colᵀ`).
//!
//! Grouped convolution is supported so `apt-nn` can build MobileNetV2's
//! depthwise layers (`groups == in_channels`). All kernels take a
//! [`Conv2dParams`] describing stride/padding/groups, validated once.
//!
//! The im2col/col2im staging matrices live in a per-thread scratch
//! buffer that is grown once and reused for every subsequent call, so
//! steady-state training allocates nothing here beyond the output
//! tensor. The GEMMs run on the scratch slices directly via the
//! `pub(crate)` kernels in `matmul_impl`. Forward and backward-input are
//! parallelised over images (each image owns a disjoint output slice);
//! backward-weight keeps its image loop serial — every image's
//! contribution is `+=`-accumulated into the same weight gradient, and
//! the serial loop pins that accumulation order — while the GEMM inside
//! each image parallelises over output rows. All of it is bit-identical
//! for every thread count.

use crate::ops::matmul_impl::{gemm, gemm_a_bt, gemm_at_b};
use crate::{par, Result, Tensor, TensorError};
use std::cell::RefCell;

thread_local! {
    /// Per-thread im2col/col2im staging buffer, grown monotonically and
    /// reused across calls (and across training steps).
    static COL_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` on this thread's scratch buffer, grown to at least `len`.
/// Shared with the fused conv kernel in [`crate::ops::fused`] so frozen
/// plans reuse the same warm per-thread staging memory.
pub(crate) fn with_col_scratch<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    COL_SCRATCH.with(|cell| {
        let mut buf = cell.borrow_mut();
        if buf.len() < len {
            buf.resize(len, 0.0);
        }
        f(&mut buf[..len])
    })
}

/// Hyper-parameters of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dParams {
    /// Stride along height and width.
    pub stride: usize,
    /// Zero padding applied symmetrically along height and width.
    pub padding: usize,
    /// Number of channel groups (1 = dense, `in_channels` = depthwise).
    pub groups: usize,
}

impl Default for Conv2dParams {
    fn default() -> Self {
        Conv2dParams {
            stride: 1,
            padding: 0,
            groups: 1,
        }
    }
}

impl Conv2dParams {
    /// Convenience constructor.
    pub fn new(stride: usize, padding: usize, groups: usize) -> Self {
        Conv2dParams {
            stride,
            padding,
            groups,
        }
    }

    /// Output spatial size for an input spatial size and kernel size.
    pub fn out_size(&self, in_size: usize, kernel: usize) -> usize {
        (in_size + 2 * self.padding).saturating_sub(kernel) / self.stride + 1
    }

    fn validate(
        &self,
        input: &Tensor,
        weight: &Tensor,
    ) -> Result<(usize, usize, usize, usize, usize, usize, usize)> {
        if input.rank() != 4 {
            return Err(TensorError::RankMismatch {
                op: "conv2d",
                expected: 4,
                actual: input.rank(),
            });
        }
        if weight.rank() != 4 {
            return Err(TensorError::RankMismatch {
                op: "conv2d",
                expected: 4,
                actual: weight.rank(),
            });
        }
        if self.stride == 0 {
            return Err(TensorError::InvalidArgument {
                op: "conv2d",
                reason: "stride must be >= 1".into(),
            });
        }
        let (n, c_in, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let (c_out, c_in_per_group, kh, kw) = (
            weight.dims()[0],
            weight.dims()[1],
            weight.dims()[2],
            weight.dims()[3],
        );
        if self.groups == 0 || c_in % self.groups != 0 || c_out % self.groups != 0 {
            return Err(TensorError::InvalidArgument {
                op: "conv2d",
                reason: format!(
                    "groups {} must divide in_channels {} and out_channels {}",
                    self.groups, c_in, c_out
                ),
            });
        }
        if c_in / self.groups != c_in_per_group {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d",
                lhs: input.dims().to_vec(),
                rhs: weight.dims().to_vec(),
            });
        }
        if h + 2 * self.padding < kh || w + 2 * self.padding < kw {
            return Err(TensorError::InvalidArgument {
                op: "conv2d",
                reason: format!("kernel {kh}x{kw} larger than padded input {h}x{w}"),
            });
        }
        Ok((n, c_in, h, w, c_out, kh, kw))
    }
}

/// Lowers one image's group-slice into the im2col matrix
/// `[c_g·kh·kw, oh·ow]`. Shared with [`crate::ops::fused`] so the fused
/// conv epilogue kernel stages patches exactly like [`conv2d`] does.
#[allow(clippy::too_many_arguments)]
pub(crate) fn im2col_group(
    input: &[f32],
    c_start: usize,
    c_g: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    p: &Conv2dParams,
    oh: usize,
    ow: usize,
    col: &mut [f32],
) {
    let col_w = oh * ow;
    for c in 0..c_g {
        let chan = &input[(c_start + c) * h * w..(c_start + c + 1) * h * w];
        for ki in 0..kh {
            for kj in 0..kw {
                let row = ((c * kh + ki) * kw + kj) * col_w;
                for oi in 0..oh {
                    let ii = (oi * p.stride + ki) as isize - p.padding as isize;
                    let dst = &mut col[row + oi * ow..row + (oi + 1) * ow];
                    if ii < 0 || ii as usize >= h {
                        dst.fill(0.0);
                        continue;
                    }
                    let src_row = &chan[ii as usize * w..(ii as usize + 1) * w];
                    for (oj, d) in dst.iter_mut().enumerate() {
                        let jj = (oj * p.stride + kj) as isize - p.padding as isize;
                        *d = if jj < 0 || jj as usize >= w {
                            0.0
                        } else {
                            src_row[jj as usize]
                        };
                    }
                }
            }
        }
    }
}

/// Lowers one image's group-slice into a **patch-major** im2col matrix
/// `[oh·ow, c_g·kh·kw]`: row `p` is the receptive field of output pixel
/// `p` (`p = oi·ow + oj`), laid out `(c, ki, kj)`-major to match the
/// flattened weight rows `[c_out_g, c_g·kh·kw]`.
///
/// This is the transpose of the `[c_g·kh·kw, oh·ow]` layout the f32
/// forward kernel uses. The integer serving lane wants patches as
/// contiguous rows so each one can be quantised to 8-bit codes and fed
/// straight into [`int_gemm`](crate::ops::int_gemm) against a packed
/// weight panel.
///
/// * `input_img` — one image, `[c_in · h · w]` (channel-major).
/// * `c_start` — first input channel of the group.
/// * `out` — destination, `oh·ow · c_g·kh·kw` floats, fully overwritten.
///
/// # Panics
///
/// Debug-asserts the slice lengths; callers validate shapes via
/// [`Conv2dParams`] first.
#[allow(clippy::too_many_arguments)]
pub fn im2col_patches(
    input_img: &[f32],
    c_start: usize,
    c_g: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    params: &Conv2dParams,
    oh: usize,
    ow: usize,
    out: &mut [f32],
) {
    let col_rows = c_g * kh * kw;
    debug_assert!(input_img.len() >= (c_start + c_g) * h * w);
    debug_assert_eq!(out.len(), oh * ow * col_rows);
    for oi in 0..oh {
        for oj in 0..ow {
            let row = &mut out[(oi * ow + oj) * col_rows..(oi * ow + oj + 1) * col_rows];
            for c in 0..c_g {
                let chan = &input_img[(c_start + c) * h * w..(c_start + c + 1) * h * w];
                for ki in 0..kh {
                    let ii = (oi * params.stride + ki) as isize - params.padding as isize;
                    let dst = &mut row[(c * kh + ki) * kw..(c * kh + ki + 1) * kw];
                    if ii < 0 || ii as usize >= h {
                        dst.fill(0.0);
                        continue;
                    }
                    let src_row = &chan[ii as usize * w..(ii as usize + 1) * w];
                    for (kj, d) in dst.iter_mut().enumerate() {
                        let jj = (oj * params.stride + kj) as isize - params.padding as isize;
                        *d = if jj < 0 || jj as usize >= w {
                            0.0
                        } else {
                            src_row[jj as usize]
                        };
                    }
                }
            }
        }
    }
}

/// Scatters an im2col-shaped gradient back onto the input (col2im).
#[allow(clippy::too_many_arguments)]
fn col2im_group(
    col: &[f32],
    c_start: usize,
    c_g: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    p: &Conv2dParams,
    oh: usize,
    ow: usize,
    out: &mut [f32],
) {
    let col_w = oh * ow;
    for c in 0..c_g {
        let chan = &mut out[(c_start + c) * h * w..(c_start + c + 1) * h * w];
        for ki in 0..kh {
            for kj in 0..kw {
                let row = ((c * kh + ki) * kw + kj) * col_w;
                for oi in 0..oh {
                    let ii = (oi * p.stride + ki) as isize - p.padding as isize;
                    if ii < 0 || ii as usize >= h {
                        continue;
                    }
                    let src = &col[row + oi * ow..row + (oi + 1) * ow];
                    for (oj, &v) in src.iter().enumerate() {
                        let jj = (oj * p.stride + kj) as isize - p.padding as isize;
                        if jj >= 0 && (jj as usize) < w {
                            chan[ii as usize * w + jj as usize] += v;
                        }
                    }
                }
            }
        }
    }
}

/// Forward 2-D convolution.
///
/// * `input` — `[n, c_in, h, w]`
/// * `weight` — `[c_out, c_in/groups, kh, kw]`
///
/// Returns `[n, c_out, oh, ow]`.
///
/// # Errors
///
/// Returns shape/rank/argument errors for malformed operands; see
/// [`Conv2dParams`].
pub fn conv2d(input: &Tensor, weight: &Tensor, params: &Conv2dParams) -> Result<Tensor> {
    let (n, c_in, h, w, c_out, kh, kw) = params.validate(input, weight)?;
    let (oh, ow) = (params.out_size(h, kh), params.out_size(w, kw));
    let g = params.groups;
    let (c_in_g, c_out_g) = (c_in / g, c_out / g);
    let col_rows = c_in_g * kh * kw;
    let col_w = oh * ow;

    let mut out = Tensor::zeros(&[n, c_out, oh, ow]);
    let img_len = c_out * col_w;
    if n == 0 || img_len == 0 {
        return Ok(out);
    }
    let img_cost = 2 * c_out * col_rows * col_w;
    let imgs_per_chunk = par::chunk_items(n, img_cost);
    let (in_data, w_data) = (input.data(), weight.data());
    par::for_each_chunk_mut(out.data_mut(), imgs_per_chunk * img_len, |ci, out_chunk| {
        for (local, out_img) in out_chunk.chunks_mut(img_len).enumerate() {
            let img = ci * imgs_per_chunk + local;
            let in_img = &in_data[img * c_in * h * w..(img + 1) * c_in * h * w];
            with_col_scratch(col_rows * col_w, |col| {
                for grp in 0..g {
                    im2col_group(
                        in_img,
                        grp * c_in_g,
                        c_in_g,
                        h,
                        w,
                        kh,
                        kw,
                        params,
                        oh,
                        ow,
                        col,
                    );
                    let w_grp = &w_data[grp * c_out_g * col_rows..(grp + 1) * c_out_g * col_rows];
                    let dst = &mut out_img[grp * c_out_g * col_w..(grp + 1) * c_out_g * col_w];
                    gemm(w_grp, col, dst, c_out_g, col_rows, col_w);
                }
            });
        }
    });
    Ok(out)
}

/// Gradient of [`conv2d`] w.r.t. the input.
///
/// * `grad_output` — `[n, c_out, oh, ow]`
///
/// Returns `[n, c_in, h, w]` where `input_dims = [n, c_in, h, w]` are the
/// original input dimensions.
///
/// # Errors
///
/// Returns shape errors when `grad_output`/`weight`/`input_dims` disagree.
pub fn conv2d_backward_input(
    grad_output: &Tensor,
    weight: &Tensor,
    input_dims: &[usize],
    params: &Conv2dParams,
) -> Result<Tensor> {
    if input_dims.len() != 4 {
        return Err(TensorError::RankMismatch {
            op: "conv2d_backward_input",
            expected: 4,
            actual: input_dims.len(),
        });
    }
    let probe = Tensor::zeros(input_dims);
    let (n, c_in, h, w, c_out, kh, kw) = params.validate(&probe, weight)?;
    let (oh, ow) = (params.out_size(h, kh), params.out_size(w, kw));
    if grad_output.dims() != [n, c_out, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_backward_input",
            lhs: grad_output.dims().to_vec(),
            rhs: vec![n, c_out, oh, ow],
        });
    }
    let g = params.groups;
    let (c_in_g, c_out_g) = (c_in / g, c_out / g);
    let col_rows = c_in_g * kh * kw;
    let col_w = oh * ow;

    let mut grad_in = Tensor::zeros(input_dims);
    let img_len = c_in * h * w;
    if n == 0 || img_len == 0 {
        return Ok(grad_in);
    }
    let img_cost = 2 * c_out * col_rows * col_w;
    let imgs_per_chunk = par::chunk_items(n, img_cost);
    let (go_data, w_data) = (grad_output.data(), weight.data());
    par::for_each_chunk_mut(
        grad_in.data_mut(),
        imgs_per_chunk * img_len,
        |ci, gi_chunk| {
            for (local, gi_img) in gi_chunk.chunks_mut(img_len).enumerate() {
                let img = ci * imgs_per_chunk + local;
                with_col_scratch(col_rows * col_w, |dcol| {
                    for grp in 0..g {
                        let go_base = img * c_out * col_w + grp * c_out_g * col_w;
                        let go = &go_data[go_base..go_base + c_out_g * col_w];
                        let w_grp =
                            &w_data[grp * c_out_g * col_rows..(grp + 1) * c_out_g * col_rows];
                        // dCol[col_rows, col_w] = Wᵀ · dY
                        dcol.fill(0.0);
                        gemm_at_b(w_grp, go, dcol, c_out_g, col_rows, col_w);
                        col2im_group(
                            dcol,
                            grp * c_in_g,
                            c_in_g,
                            h,
                            w,
                            kh,
                            kw,
                            params,
                            oh,
                            ow,
                            gi_img,
                        );
                    }
                });
            }
        },
    );
    Ok(grad_in)
}

/// Gradient of [`conv2d`] w.r.t. the weights.
///
/// Returns a tensor shaped like `weight_dims = [c_out, c_in/groups, kh, kw]`.
///
/// # Errors
///
/// Returns shape errors when operands disagree.
pub fn conv2d_backward_weight(
    input: &Tensor,
    grad_output: &Tensor,
    weight_dims: &[usize],
    params: &Conv2dParams,
) -> Result<Tensor> {
    if weight_dims.len() != 4 {
        return Err(TensorError::RankMismatch {
            op: "conv2d_backward_weight",
            expected: 4,
            actual: weight_dims.len(),
        });
    }
    let probe = Tensor::zeros(weight_dims);
    let (n, c_in, h, w, c_out, kh, kw) = params.validate(input, &probe)?;
    let (oh, ow) = (params.out_size(h, kh), params.out_size(w, kw));
    if grad_output.dims() != [n, c_out, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_backward_weight",
            lhs: grad_output.dims().to_vec(),
            rhs: vec![n, c_out, oh, ow],
        });
    }
    let g = params.groups;
    let (c_in_g, c_out_g) = (c_in / g, c_out / g);
    let col_rows = c_in_g * kh * kw;
    let col_w = oh * ow;

    let mut grad_w = Tensor::zeros(weight_dims);
    // Images stay serial on purpose: every image accumulates into the
    // same dW, and the serial loop fixes that order. The per-image GEMM
    // below still parallelises over dW rows (disjoint chunks).
    for img in 0..n {
        let in_img = &input.data()[img * c_in * h * w..(img + 1) * c_in * h * w];
        with_col_scratch(col_rows * col_w, |col| {
            for grp in 0..g {
                im2col_group(
                    in_img,
                    grp * c_in_g,
                    c_in_g,
                    h,
                    w,
                    kh,
                    kw,
                    params,
                    oh,
                    ow,
                    col,
                );
                let go_base = img * c_out * col_w + grp * c_out_g * col_w;
                let go = &grad_output.data()[go_base..go_base + c_out_g * col_w];
                // dW[c_out_g, col_rows] += dY · colᵀ
                let dst = &mut grad_w.data_mut()
                    [grp * c_out_g * col_rows..(grp + 1) * c_out_g * col_rows];
                gemm_a_bt(go, col, dst, c_out_g, col_rows, col_w);
            }
        });
    }
    Ok(grad_w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    /// Direct (non-im2col) reference convolution.
    fn naive_conv(input: &Tensor, weight: &Tensor, p: &Conv2dParams) -> Tensor {
        let (n, _c_in, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let (c_out, c_in_g, kh, kw) = (
            weight.dims()[0],
            weight.dims()[1],
            weight.dims()[2],
            weight.dims()[3],
        );
        let (oh, ow) = (p.out_size(h, kh), p.out_size(w, kw));
        let g = p.groups;
        let c_out_g = c_out / g;
        let mut out = Tensor::zeros(&[n, c_out, oh, ow]);
        for img in 0..n {
            for co in 0..c_out {
                let grp = co / c_out_g;
                for oi in 0..oh {
                    for oj in 0..ow {
                        let mut acc = 0.0;
                        for ci in 0..c_in_g {
                            let c_abs = grp * c_in_g + ci;
                            for ki in 0..kh {
                                for kj in 0..kw {
                                    let ii = (oi * p.stride + ki) as isize - p.padding as isize;
                                    let jj = (oj * p.stride + kj) as isize - p.padding as isize;
                                    if ii < 0 || jj < 0 || ii as usize >= h || jj as usize >= w {
                                        continue;
                                    }
                                    acc +=
                                        input.at(&[img, c_abs, ii as usize, jj as usize]).unwrap()
                                            * weight.at(&[co, ci, ki, kj]).unwrap();
                                }
                            }
                        }
                        out.set(&[img, co, oi, oj], acc).unwrap();
                    }
                }
            }
        }
        out
    }

    fn close(a: &Tensor, b: &Tensor, tol: f32) -> bool {
        a.dims() == b.dims()
            && a.data()
                .iter()
                .zip(b.data())
                .all(|(x, y)| (x - y).abs() <= tol)
    }

    #[test]
    fn forward_matches_naive_dense() {
        let mut r = rng::seeded(10);
        for &(stride, padding) in &[(1, 0), (1, 1), (2, 1)] {
            let p = Conv2dParams::new(stride, padding, 1);
            let x = rng::normal(&[2, 3, 6, 6], 1.0, &mut r);
            let w = rng::normal(&[4, 3, 3, 3], 1.0, &mut r);
            let got = conv2d(&x, &w, &p).unwrap();
            assert!(
                close(&got, &naive_conv(&x, &w, &p), 1e-4),
                "s={stride} p={padding}"
            );
        }
    }

    #[test]
    fn forward_matches_naive_grouped_and_depthwise() {
        let mut r = rng::seeded(11);
        // grouped: 4 channels, 2 groups
        let p = Conv2dParams::new(1, 1, 2);
        let x = rng::normal(&[1, 4, 5, 5], 1.0, &mut r);
        let w = rng::normal(&[6, 2, 3, 3], 1.0, &mut r);
        assert!(close(
            &conv2d(&x, &w, &p).unwrap(),
            &naive_conv(&x, &w, &p),
            1e-4
        ));
        // depthwise: groups == channels
        let p = Conv2dParams::new(2, 1, 4);
        let w = rng::normal(&[4, 1, 3, 3], 1.0, &mut r);
        assert!(close(
            &conv2d(&x, &w, &p).unwrap(),
            &naive_conv(&x, &w, &p),
            1e-4
        ));
    }

    #[test]
    fn backward_input_matches_finite_difference() {
        let mut r = rng::seeded(12);
        let p = Conv2dParams::new(1, 1, 1);
        let x = rng::normal(&[1, 2, 4, 4], 1.0, &mut r);
        let w = rng::normal(&[3, 2, 3, 3], 1.0, &mut r);
        let go = rng::normal(&[1, 3, 4, 4], 1.0, &mut r);
        let gi = conv2d_backward_input(&go, &w, x.dims(), &p).unwrap();
        // loss = sum(conv(x) * go); d loss / d x[k] via central differences
        let eps = 1e-2;
        for k in [0usize, 7, 15, 31] {
            let mut xp = x.clone();
            xp.data_mut()[k] += eps;
            let mut xm = x.clone();
            xm.data_mut()[k] -= eps;
            let lp: f32 = conv2d(&xp, &w, &p)
                .unwrap()
                .data()
                .iter()
                .zip(go.data())
                .map(|(a, b)| a * b)
                .sum();
            let lm: f32 = conv2d(&xm, &w, &p)
                .unwrap()
                .data()
                .iter()
                .zip(go.data())
                .map(|(a, b)| a * b)
                .sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - gi.data()[k]).abs() < 2e-2,
                "k={k} fd={fd} an={}",
                gi.data()[k]
            );
        }
    }

    #[test]
    fn backward_weight_matches_finite_difference() {
        let mut r = rng::seeded(13);
        let p = Conv2dParams::new(2, 1, 1);
        let x = rng::normal(&[2, 2, 5, 5], 1.0, &mut r);
        let w = rng::normal(&[3, 2, 3, 3], 1.0, &mut r);
        let oh = p.out_size(5, 3);
        let go = rng::normal(&[2, 3, oh, oh], 1.0, &mut r);
        let gw = conv2d_backward_weight(&x, &go, w.dims(), &p).unwrap();
        let eps = 1e-2;
        for k in [0usize, 5, 17, 53] {
            let mut wp = w.clone();
            wp.data_mut()[k] += eps;
            let mut wm = w.clone();
            wm.data_mut()[k] -= eps;
            let lp: f32 = conv2d(&x, &wp, &p)
                .unwrap()
                .data()
                .iter()
                .zip(go.data())
                .map(|(a, b)| a * b)
                .sum();
            let lm: f32 = conv2d(&x, &wm, &p)
                .unwrap()
                .data()
                .iter()
                .zip(go.data())
                .map(|(a, b)| a * b)
                .sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - gw.data()[k]).abs() < 5e-2,
                "k={k} fd={fd} an={}",
                gw.data()[k]
            );
        }
    }

    #[test]
    fn depthwise_backward_consistency() {
        let mut r = rng::seeded(14);
        let p = Conv2dParams::new(1, 1, 3);
        let x = rng::normal(&[1, 3, 4, 4], 1.0, &mut r);
        let w = rng::normal(&[3, 1, 3, 3], 1.0, &mut r);
        let go = rng::normal(&[1, 3, 4, 4], 1.0, &mut r);
        let gi = conv2d_backward_input(&go, &w, x.dims(), &p).unwrap();
        assert_eq!(gi.dims(), x.dims());
        let eps = 1e-2;
        let k = 10;
        let mut xp = x.clone();
        xp.data_mut()[k] += eps;
        let mut xm = x.clone();
        xm.data_mut()[k] -= eps;
        let f = |t: &Tensor| -> f32 {
            conv2d(t, &w, &p)
                .unwrap()
                .data()
                .iter()
                .zip(go.data())
                .map(|(a, b)| a * b)
                .sum()
        };
        let fd = (f(&xp) - f(&xm)) / (2.0 * eps);
        assert!((fd - gi.data()[k]).abs() < 2e-2);
    }

    #[test]
    fn patch_major_im2col_is_transpose_of_column_major() {
        // im2col_patches rows dotted with flattened weight rows must
        // reproduce conv2d exactly (same j-ascending accumulation order
        // as the blocked GEMM's k-ascending walk → bitwise equal).
        let mut r = rng::seeded(15);
        for &(groups, c_in, c_out) in &[(1usize, 3usize, 4usize), (2, 4, 6), (4, 4, 4)] {
            let p = Conv2dParams::new(2, 1, groups);
            let x = rng::normal(&[2, c_in, 5, 5], 1.0, &mut r);
            let wt = rng::normal(&[c_out, c_in / groups, 3, 3], 1.0, &mut r);
            let (oh, ow) = (p.out_size(5, 3), p.out_size(5, 3));
            let (c_in_g, c_out_g) = (c_in / groups, c_out / groups);
            let col_rows = c_in_g * 3 * 3;
            let expected = conv2d(&x, &wt, &p).unwrap();
            let mut patches = vec![0.0f32; oh * ow * col_rows];
            for img in 0..2 {
                let in_img = &x.data()[img * c_in * 25..(img + 1) * c_in * 25];
                for grp in 0..groups {
                    im2col_patches(
                        in_img,
                        grp * c_in_g,
                        c_in_g,
                        5,
                        5,
                        3,
                        3,
                        &p,
                        oh,
                        ow,
                        &mut patches,
                    );
                    for co in 0..c_out_g {
                        let w_row = &wt.data()
                            [(grp * c_out_g + co) * col_rows..(grp * c_out_g + co + 1) * col_rows];
                        for pi in 0..oh * ow {
                            let patch = &patches[pi * col_rows..(pi + 1) * col_rows];
                            let mut s = 0.0f32;
                            for (a, b) in patch.iter().zip(w_row.iter()) {
                                s += a * b;
                            }
                            let want = expected
                                .at(&[img, grp * c_out_g + co, pi / ow, pi % ow])
                                .unwrap();
                            assert!(
                                s.to_bits() == want.to_bits(),
                                "img={img} grp={grp} co={co} pi={pi}: {s} vs {want}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn rejects_invalid_configs() {
        let x = Tensor::zeros(&[1, 3, 4, 4]);
        let w = Tensor::zeros(&[4, 3, 3, 3]);
        assert!(conv2d(&x, &w, &Conv2dParams::new(0, 0, 1)).is_err());
        assert!(conv2d(&x, &w, &Conv2dParams::new(1, 0, 2)).is_err());
        let w_big = Tensor::zeros(&[4, 3, 9, 9]);
        assert!(conv2d(&x, &w_big, &Conv2dParams::default()).is_err());
        let w_badch = Tensor::zeros(&[4, 2, 3, 3]);
        assert!(conv2d(&x, &w_badch, &Conv2dParams::default()).is_err());
        let x3 = Tensor::zeros(&[3, 4, 4]);
        assert!(conv2d(&x3, &w, &Conv2dParams::default()).is_err());
    }

    #[test]
    fn output_shape_formula() {
        let p = Conv2dParams::new(2, 1, 1);
        assert_eq!(p.out_size(32, 3), 16);
        let p = Conv2dParams::new(1, 1, 1);
        assert_eq!(p.out_size(32, 3), 32);
    }
}
