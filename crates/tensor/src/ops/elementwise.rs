//! Element-wise kernels.
//!
//! These cover the arithmetic the training loop needs on same-shaped
//! operands. Broadcasting is intentionally not implemented — the layers in
//! `apt-nn` expand biases explicitly, which keeps every kernel O(n) and
//! trivially auditable.
//!
//! All kernels here are embarrassingly parallel (no cross-element
//! accumulation), so they chunk the output into fixed-size pieces and run
//! them on the [`crate::par`] pool; small tensors never leave the calling
//! thread. Results are bit-identical for every thread count.

use crate::{par, Result, Tensor, TensorError};

/// Elements per parallel chunk. Fixed (shape-independent), so chunk
/// boundaries never depend on the thread count.
const EW_CHUNK: usize = 16 * 1024;

fn check_same(op: &'static str, a: &Tensor, b: &Tensor) -> Result<()> {
    if !a.shape().same_as(b.shape()) {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    Ok(())
}

/// Parallel `out[i] = f(a[i])` into a fresh tensor shaped like `a`.
fn par_map(a: &Tensor, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
    let mut out = Tensor::zeros(a.dims());
    let ad = a.data();
    par::for_each_chunk_mut(out.data_mut(), EW_CHUNK, |ci, chunk| {
        let base = ci * EW_CHUNK;
        for (j, o) in chunk.iter_mut().enumerate() {
            *o = f(ad[base + j]);
        }
    });
    out
}

/// Parallel `out[i] = f(a[i], b[i])` into a fresh tensor shaped like `a`.
fn par_zip(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
    let mut out = Tensor::zeros(a.dims());
    let (ad, bd) = (a.data(), b.data());
    par::for_each_chunk_mut(out.data_mut(), EW_CHUNK, |ci, chunk| {
        let base = ci * EW_CHUNK;
        for (j, o) in chunk.iter_mut().enumerate() {
            *o = f(ad[base + j], bd[base + j]);
        }
    });
    out
}

/// Element-wise sum `a + b`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if shapes differ.
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_same("add", a, b)?;
    Ok(par_zip(a, b, |x, y| x + y))
}

/// Element-wise difference `a − b`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if shapes differ.
pub fn sub(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_same("sub", a, b)?;
    Ok(par_zip(a, b, |x, y| x - y))
}

/// Element-wise (Hadamard) product `a ⊙ b`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if shapes differ.
pub fn mul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_same("mul", a, b)?;
    Ok(par_zip(a, b, |x, y| x * y))
}

/// Scalar multiply `s · a` returning a new tensor.
pub fn scale(a: &Tensor, s: f32) -> Tensor {
    par_map(a, |x| x * s)
}

/// Scalar multiply in place.
pub fn scale_in_place(a: &mut Tensor, s: f32) {
    par::for_each_chunk_mut(a.data_mut(), EW_CHUNK, |_, chunk| {
        for v in chunk.iter_mut() {
            *v *= s;
        }
    });
}

/// In-place accumulate `a += b`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if shapes differ.
pub fn add_in_place(a: &mut Tensor, b: &Tensor) -> Result<()> {
    check_same("add_in_place", a, b)?;
    let bd = b.data();
    par::for_each_chunk_mut(a.data_mut(), EW_CHUNK, |ci, chunk| {
        let base = ci * EW_CHUNK;
        for (j, x) in chunk.iter_mut().enumerate() {
            *x += bd[base + j];
        }
    });
    Ok(())
}

/// BLAS-style `y += alpha · x` in place.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if shapes differ.
pub fn axpy(alpha: f32, x: &Tensor, y: &mut Tensor) -> Result<()> {
    check_same("axpy", y, x)?;
    let xd = x.data();
    par::for_each_chunk_mut(y.data_mut(), EW_CHUNK, |ci, chunk| {
        let base = ci * EW_CHUNK;
        for (j, yi) in chunk.iter_mut().enumerate() {
            *yi += alpha * xd[base + j];
        }
    });
    Ok(())
}

/// ReLU: `max(x, 0)` element-wise.
pub fn relu(a: &Tensor) -> Tensor {
    par_map(a, |x| x.max(0.0))
}

/// Gradient mask for ReLU: `grad ⊙ 1[input > 0]`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if shapes differ.
pub fn relu_backward(input: &Tensor, grad: &Tensor) -> Result<Tensor> {
    check_same("relu_backward", input, grad)?;
    Ok(par_zip(input, grad, |x, g| if x > 0.0 { g } else { 0.0 }))
}

/// Clamps every element into `[lo, hi]`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] if `lo > hi` or either bound is
/// not finite.
pub fn clamp(a: &Tensor, lo: f32, hi: f32) -> Result<Tensor> {
    if lo > hi || !lo.is_finite() || !hi.is_finite() {
        return Err(TensorError::InvalidArgument {
            op: "clamp",
            reason: format!("invalid range [{lo}, {hi}]"),
        });
    }
    Ok(par_map(a, |x| x.clamp(lo, hi)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_slice(v)
    }

    #[test]
    fn add_sub_mul() {
        let a = t(&[1.0, 2.0]);
        let b = t(&[3.0, -4.0]);
        assert_eq!(add(&a, &b).unwrap().data(), &[4.0, -2.0]);
        assert_eq!(sub(&a, &b).unwrap().data(), &[-2.0, 6.0]);
        assert_eq!(mul(&a, &b).unwrap().data(), &[3.0, -8.0]);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = t(&[1.0, 2.0]);
        let b = t(&[1.0]);
        assert!(add(&a, &b).is_err());
        assert!(sub(&a, &b).is_err());
        assert!(mul(&a, &b).is_err());
        let mut c = a.clone();
        assert!(add_in_place(&mut c, &b).is_err());
        assert!(axpy(1.0, &b, &mut c).is_err());
    }

    #[test]
    fn scale_variants() {
        let a = t(&[1.0, -2.0]);
        assert_eq!(scale(&a, 2.0).data(), &[2.0, -4.0]);
        let mut b = a.clone();
        scale_in_place(&mut b, -1.0);
        assert_eq!(b.data(), &[-1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let x = t(&[1.0, 1.0]);
        let mut y = t(&[0.5, -0.5]);
        axpy(2.0, &x, &mut y).unwrap();
        assert_eq!(y.data(), &[2.5, 1.5]);
    }

    #[test]
    fn relu_and_backward() {
        let x = t(&[-1.0, 0.0, 2.0]);
        assert_eq!(relu(&x).data(), &[0.0, 0.0, 2.0]);
        let g = t(&[10.0, 10.0, 10.0]);
        assert_eq!(relu_backward(&x, &g).unwrap().data(), &[0.0, 0.0, 10.0]);
    }

    #[test]
    fn clamp_validates_range() {
        let x = t(&[-5.0, 0.5, 5.0]);
        assert_eq!(clamp(&x, -1.0, 1.0).unwrap().data(), &[-1.0, 0.5, 1.0]);
        assert!(clamp(&x, 1.0, -1.0).is_err());
        assert!(clamp(&x, f32::NEG_INFINITY, 0.0).is_err());
    }
}
