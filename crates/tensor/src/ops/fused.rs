//! Fused slice-level kernels for compiled inference plans.
//!
//! The freeze/fusion compiler in `apt-nn` lowers a layer list into a flat
//! step program that runs on pre-planned arena slices instead of freshly
//! allocated [`Tensor`](crate::Tensor)s. These entry points give that
//! executor single-pass conv/linear kernels with the bias add and the
//! activation folded in as an **epilogue**, plus `_into` pooling variants
//! that write straight into a caller-provided slice.
//!
//! Bit-compatibility contract: every kernel here reuses the exact compute
//! cores of the unfused ops (`matmul_impl::gemm*`, the same
//! `im2col_group` staging and the same per-plane pooling loops), and the
//! epilogue applies bias-then-activation per element in the same order
//! the layer path applies them as separate passes. Element-wise passes
//! commute with chunking, so fused output is bit-identical to the
//! unfused sequence for every thread count.

use crate::ops::conv::{im2col_group, with_col_scratch, Conv2dParams};
use crate::ops::matmul_impl::{gemm, gemm_a_bt};
use crate::{par, Result, TensorError};

/// Activation applied in-register after a fused kernel's bias add.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Epilogue {
    /// No activation: the kernel output is the affine result.
    #[default]
    None,
    /// `y = max(x, 0)` — identical arithmetic to the `Relu` layer.
    Relu,
    /// `y = clamp(x, 0, 6)` — identical arithmetic to the `Relu6` layer.
    Relu6,
}

impl Epilogue {
    /// Applies the activation to a slice in place.
    pub fn apply(self, data: &mut [f32]) {
        match self {
            Epilogue::None => {}
            Epilogue::Relu => {
                for v in data {
                    *v = v.max(0.0);
                }
            }
            Epilogue::Relu6 => {
                for v in data {
                    *v = v.clamp(0.0, 6.0);
                }
            }
        }
    }

    /// Short display name for plan reports (`"-"`, `"relu"`, `"relu6"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Epilogue::None => "-",
            Epilogue::Relu => "relu",
            Epilogue::Relu6 => "relu6",
        }
    }
}

/// Fused fully-connected forward: `out = act(x·Wᵀ + b)` on flat slices.
///
/// * `input` — `[m × in_f]` row-major.
/// * `weight` — `[out_f × in_f]` row-major.
/// * `out` — `[m × out_f]`, fully overwritten.
///
/// Runs the same `gemm_a_bt` core as [`matmul_a_bt`](crate::ops::matmul_a_bt)
/// on the zeroed destination, then adds the bias per row and applies the
/// epilogue — bit-identical to the unfused matmul → bias-loop → map
/// sequence.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] when slice lengths disagree
/// with the given geometry.
#[allow(clippy::too_many_arguments)]
pub fn linear_bias_act(
    input: &[f32],
    weight: &[f32],
    out: &mut [f32],
    m: usize,
    in_f: usize,
    out_f: usize,
    bias: Option<&[f32]>,
    act: Epilogue,
) -> Result<()> {
    if input.len() != m * in_f {
        return Err(TensorError::LengthMismatch {
            expected: m * in_f,
            actual: input.len(),
        });
    }
    if weight.len() != out_f * in_f {
        return Err(TensorError::LengthMismatch {
            expected: out_f * in_f,
            actual: weight.len(),
        });
    }
    if out.len() != m * out_f {
        return Err(TensorError::LengthMismatch {
            expected: m * out_f,
            actual: out.len(),
        });
    }
    if let Some(b) = bias {
        if b.len() != out_f {
            return Err(TensorError::LengthMismatch {
                expected: out_f,
                actual: b.len(),
            });
        }
    }
    out.fill(0.0);
    gemm_a_bt(input, weight, out, m, out_f, in_f);
    if let Some(b) = bias {
        for row in out.chunks_mut(out_f) {
            for (y, &bj) in row.iter_mut().zip(b) {
                *y += bj;
            }
        }
    }
    act.apply(out);
    Ok(())
}

/// Fused 2-D convolution forward: `out = act(conv(x, W) + b)` on flat
/// NCHW slices.
///
/// * `input` — `[n, c_in, h, w]` flattened.
/// * `weight` — `[c_out, c_in/groups, kh, kh]` flattened (square kernel).
/// * `out` — `[n, c_out, oh, ow]` flattened, fully overwritten.
///
/// Replicates [`conv2d`](crate::ops::conv::conv2d)'s exact decomposition
/// (same per-image parallel chunking, same `im2col_group` staging, same
/// `gemm` core), then adds the per-channel bias and applies the epilogue
/// inside each image's disjoint output slice — bit-identical to the
/// unfused conv → bias → activation sequence for every thread count.
///
/// # Errors
///
/// Returns [`TensorError`] for zero stride/groups or mismatched slice
/// lengths.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_bias_act(
    input: &[f32],
    weight: &[f32],
    out: &mut [f32],
    n: usize,
    c_in: usize,
    h: usize,
    w: usize,
    c_out: usize,
    kernel: usize,
    params: &Conv2dParams,
    bias: Option<&[f32]>,
    act: Epilogue,
) -> Result<()> {
    let g = params.groups;
    if params.stride == 0
        || g == 0
        || !c_in.is_multiple_of(g)
        || !c_out.is_multiple_of(g)
        || kernel == 0
    {
        return Err(TensorError::InvalidArgument {
            op: "conv2d_bias_act",
            reason: format!(
                "bad geometry: stride {} groups {g} channels {c_in}->{c_out} kernel {kernel}",
                params.stride
            ),
        });
    }
    if h + 2 * params.padding < kernel || w + 2 * params.padding < kernel {
        return Err(TensorError::InvalidArgument {
            op: "conv2d_bias_act",
            reason: format!("kernel {kernel} larger than padded input {h}x{w}"),
        });
    }
    let (oh, ow) = (params.out_size(h, kernel), params.out_size(w, kernel));
    let (c_in_g, c_out_g) = (c_in / g, c_out / g);
    let col_rows = c_in_g * kernel * kernel;
    let col_w = oh * ow;
    if input.len() != n * c_in * h * w {
        return Err(TensorError::LengthMismatch {
            expected: n * c_in * h * w,
            actual: input.len(),
        });
    }
    if weight.len() != c_out * col_rows {
        return Err(TensorError::LengthMismatch {
            expected: c_out * col_rows,
            actual: weight.len(),
        });
    }
    if out.len() != n * c_out * col_w {
        return Err(TensorError::LengthMismatch {
            expected: n * c_out * col_w,
            actual: out.len(),
        });
    }
    if let Some(b) = bias {
        if b.len() != c_out {
            return Err(TensorError::LengthMismatch {
                expected: c_out,
                actual: b.len(),
            });
        }
    }
    out.fill(0.0);
    let img_len = c_out * col_w;
    if n == 0 || img_len == 0 {
        return Ok(());
    }
    let img_cost = 2 * c_out * col_rows * col_w;
    let imgs_per_chunk = par::chunk_items(n, img_cost);
    par::for_each_chunk_mut(out, imgs_per_chunk * img_len, |ci, out_chunk| {
        for (local, out_img) in out_chunk.chunks_mut(img_len).enumerate() {
            let img = ci * imgs_per_chunk + local;
            let in_img = &input[img * c_in * h * w..(img + 1) * c_in * h * w];
            with_col_scratch(col_rows * col_w, |col| {
                for grp in 0..g {
                    im2col_group(
                        in_img,
                        grp * c_in_g,
                        c_in_g,
                        h,
                        w,
                        kernel,
                        kernel,
                        params,
                        oh,
                        ow,
                        col,
                    );
                    let w_grp = &weight[grp * c_out_g * col_rows..(grp + 1) * c_out_g * col_rows];
                    let dst = &mut out_img[grp * c_out_g * col_w..(grp + 1) * c_out_g * col_w];
                    gemm(w_grp, col, dst, c_out_g, col_rows, col_w);
                }
            });
            if let Some(b) = bias {
                for (ch, plane) in out_img.chunks_mut(col_w).enumerate() {
                    let bch = b[ch];
                    for v in plane.iter_mut() {
                        *v += bch;
                    }
                }
            }
            act.apply(out_img);
        }
    });
    Ok(())
}

fn check_pool_geometry(
    op: &'static str,
    input_len: usize,
    out_len: usize,
    planes: usize,
    h: usize,
    w: usize,
    k: usize,
) -> Result<(usize, usize)> {
    if k == 0 || !h.is_multiple_of(k) || !w.is_multiple_of(k) {
        return Err(TensorError::InvalidArgument {
            op,
            reason: format!("window {k} must be >0 and divide {h}x{w}"),
        });
    }
    let (oh, ow) = (h / k, w / k);
    if input_len != planes * h * w {
        return Err(TensorError::LengthMismatch {
            expected: planes * h * w,
            actual: input_len,
        });
    }
    if out_len != planes * oh * ow {
        return Err(TensorError::LengthMismatch {
            expected: planes * oh * ow,
            actual: out_len,
        });
    }
    Ok((oh, ow))
}

/// Non-overlapping max pooling into a caller-provided slice.
///
/// `planes` is `n·c`; each `[h × w]` plane pools independently with the
/// same serial window walk as [`max_pool2d`](crate::ops::pool::max_pool2d)
/// (bit-identical output, no argmax table — this is a forward-only
/// serving kernel).
///
/// # Errors
///
/// Same geometry contract as [`max_pool2d`](crate::ops::pool::max_pool2d).
pub fn max_pool2d_into(
    input: &[f32],
    out: &mut [f32],
    planes: usize,
    h: usize,
    w: usize,
    k: usize,
) -> Result<()> {
    let (oh, ow) = check_pool_geometry("max_pool2d_into", input.len(), out.len(), planes, h, w, k)?;
    for (p, op) in out.chunks_mut(oh * ow).enumerate() {
        let base = p * h * w;
        for oi in 0..oh {
            for oj in 0..ow {
                let mut best = f32::NEG_INFINITY;
                for di in 0..k {
                    for dj in 0..k {
                        let v = input[base + (oi * k + di) * w + oj * k + dj];
                        if v > best {
                            best = v;
                        }
                    }
                }
                op[oi * ow + oj] = best;
            }
        }
    }
    Ok(())
}

/// Non-overlapping average pooling into a caller-provided slice.
///
/// Accumulates each window in the same `di`-then-`dj` order as
/// [`avg_pool2d`](crate::ops::pool::avg_pool2d), so output is
/// bit-identical to the tensor kernel.
///
/// # Errors
///
/// Same geometry contract as [`avg_pool2d`](crate::ops::pool::avg_pool2d).
pub fn avg_pool2d_into(
    input: &[f32],
    out: &mut [f32],
    planes: usize,
    h: usize,
    w: usize,
    k: usize,
) -> Result<()> {
    let (oh, ow) = check_pool_geometry("avg_pool2d_into", input.len(), out.len(), planes, h, w, k)?;
    let inv = 1.0 / (k * k) as f32;
    for (p, op) in out.chunks_mut(oh * ow).enumerate() {
        let base = p * h * w;
        for oi in 0..oh {
            for oj in 0..ow {
                let mut acc = 0.0;
                for di in 0..k {
                    for dj in 0..k {
                        acc += input[base + (oi * k + di) * w + oj * k + dj];
                    }
                }
                op[oi * ow + oj] = acc * inv;
            }
        }
    }
    Ok(())
}

/// Global average pooling `[planes, h·w] → [planes]` into a caller slice.
///
/// Uses the same serial `iter().sum()` per plane as
/// [`global_avg_pool`](crate::ops::pool::global_avg_pool), so output is
/// bit-identical.
///
/// # Errors
///
/// Returns [`TensorError`] for zero spatial size or length mismatches.
pub fn global_avg_pool_into(
    input: &[f32],
    out: &mut [f32],
    planes: usize,
    h: usize,
    w: usize,
) -> Result<()> {
    if h * w == 0 {
        return Err(TensorError::InvalidArgument {
            op: "global_avg_pool_into",
            reason: "zero spatial size".into(),
        });
    }
    if input.len() != planes * h * w {
        return Err(TensorError::LengthMismatch {
            expected: planes * h * w,
            actual: input.len(),
        });
    }
    if out.len() != planes {
        return Err(TensorError::LengthMismatch {
            expected: planes,
            actual: out.len(),
        });
    }
    let inv = 1.0 / (h * w) as f32;
    for (p, o) in out.iter_mut().enumerate() {
        let s: f32 = input[p * h * w..(p + 1) * h * w].iter().sum();
        *o = s * inv;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{self, pool};
    use crate::{rng, Tensor};

    fn assert_bits(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "[{i}] {x} vs {y}");
        }
    }

    #[test]
    fn fused_linear_matches_unfused_sequence_bitwise() {
        let mut r = rng::seeded(40);
        for &(m, in_f, out_f) in &[(3usize, 16usize, 6usize), (12, 32, 10)] {
            let x = rng::normal(&[m, in_f], 1.0, &mut r);
            let wt = rng::normal(&[out_f, in_f], 1.0, &mut r);
            let b = rng::normal(&[out_f], 1.0, &mut r);
            // layer-path reference: matmul_a_bt → per-row bias loop → relu map
            let mut want = ops::matmul_a_bt(&x, &wt).unwrap();
            for i in 0..m {
                for (y, &bj) in want.data_mut()[i * out_f..(i + 1) * out_f]
                    .iter_mut()
                    .zip(b.data())
                {
                    *y += bj;
                }
            }
            let want = want.map(|v| v.max(0.0));
            let mut got = vec![0.0f32; m * out_f];
            linear_bias_act(
                x.data(),
                wt.data(),
                &mut got,
                m,
                in_f,
                out_f,
                Some(b.data()),
                Epilogue::Relu,
            )
            .unwrap();
            assert_bits(&got, want.data());
        }
    }

    #[test]
    fn fused_conv_matches_unfused_sequence_bitwise() {
        let mut r = rng::seeded(41);
        for &(groups, c_in, c_out, stride) in &[(1usize, 3usize, 4usize, 1usize), (2, 4, 6, 2)] {
            let p = Conv2dParams::new(stride, 1, groups);
            let x = rng::normal(&[2, c_in, 6, 6], 1.0, &mut r);
            let wt = rng::normal(&[c_out, c_in / groups, 3, 3], 1.0, &mut r);
            let b = rng::normal(&[c_out], 1.0, &mut r);
            let mut want = ops::conv::conv2d(&x, &wt, &p).unwrap();
            let (n, c, oh, ow) = (
                want.dims()[0],
                want.dims()[1],
                want.dims()[2],
                want.dims()[3],
            );
            let wd = want.data_mut();
            for img in 0..n {
                for ch in 0..c {
                    let bch = b.data()[ch];
                    for v in &mut wd[(img * c + ch) * oh * ow..(img * c + ch + 1) * oh * ow] {
                        *v += bch;
                    }
                }
            }
            let want = want.map(|v| v.clamp(0.0, 6.0));
            let mut got = vec![0.0f32; want.len()];
            conv2d_bias_act(
                x.data(),
                wt.data(),
                &mut got,
                2,
                c_in,
                6,
                6,
                c_out,
                3,
                &p,
                Some(b.data()),
                Epilogue::Relu6,
            )
            .unwrap();
            assert_bits(&got, want.data());
        }
    }

    #[test]
    fn fused_conv_without_bias_or_act_is_plain_conv() {
        let mut r = rng::seeded(42);
        let p = Conv2dParams::new(1, 1, 1);
        let x = rng::normal(&[1, 3, 5, 5], 1.0, &mut r);
        let wt = rng::normal(&[4, 3, 3, 3], 1.0, &mut r);
        let want = ops::conv::conv2d(&x, &wt, &p).unwrap();
        let mut got = vec![0.0f32; want.len()];
        conv2d_bias_act(
            x.data(),
            wt.data(),
            &mut got,
            1,
            3,
            5,
            5,
            4,
            3,
            &p,
            None,
            Epilogue::None,
        )
        .unwrap();
        assert_bits(&got, want.data());
    }

    #[test]
    fn pool_into_variants_match_tensor_kernels_bitwise() {
        let mut r = rng::seeded(43);
        let x = rng::normal(&[2, 3, 4, 4], 1.0, &mut r);
        let mp = pool::max_pool2d(&x, 2).unwrap().output;
        let mut got = vec![0.0f32; mp.len()];
        max_pool2d_into(x.data(), &mut got, 6, 4, 4, 2).unwrap();
        assert_bits(&got, mp.data());

        let ap = pool::avg_pool2d(&x, 2).unwrap();
        let mut got = vec![0.0f32; ap.len()];
        avg_pool2d_into(x.data(), &mut got, 6, 4, 4, 2).unwrap();
        assert_bits(&got, ap.data());

        let gp = pool::global_avg_pool(&x).unwrap();
        let mut got = vec![0.0f32; gp.len()];
        global_avg_pool_into(x.data(), &mut got, 6, 4, 4).unwrap();
        assert_bits(&got, gp.data());
    }

    #[test]
    fn geometry_validation() {
        let p = Conv2dParams::new(1, 0, 1);
        let mut out = vec![0.0f32; 4];
        assert!(linear_bias_act(
            &[0.0; 4],
            &[0.0; 4],
            &mut out,
            2,
            2,
            2,
            Some(&[0.0]),
            Epilogue::None
        )
        .is_err());
        assert!(linear_bias_act(
            &[0.0; 3],
            &[0.0; 4],
            &mut out,
            2,
            2,
            2,
            None,
            Epilogue::None
        )
        .is_err());
        assert!(conv2d_bias_act(
            &[0.0; 9],
            &[0.0; 9],
            &mut out,
            1,
            1,
            3,
            3,
            1,
            5,
            &p,
            None,
            Epilogue::None
        )
        .is_err());
        assert!(conv2d_bias_act(
            &[0.0; 9],
            &[0.0; 9],
            &mut out,
            1,
            1,
            3,
            3,
            1,
            3,
            &Conv2dParams::new(0, 0, 1),
            None,
            Epilogue::None
        )
        .is_err());
        assert!(max_pool2d_into(&[0.0; 9], &mut out, 1, 3, 3, 2).is_err());
        assert!(avg_pool2d_into(&[0.0; 16], &mut out, 1, 4, 4, 0).is_err());
        assert!(global_avg_pool_into(&[0.0; 16], &mut out, 1, 4, 0).is_err());
        let _ = Tensor::zeros(&[1]);
    }

    #[test]
    fn fused_conv_is_thread_count_invariant() {
        let mut r = rng::seeded(44);
        let p = Conv2dParams::new(1, 1, 1);
        let x = rng::normal(&[4, 3, 6, 6], 1.0, &mut r);
        let wt = rng::normal(&[4, 3, 3, 3], 1.0, &mut r);
        let b = rng::normal(&[4], 1.0, &mut r);
        let run = |threads: usize| {
            par::with_threads(threads, || {
                let mut got = vec![0.0f32; 4 * 4 * 6 * 6];
                conv2d_bias_act(
                    x.data(),
                    wt.data(),
                    &mut got,
                    4,
                    3,
                    6,
                    6,
                    4,
                    3,
                    &p,
                    Some(b.data()),
                    Epilogue::Relu,
                )
                .unwrap();
                got
            })
        };
        assert_bits(&run(1), &run(4));
    }
}
