//! Integer-domain GEMM micro-kernels for the dequant-free serving lane.
//!
//! These kernels compute on quantised codes directly — no f32 weight
//! materialisation — and rescale **once per output element** at the end:
//!
//! * [`gemm_i8`] — `C[m×n] = A·Wᵀ` in pure integer arithmetic
//!   (`i8 × i8 → i32` accumulate). `A` is an activation panel of centered
//!   8-bit codes, `W` a weight panel with one output channel per row.
//! * [`gemm_i8_rescale`] — the fused serving kernel: the same integer
//!   GEMM plus the affine correction terms and per-output-channel
//!   rescale + bias straight to f32.
//! * [`gemm_i16_rescale`] — the `8 < k ≤ 16` weight tier
//!   (`i8 × i16 → i64` accumulate).
//!
//! ## Layout contract
//!
//! Both operands are **row-major panels over the shared dimension**: the
//! dot products run over contiguous memory on both sides, which is what
//! lets the inner loops autovectorise (`pmaddwd`-style on x86). Codes are
//! *centered*: `aq = q − 2^7` for the 8-bit activation grid and
//! `wq = q − 2^(k−1)` for a `k`-bit weight grid — exactly the payload the
//! tiered `CodeStore` already keeps, so panel construction is a copy, not
//! an arithmetic pass.
//!
//! ## Rescale math
//!
//! With activations `x̂_ij = Sx_i·(aq_ij + dx_i)` (per-row scale,
//! `dx_i = 2^7 − Zx_i`) and weights `ŵ_oj = Sw_o·(wq_oj + dw_o)`
//! (`dw_o = 2^(k−1) − Zw_o`), the f32 output expands to
//!
//! ```text
//! y[i,o] = Sx_i·Sw_o·( dot_io + dw_o·asum_i + dx_i·wsum_o + K·dx_i·dw_o ) + b_o
//! ```
//!
//! where `dot_io = Σ_j aq_ij·wq_oj` is the integer GEMM, `asum_i` the
//! activation row sum and `wsum_o` the weight row sum — both O(1) per
//! output element. The bracket is exact in `i64`; the scales multiply in
//! `f64` and round to f32 once. Integer addition is associative, so the
//! kernels are bit-identical for every thread count by construction.
//!
//! ## Overflow bounds
//!
//! An `i8 × i8` product is at most `2^14`, so an `i32` accumulator is
//! exact for shared dimensions up to `2^17` elements — far beyond any
//! im2col panel this workspace produces; callers must respect
//! [`MAX_I8_DOT_LEN`] (the panel builder in `apt-quant` enforces it and
//! falls back to the f32 lane otherwise). The `i16` tier accumulates in
//! `i64` and has no practical length limit.

use crate::par;
use std::cell::RefCell;

/// Largest shared dimension for which the `i8 × i8 → i32` accumulator is
/// provably exact (`2^31 / 2^14`, with headroom).
pub const MAX_I8_DOT_LEN: usize = 1 << 17;

thread_local! {
    /// `i8 → i16` widened copy of the activation panel, grown
    /// monotonically and reused across calls.
    static A16_SCRATCH: RefCell<Vec<i16>> = const { RefCell::new(Vec::new()) };
    /// `i8 → i16` widened copy of the weight panel.
    static W16_SCRATCH: RefCell<Vec<i16>> = const { RefCell::new(Vec::new()) };
    /// Per-worker pair-product staging buffer for the quad micro-kernel
    /// (`2·kk` i32 = four rows of `kk/2` pair sums).
    static PAIR_SCRATCH: RefCell<Vec<i32>> = const { RefCell::new(Vec::new()) };
}

/// Widens an `i8` code panel into the reusable `i16` scratch. One cheap
/// linear pass, amortised over the O(m·n·kk) GEMM that follows; the
/// widened copy is what lets the dot kernel take the packed
/// multiply-add path.
fn widen_i16(src: &[i8], dst: &mut Vec<i16>) {
    dst.clear();
    dst.extend(src.iter().map(|&v| i16::from(v)));
}

/// Per-operand metadata of the fused integer GEMM: everything needed to
/// turn an integer dot product back into f32.
///
/// Activation slices are indexed by output **row** `i < m`, weight slices
/// by output **column** (channel) `o < n`. Per-tensor weight scales are
/// expressed by splatting the same scale/offset into every channel slot.
#[derive(Debug, Clone, Copy)]
pub struct IntRescale<'a> {
    /// Per-channel weight scale `Sw_o`.
    pub w_scale: &'a [f32],
    /// Per-channel weight zero-point correction `dw_o = 2^(k−1) − Zw_o`.
    pub w_dw: &'a [i32],
    /// Per-channel weight code sum `wsum_o = Σ_j wq_oj`.
    pub w_sum: &'a [i64],
    /// Per-row activation scale `Sx_i`.
    pub act_scale: &'a [f32],
    /// Per-row activation zero-point correction `dx_i = 2^7 − Zx_i`.
    pub act_dx: &'a [i32],
    /// Per-row activation code sum `asum_i = Σ_j aq_ij`.
    pub act_sum: &'a [i64],
    /// Optional per-channel bias added after the rescale.
    pub bias: Option<&'a [f32]>,
}

/// Contiguous dot product over pre-widened `i16` codes. The
/// `i16 × i16 → i32` reduction is exactly the shape the x86 backend
/// lowers to `pmaddwd` (eight multiplies and four adds per instruction on
/// baseline SSE2), which is where the integer lane's throughput edge over
/// f32 comes from.
#[inline(always)]
fn dot_i8(a: &[i16], w: &[i16]) -> i32 {
    let mut s = 0i32;
    for (&x, &y) in a.iter().zip(w) {
        s += i32::from(x) * i32::from(y);
    }
    s
}

/// Pass 1 of the quad micro-kernel: pair sums of four weight rows against
/// one shared activation row, staged into `tmp` (`4 × kk/2` i32).
///
/// Each tmp element is `x₂ₚ·w₂ₚ + x₂ₚ₊₁·w₂ₚ₊₁` — precisely one `pmaddwd`
/// lane, so the loop compiles to one packed multiply-add plus one store
/// per four pairs, with the activation load shared by all four rows.
/// Kept `inline(never)`: given its own frame, LLVM register-allocates the
/// five streams cleanly instead of blending them into the caller.
#[inline(never)]
fn quad_pairs(a: &[i16], w0: &[i16], w1: &[i16], w2: &[i16], w3: &[i16], tmp: &mut [i32]) {
    let kk = a.len();
    let np = kk / 2;
    let (t0, rest) = tmp.split_at_mut(np);
    let (t1, rest) = rest.split_at_mut(np);
    let (t2, t3) = rest.split_at_mut(np);
    let (w0, w1, w2, w3) = (&w0[..kk], &w1[..kk], &w2[..kk], &w3[..kk]);
    for p in 0..np {
        let x0 = i32::from(a[2 * p]);
        let x1 = i32::from(a[2 * p + 1]);
        t0[p] = x0 * i32::from(w0[2 * p]) + x1 * i32::from(w0[2 * p + 1]);
        t1[p] = x0 * i32::from(w1[2 * p]) + x1 * i32::from(w1[2 * p + 1]);
        t2[p] = x0 * i32::from(w2[2 * p]) + x1 * i32::from(w2[2 * p + 1]);
        t3[p] = x0 * i32::from(w3[2 * p]) + x1 * i32::from(w3[2 * p + 1]);
    }
}

/// Pass 2 of the quad micro-kernel: reduce the four staged pair-sum rows
/// to four dot products (vectorised `paddd` chains).
#[inline(never)]
fn quad_sum(tmp: &[i32], np: usize) -> [i32; 4] {
    let (t0, rest) = tmp.split_at(np);
    let (t1, rest) = rest.split_at(np);
    let (t2, t3) = rest.split_at(np);
    let (mut s0, mut s1, mut s2, mut s3) = (0i32, 0i32, 0i32, 0i32);
    for p in 0..np {
        s0 += t0[p];
        s1 += t1[p];
        s2 += t2[p];
        s3 += t3[p];
    }
    [s0, s1, s2, s3]
}

/// Four dot products of one activation row against four consecutive
/// weight rows, via the two-pass staged quad kernel. Handles an odd
/// shared dimension with a scalar tail.
#[inline(always)]
fn dot4_i8(a: &[i16], w: &[i16], o: usize, kk: usize, tmp: &mut [i32]) -> [i32; 4] {
    let w0 = &w[o * kk..(o + 1) * kk];
    let w1 = &w[(o + 1) * kk..(o + 2) * kk];
    let w2 = &w[(o + 2) * kk..(o + 3) * kk];
    let w3 = &w[(o + 3) * kk..(o + 4) * kk];
    quad_pairs(a, w0, w1, w2, w3, tmp);
    let np = kk / 2;
    let mut s = quad_sum(tmp, np);
    for j in 2 * np..kk {
        let x = i32::from(a[j]);
        s[0] += x * i32::from(w0[j]);
        s[1] += x * i32::from(w1[j]);
        s[2] += x * i32::from(w2[j]);
        s[3] += x * i32::from(w3[j]);
    }
    s
}

/// Contiguous `i8 × i16` dot product with an exact `i64` accumulator.
#[inline(always)]
fn dot_i16(a: &[i8], w: &[i16]) -> i64 {
    let mut s = 0i64;
    for (&x, &y) in a.iter().zip(w) {
        s += i64::from(i32::from(x) * i32::from(y));
    }
    s
}

/// Turns one integer dot product into the final f32 output element.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn rescale(
    dot: i64,
    kk: i64,
    sx: f64,
    dx: i64,
    asum: i64,
    sw: f32,
    dw: i64,
    wsum: i64,
    bias: f32,
) -> f32 {
    let acc = dot + dw * asum + dx * wsum + kk * dx * dw;
    (sx * f64::from(sw) * acc as f64) as f32 + bias
}

/// `C[m×n] = A[m×kk] · Wᵀ` with `W` stored `[n×kk]`, pure integer
/// `i8 × i8 → i32`. `kk` must not exceed [`MAX_I8_DOT_LEN`].
///
/// Parallel over C row chunks; integer accumulation is exact, so the
/// result is identical for every thread count.
pub fn gemm_i8(a: &[i8], w: &[i8], c: &mut [i32], m: usize, n: usize, kk: usize) {
    debug_assert_eq!(a.len(), m * kk);
    debug_assert_eq!(w.len(), n * kk);
    debug_assert_eq!(c.len(), m * n);
    debug_assert!(kk <= MAX_I8_DOT_LEN);
    if m == 0 || n == 0 {
        return;
    }
    A16_SCRATCH.with(|ac| {
        W16_SCRATCH.with(|wc| {
            let mut a16 = ac.borrow_mut();
            let mut w16 = wc.borrow_mut();
            widen_i16(a, &mut a16);
            widen_i16(w, &mut w16);
            let (a16, w16) = (&a16[..], &w16[..]);
            let row_cost = 2 * n * kk.max(1);
            let run_rows = |c_rows: &mut [i32], row0: usize| {
                PAIR_SCRATCH.with(|pc| {
                    let mut tmp = pc.borrow_mut();
                    if tmp.len() < 2 * kk {
                        tmp.resize(2 * kk, 0);
                    }
                    let tmp = &mut tmp[..2 * kk];
                    for (r, c_row) in c_rows.chunks_mut(n).enumerate() {
                        let a_row = &a16[(row0 + r) * kk..(row0 + r + 1) * kk];
                        gemm_i8_row(a_row, w16, c_row, kk, tmp);
                    }
                })
            };
            if !par::worth_parallelising(m * row_cost) {
                run_rows(c, 0);
                return;
            }
            let rows_per_chunk = par::chunk_items(m, row_cost);
            par::for_each_chunk_mut(c, rows_per_chunk * n, |ci, c_rows| {
                run_rows(c_rows, ci * rows_per_chunk);
            });
        })
    });
}

/// One C row of [`gemm_i8`]: four weight rows (output channels) per pass,
/// sharing the activation row while it is hot in L1.
#[inline]
fn gemm_i8_row(a_row: &[i16], w: &[i16], c_row: &mut [i32], kk: usize, tmp: &mut [i32]) {
    let n = c_row.len();
    let mut o = 0;
    while o + 4 <= n {
        let d = dot4_i8(a_row, w, o, kk, tmp);
        c_row[o..o + 4].copy_from_slice(&d);
        o += 4;
    }
    while o < n {
        c_row[o] = dot_i8(a_row, &w[o * kk..(o + 1) * kk]);
        o += 1;
    }
}

/// The fused serving kernel: integer GEMM + per-output-channel rescale +
/// bias, writing f32 directly. Shapes as in [`gemm_i8`]; `p`'s slices
/// must cover `m` rows and `n` channels.
pub fn gemm_i8_rescale(
    a: &[i8],
    w: &[i8],
    out: &mut [f32],
    m: usize,
    n: usize,
    kk: usize,
    p: &IntRescale<'_>,
) {
    debug_assert_eq!(a.len(), m * kk);
    debug_assert_eq!(w.len(), n * kk);
    debug_assert_eq!(out.len(), m * n);
    debug_assert!(kk <= MAX_I8_DOT_LEN);
    debug_assert!(p.w_scale.len() >= n && p.w_dw.len() >= n && p.w_sum.len() >= n);
    debug_assert!(p.act_scale.len() >= m && p.act_dx.len() >= m && p.act_sum.len() >= m);
    if m == 0 || n == 0 {
        return;
    }
    A16_SCRATCH.with(|ac| {
        W16_SCRATCH.with(|wc| {
            let mut a16 = ac.borrow_mut();
            let mut w16 = wc.borrow_mut();
            widen_i16(a, &mut a16);
            widen_i16(w, &mut w16);
            let (a16, w16) = (&a16[..], &w16[..]);
            let row_cost = 2 * n * kk.max(1);
            let run_rows = |o_rows: &mut [f32], row0: usize| {
                PAIR_SCRATCH.with(|pc| {
                    let mut tmp = pc.borrow_mut();
                    if tmp.len() < 2 * kk {
                        tmp.resize(2 * kk, 0);
                    }
                    let tmp = &mut tmp[..2 * kk];
                    for (r, o_row) in o_rows.chunks_mut(n).enumerate() {
                        let i = row0 + r;
                        let a_row = &a16[i * kk..(i + 1) * kk];
                        let (sx, dx, asum) = (
                            f64::from(p.act_scale[i]),
                            i64::from(p.act_dx[i]),
                            p.act_sum[i],
                        );
                        let mut o = 0;
                        while o + 4 <= n {
                            let d = dot4_i8(a_row, w16, o, kk, tmp);
                            for (q, &dq) in d.iter().enumerate() {
                                let oc = o + q;
                                let b = p.bias.map_or(0.0, |b| b[oc]);
                                o_row[oc] = rescale(
                                    i64::from(dq),
                                    kk as i64,
                                    sx,
                                    dx,
                                    asum,
                                    p.w_scale[oc],
                                    i64::from(p.w_dw[oc]),
                                    p.w_sum[oc],
                                    b,
                                );
                            }
                            o += 4;
                        }
                        while o < n {
                            let d = i64::from(dot_i8(a_row, &w16[o * kk..(o + 1) * kk]));
                            let b = p.bias.map_or(0.0, |b| b[o]);
                            o_row[o] = rescale(
                                d,
                                kk as i64,
                                sx,
                                dx,
                                asum,
                                p.w_scale[o],
                                i64::from(p.w_dw[o]),
                                p.w_sum[o],
                                b,
                            );
                            o += 1;
                        }
                    }
                })
            };
            if !par::worth_parallelising(m * row_cost) {
                run_rows(out, 0);
                return;
            }
            let rows_per_chunk = par::chunk_items(m, row_cost);
            par::for_each_chunk_mut(out, rows_per_chunk * n, |ci, o_rows| {
                run_rows(o_rows, ci * rows_per_chunk);
            });
        })
    });
}

/// `8 < k ≤ 16` weight tier of [`gemm_i8_rescale`]: `i16` weight codes,
/// exact `i64` accumulation, otherwise identical semantics.
pub fn gemm_i16_rescale(
    a: &[i8],
    w: &[i16],
    out: &mut [f32],
    m: usize,
    n: usize,
    kk: usize,
    p: &IntRescale<'_>,
) {
    debug_assert_eq!(a.len(), m * kk);
    debug_assert_eq!(w.len(), n * kk);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    let row_cost = 2 * n * kk.max(1);
    let run_rows = |o_rows: &mut [f32], row0: usize| {
        for (r, o_row) in o_rows.chunks_mut(n).enumerate() {
            let i = row0 + r;
            let a_row = &a[i * kk..(i + 1) * kk];
            let (sx, dx, asum) = (
                f64::from(p.act_scale[i]),
                i64::from(p.act_dx[i]),
                p.act_sum[i],
            );
            for (o, out_v) in o_row.iter_mut().enumerate() {
                let d = dot_i16(a_row, &w[o * kk..(o + 1) * kk]);
                let b = p.bias.map_or(0.0, |b| b[o]);
                *out_v = rescale(
                    d,
                    kk as i64,
                    sx,
                    dx,
                    asum,
                    p.w_scale[o],
                    i64::from(p.w_dw[o]),
                    p.w_sum[o],
                    b,
                );
            }
        }
    };
    if !par::worth_parallelising(m * row_cost) {
        run_rows(out, 0);
        return;
    }
    let rows_per_chunk = par::chunk_items(m, row_cost);
    par::for_each_chunk_mut(out, rows_per_chunk * n, |ci, o_rows| {
        run_rows(o_rows, ci * rows_per_chunk);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_i8(a: &[i8], w: &[i8], m: usize, n: usize, kk: usize) -> Vec<i32> {
        let mut c = vec![0i32; m * n];
        for i in 0..m {
            for o in 0..n {
                let mut s = 0i32;
                for j in 0..kk {
                    s += i32::from(a[i * kk + j]) * i32::from(w[o * kk + j]);
                }
                c[i * n + o] = s;
            }
        }
        c
    }

    fn pseudo(seed: u64, lo: i64, hi: i64, len: usize) -> Vec<i64> {
        // Small deterministic LCG; spans the requested inclusive range.
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        (0..len)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                lo + ((s >> 33) as i64).rem_euclid(hi - lo + 1)
            })
            .collect()
    }

    #[test]
    fn gemm_i8_matches_naive() {
        for &(m, n, kk) in &[(1, 1, 1), (3, 5, 7), (8, 4, 64), (5, 9, 130), (0, 3, 4)] {
            let a: Vec<i8> = pseudo(1, -128, 127, m * kk)
                .iter()
                .map(|&v| v as i8)
                .collect();
            let w: Vec<i8> = pseudo(2, -128, 127, n * kk)
                .iter()
                .map(|&v| v as i8)
                .collect();
            let mut c = vec![0i32; m * n];
            gemm_i8(&a, &w, &mut c, m, n, kk);
            assert_eq!(c, naive_i8(&a, &w, m, n, kk), "m={m} n={n} kk={kk}");
        }
    }

    #[test]
    fn gemm_i8_thread_invariant() {
        let (m, n, kk) = (37, 23, 100);
        let a: Vec<i8> = pseudo(3, -128, 127, m * kk)
            .iter()
            .map(|&v| v as i8)
            .collect();
        let w: Vec<i8> = pseudo(4, -128, 127, n * kk)
            .iter()
            .map(|&v| v as i8)
            .collect();
        let reference = par::with_threads(1, || {
            let mut c = vec![0i32; m * n];
            gemm_i8(&a, &w, &mut c, m, n, kk);
            c
        });
        for threads in [2, 3, 7] {
            let got = par::with_threads(threads, || {
                let mut c = vec![0i32; m * n];
                gemm_i8(&a, &w, &mut c, m, n, kk);
                c
            });
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    #[test]
    fn rescale_reconstructs_affine_product() {
        // Build a random affine-quantised problem and check the fused
        // kernel against the dequantise-then-f64-matmul reference.
        let (m, n, kk) = (4, 6, 50);
        let aq: Vec<i8> = pseudo(5, -128, 127, m * kk)
            .iter()
            .map(|&v| v as i8)
            .collect();
        let wq: Vec<i8> = pseudo(6, -8, 7, n * kk).iter().map(|&v| v as i8).collect();
        let act_scale: Vec<f32> = (0..m).map(|i| 0.01 + 0.002 * i as f32).collect();
        let act_dx: Vec<i32> = (0..m).map(|i| 128 - 10 * i as i32).collect();
        let act_sum: Vec<i64> = (0..m)
            .map(|i| aq[i * kk..(i + 1) * kk].iter().map(|&v| i64::from(v)).sum())
            .collect();
        let w_scale: Vec<f32> = (0..n).map(|o| 0.1 + 0.01 * o as f32).collect();
        let w_dw: Vec<i32> = (0..n).map(|o| 8 - o as i32).collect();
        let w_sum: Vec<i64> = (0..n)
            .map(|o| wq[o * kk..(o + 1) * kk].iter().map(|&v| i64::from(v)).sum())
            .collect();
        let bias: Vec<f32> = (0..n).map(|o| o as f32 * 0.5).collect();
        let p = IntRescale {
            w_scale: &w_scale,
            w_dw: &w_dw,
            w_sum: &w_sum,
            act_scale: &act_scale,
            act_dx: &act_dx,
            act_sum: &act_sum,
            bias: Some(&bias),
        };
        let mut out = vec![0.0f32; m * n];
        gemm_i8_rescale(&aq, &wq, &mut out, m, n, kk, &p);
        // i16 tier must agree exactly on the same (i8-range) codes.
        let wq16: Vec<i16> = wq.iter().map(|&v| i16::from(v)).collect();
        let mut out16 = vec![0.0f32; m * n];
        gemm_i16_rescale(&aq, &wq16, &mut out16, m, n, kk, &p);
        for i in 0..m {
            for o in 0..n {
                let mut acc = 0.0f64;
                for j in 0..kk {
                    let x =
                        f64::from(act_scale[i]) * f64::from(i32::from(aq[i * kk + j]) + act_dx[i]);
                    let y = f64::from(w_scale[o]) * f64::from(i32::from(wq[o * kk + j]) + w_dw[o]);
                    acc += x * y;
                }
                let want = acc as f32 + bias[o];
                let got = out[i * n + o];
                assert!(
                    (want - got).abs() <= want.abs().max(1.0) * 1e-5,
                    "[{i},{o}] want={want} got={got}"
                );
                assert_eq!(
                    got.to_bits(),
                    out16[i * n + o].to_bits(),
                    "i16 tier differs"
                );
            }
        }
    }
}
