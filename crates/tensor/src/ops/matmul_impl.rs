//! Dense matrix multiplication.
//!
//! Three kernels cover every use in the training stack:
//!
//! * [`matmul`] — `C = A·B` (forward pass of linear layers, im2col conv).
//! * [`matmul_at_b`] — `C = Aᵀ·B` (weight gradients).
//! * [`matmul_a_bt`] — `C = A·Bᵀ` (input gradients).
//!
//! Each is a register/cache-blocked micro-kernel parallelised over output
//! rows with the [`crate::par`] pool. `matmul` tiles the shared dimension
//! (so a `KC`-row panel of B stays hot in cache) and processes C in quads
//! of rows that share each B-row load; `matmul_a_bt` packs Bᵀ into a
//! contiguous panel once and reuses the same blocked core (falling back to
//! a four-wide register dot kernel when C has too few rows to amortise the
//! transpose). Every per-element accumulation runs in the same order as
//! the naive serial loop (k ascending for `matmul` and `matmul_at_b`,
//! j ascending for `matmul_a_bt`), so results are bit-identical for every
//! thread count and across both `matmul_a_bt` paths.
//!
//! The old kernels skipped `aik == 0.0` terms; that branch defeated
//! autovectorisation and silently swallowed NaN/Inf coming from B (a
//! `0.0 × NaN` term was dropped instead of poisoning C), which could hide
//! corruption from the integrity sentinels. The blocked kernels have no
//! such branch: IEEE-754 propagation is faithful.
//!
//! The slice-level `gemm*` entry points are shared with the conv kernels,
//! which call them directly on im2col scratch buffers to avoid per-call
//! tensor allocation.

use crate::{par, Result, Tensor, TensorError};
use std::cell::RefCell;

/// Shared-dimension tile: one tile of B (`KC × n` floats) is streamed
/// through while a block of C rows stays resident.
const KC: usize = 128;
/// C-row quad size: four output rows share each B-row load.
const MR: usize = 4;
/// Minimum C-row count before [`gemm_a_bt`] packs Bᵀ into a contiguous
/// panel: below this the one-off transpose rivals the GEMM itself and the
/// register-dot kernel wins.
const ABT_PACK_MIN_ROWS: usize = 8;

thread_local! {
    /// Packed Bᵀ panel for the blocked `gemm_a_bt` path, grown
    /// monotonically and reused across calls.
    static BT_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    /// Per-chunk zeroed accumulator for the blocked `gemm_a_bt` path (so
    /// callers that `+=` into non-zero C keep the one-add-per-element
    /// semantics of the dot kernel).
    static ABT_ACC_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

fn check_matrix(op: &'static str, t: &Tensor) -> Result<(usize, usize)> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 2,
            actual: t.rank(),
        });
    }
    Ok((t.dims()[0], t.dims()[1]))
}

// ---------------------------------------------------------------------------
// Slice-level kernels (shared with ops::conv)
// ---------------------------------------------------------------------------

/// `C[m×n] += A[m×k] · B[k×n]` on raw slices, parallel over C row chunks.
pub(crate) fn gemm(ad: &[f32], bd: &[f32], cd: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(ad.len(), m * k);
    debug_assert_eq!(bd.len(), k * n);
    debug_assert_eq!(cd.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    let row_cost = 2 * k.max(1) * n;
    if !par::worth_parallelising(m * row_cost) {
        gemm_rows(ad, bd, cd, 0, k, n);
        return;
    }
    let rows_per_chunk = par::chunk_items(m, row_cost);
    par::for_each_chunk_mut(cd, rows_per_chunk * n, |ci, c_rows| {
        gemm_rows(ad, bd, c_rows, ci * rows_per_chunk, k, n);
    });
}

/// Serial core of [`gemm`] for C rows `row0..row0 + c_rows.len()/n`.
///
/// k is tiled so the active B panel stays cached, and C rows are walked
/// in quads that reuse each B row four times. Both blockings leave every
/// C element's accumulation order k-ascending — identical to the naive
/// i-k-j loop.
fn gemm_rows(ad: &[f32], bd: &[f32], c_rows: &mut [f32], row0: usize, k: usize, n: usize) {
    let rows = c_rows.len() / n;
    let mut k0 = 0;
    while k0 < k {
        let k1 = (k0 + KC).min(k);
        let mut i = 0;
        while i + MR <= rows {
            let block = &mut c_rows[i * n..(i + MR) * n];
            let (c0, rest) = block.split_at_mut(n);
            let (c1, rest) = rest.split_at_mut(n);
            let (c2, c3) = rest.split_at_mut(n);
            let a0 = &ad[(row0 + i) * k..(row0 + i + 1) * k];
            let a1 = &ad[(row0 + i + 1) * k..(row0 + i + 2) * k];
            let a2 = &ad[(row0 + i + 2) * k..(row0 + i + 3) * k];
            let a3 = &ad[(row0 + i + 3) * k..(row0 + i + 4) * k];
            for kk in k0..k1 {
                let b_row = &bd[kk * n..(kk + 1) * n];
                let (x0, x1, x2, x3) = (a0[kk], a1[kk], a2[kk], a3[kk]);
                // Zip chain (not indexing) so the bounds checks vanish and
                // the loop vectorises into four FMA streams.
                let quads = b_row
                    .iter()
                    .zip(c0.iter_mut())
                    .zip(c1.iter_mut())
                    .zip(c2.iter_mut())
                    .zip(c3.iter_mut());
                for ((((&bv, v0), v1), v2), v3) in quads {
                    *v0 += x0 * bv;
                    *v1 += x1 * bv;
                    *v2 += x2 * bv;
                    *v3 += x3 * bv;
                }
            }
            i += MR;
        }
        while i < rows {
            let c_row = &mut c_rows[i * n..(i + 1) * n];
            let a_row = &ad[(row0 + i) * k..(row0 + i + 1) * k];
            for kk in k0..k1 {
                let x = a_row[kk];
                let b_row = &bd[kk * n..(kk + 1) * n];
                for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                    *cv += x * bv;
                }
            }
            i += 1;
        }
        k0 = k1;
    }
}

/// `C[k×n] += Aᵀ·B` (A stored `[m×k]`) on raw slices, parallel over C row
/// chunks. Per C element the accumulation walks i = 0..m ascending,
/// matching the naive serial loop.
pub(crate) fn gemm_at_b(ad: &[f32], bd: &[f32], cd: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(ad.len(), m * k);
    debug_assert_eq!(bd.len(), m * n);
    debug_assert_eq!(cd.len(), k * n);
    if k == 0 || n == 0 {
        return;
    }
    let row_cost = 2 * m.max(1) * n;
    if !par::worth_parallelising(k * row_cost) {
        at_b_rows(ad, bd, cd, 0, m, k, n);
        return;
    }
    let rows_per_chunk = par::chunk_items(k, row_cost);
    par::for_each_chunk_mut(cd, rows_per_chunk * n, |ci, c_rows| {
        at_b_rows(ad, bd, c_rows, ci * rows_per_chunk, m, k, n);
    });
}

/// Serial core of [`gemm_at_b`] for C rows `kk0..kk0 + c_rows.len()/n`.
fn at_b_rows(ad: &[f32], bd: &[f32], c_rows: &mut [f32], kk0: usize, m: usize, k: usize, n: usize) {
    let kkn = c_rows.len() / n;
    for i in 0..m {
        let b_row = &bd[i * n..(i + 1) * n];
        let a_i = &ad[i * k + kk0..i * k + kk0 + kkn];
        for (r, &x) in a_i.iter().enumerate() {
            let c_row = &mut c_rows[r * n..(r + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                *cv += x * bv;
            }
        }
    }
}

/// `C[m×k] += A·Bᵀ` (B stored `[k×n]`) on raw slices, parallel over C row
/// chunks. Each C element is a j-ascending dot product, matching the
/// naive serial loop.
pub(crate) fn gemm_a_bt(ad: &[f32], bd: &[f32], cd: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(ad.len(), m * n);
    debug_assert_eq!(bd.len(), k * n);
    debug_assert_eq!(cd.len(), m * k);
    if m == 0 || k == 0 {
        return;
    }
    if m >= ABT_PACK_MIN_ROWS && n > 0 {
        gemm_a_bt_packed(ad, bd, cd, m, k, n);
        return;
    }
    let row_cost = 2 * k * n.max(1);
    if !par::worth_parallelising(m * row_cost) {
        a_bt_rows(ad, bd, cd, 0, k, n);
        return;
    }
    let rows_per_chunk = par::chunk_items(m, row_cost);
    par::for_each_chunk_mut(cd, rows_per_chunk * k, |ci, c_rows| {
        a_bt_rows(ad, bd, c_rows, ci * rows_per_chunk, k, n);
    });
}

/// Packed-Bᵀ path of [`gemm_a_bt`]: transposes B once into a contiguous
/// `[n×k]` panel so the inner kernel streams unit-stride rows (the strided
/// dot kernel ran at roughly half the `gemm` throughput), then reuses the
/// blocked [`gemm_rows`] core with the roles of `k` and `n` swapped.
///
/// Bit-compatibility with [`a_bt_rows`]: each C element there is a single
/// register dot product (j-ascending from `0.0`) added to C once. Here the
/// same j-ascending chain accumulates in a zeroed scratch element — the KC
/// tiling only pauses the chain, never reorders it — and is then added to C
/// once, so the f32 operation sequence per element is identical for both
/// zeroed (matmul) and pre-accumulated (conv backward-weight) destinations.
fn gemm_a_bt_packed(ad: &[f32], bd: &[f32], cd: &mut [f32], m: usize, k: usize, n: usize) {
    BT_SCRATCH.with(|cell| {
        let mut bt_buf = cell.borrow_mut();
        if bt_buf.len() < n * k {
            bt_buf.resize(n * k, 0.0);
        }
        let bt = &mut bt_buf[..n * k];
        for kk in 0..k {
            let b_row = &bd[kk * n..(kk + 1) * n];
            for (j, &v) in b_row.iter().enumerate() {
                bt[j * k + kk] = v;
            }
        }
        let bt: &[f32] = bt;
        let run = |c_rows: &mut [f32], row0: usize| {
            ABT_ACC_SCRATCH.with(|acc_cell| {
                let mut acc_buf = acc_cell.borrow_mut();
                if acc_buf.len() < c_rows.len() {
                    acc_buf.resize(c_rows.len(), 0.0);
                }
                let acc = &mut acc_buf[..c_rows.len()];
                acc.fill(0.0);
                // Shared dim is n, output width is k: C_chunk = A_chunk · Bᵀ.
                gemm_rows(ad, bt, acc, row0, n, k);
                for (cv, &sv) in c_rows.iter_mut().zip(acc.iter()) {
                    *cv += sv;
                }
            });
        };
        let row_cost = 2 * k * n;
        if !par::worth_parallelising(m * row_cost) {
            run(cd, 0);
            return;
        }
        let rows_per_chunk = par::chunk_items(m, row_cost);
        par::for_each_chunk_mut(cd, rows_per_chunk * k, |ci, c_rows| {
            run(c_rows, ci * rows_per_chunk);
        });
    });
}

/// Serial core of [`gemm_a_bt`] for C rows `row0..row0 + c_rows.len()/k`.
/// Four dot products run per pass over the A row, sharing its loads.
fn a_bt_rows(ad: &[f32], bd: &[f32], c_rows: &mut [f32], row0: usize, k: usize, n: usize) {
    let rows = c_rows.len() / k;
    for r in 0..rows {
        let a_row = &ad[(row0 + r) * n..(row0 + r + 1) * n];
        let c_row = &mut c_rows[r * k..(r + 1) * k];
        let mut kk = 0;
        while kk + 4 <= k {
            let b0 = &bd[kk * n..(kk + 1) * n];
            let b1 = &bd[(kk + 1) * n..(kk + 2) * n];
            let b2 = &bd[(kk + 2) * n..(kk + 3) * n];
            let b3 = &bd[(kk + 3) * n..(kk + 4) * n];
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for (j, &av) in a_row.iter().enumerate() {
                s0 += av * b0[j];
                s1 += av * b1[j];
                s2 += av * b2[j];
                s3 += av * b3[j];
            }
            c_row[kk] += s0;
            c_row[kk + 1] += s1;
            c_row[kk + 2] += s2;
            c_row[kk + 3] += s3;
            kk += 4;
        }
        while kk < k {
            let b_row = &bd[kk * n..(kk + 1) * n];
            let mut s = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row.iter()) {
                s += av * bv;
            }
            c_row[kk] += s;
            kk += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Public tensor-level API
// ---------------------------------------------------------------------------

/// `C[m×n] = A[m×k] · B[k×n]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] unless both operands are rank 2 and
/// [`TensorError::ShapeMismatch`] unless the inner dimensions agree.
///
/// ```
/// use apt_tensor::{Tensor, ops};
/// let a = Tensor::from_vec(vec![1., 2., 3., 4.], &[2, 2])?;
/// let b = Tensor::from_vec(vec![5., 6., 7., 8.], &[2, 2])?;
/// let c = ops::matmul(&a, &b)?;
/// assert_eq!(c.data(), &[19., 22., 43., 50.]);
/// # Ok::<(), apt_tensor::TensorError>(())
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, ka) = check_matrix("matmul", a)?;
    let (kb, n) = check_matrix("matmul", b)?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut c = Tensor::zeros(&[m, n]);
    gemm(a.data(), b.data(), c.data_mut(), m, ka, n);
    Ok(c)
}

/// `C[k×n] = Aᵀ[k×m] · B[m×n]` where `A` is stored as `[m×k]`.
///
/// Used for weight gradients (`dW = Xᵀ·dY`) without materialising a
/// transpose.
///
/// # Errors
///
/// Same contract as [`matmul`]; the shared dimension is `A`'s rows.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = check_matrix("matmul_at_b", a)?;
    let (mb, n) = check_matrix("matmul_at_b", b)?;
    if m != mb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_at_b",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut c = Tensor::zeros(&[k, n]);
    gemm_at_b(a.data(), b.data(), c.data_mut(), m, k, n);
    Ok(c)
}

/// `C[m×k] = A[m×n] · Bᵀ[n×k]` where `B` is stored as `[k×n]`.
///
/// Used for input gradients (`dX = dY·Wᵀ`) without materialising a
/// transpose.
///
/// # Errors
///
/// Same contract as [`matmul`]; the shared dimension is both operands'
/// columns.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, n) = check_matrix("matmul_a_bt", a)?;
    let (k, nb) = check_matrix("matmul_a_bt", b)?;
    if n != nb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_a_bt",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut c = Tensor::zeros(&[m, k]);
    gemm_a_bt(a.data(), b.data(), c.data_mut(), m, k, n);
    Ok(c)
}

/// Transposes a rank-2 tensor.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] unless the input is rank 2.
pub fn transpose(a: &Tensor) -> Result<Tensor> {
    let (m, n) = check_matrix("transpose", a)?;
    let mut out = Tensor::zeros(&[n, m]);
    let (ad, od) = (a.data(), out.data_mut());
    for i in 0..m {
        for j in 0..n {
            od[j * m + i] = ad[i * n + j];
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut c = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for kk in 0..k {
                    s += a.data()[i * k + kk] * b.data()[kk * n + j];
                }
                c.data_mut()[i * n + j] = s;
            }
        }
        c
    }

    fn close(a: &Tensor, b: &Tensor, tol: f32) -> bool {
        a.dims() == b.dims()
            && a.data()
                .iter()
                .zip(b.data())
                .all(|(x, y)| (x - y).abs() <= tol)
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = crate::rng::seeded(1);
        for &(m, k, n) in &[(1, 1, 1), (3, 4, 5), (7, 2, 9), (16, 16, 16)] {
            let a = crate::rng::normal(&[m, k], 1.0, &mut rng);
            let b = crate::rng::normal(&[k, n], 1.0, &mut rng);
            assert!(close(&matmul(&a, &b).unwrap(), &naive(&a, &b), 1e-4));
        }
    }

    #[test]
    fn blocked_matmul_is_bitwise_naive() {
        // The blocked kernel keeps each C element's accumulation order
        // k-ascending, so it must agree with the naive triple loop to the
        // last bit — not just to a tolerance.
        let mut rng = crate::rng::seeded(7);
        for &(m, k, n) in &[(1, 1, 1), (5, 3, 2), (9, 17, 11), (33, 40, 29)] {
            let a = crate::rng::normal(&[m, k], 1.0, &mut rng);
            let b = crate::rng::normal(&[k, n], 1.0, &mut rng);
            let c = matmul(&a, &b).unwrap();
            let r = naive(&a, &b);
            assert!(c
                .data()
                .iter()
                .zip(r.data())
                .all(|(x, y)| x.to_bits() == y.to_bits()));
        }
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let mut rng = crate::rng::seeded(2);
        let a = crate::rng::normal(&[6, 3], 1.0, &mut rng);
        let b = crate::rng::normal(&[6, 4], 1.0, &mut rng);
        let expected = matmul(&transpose(&a).unwrap(), &b).unwrap();
        assert!(close(&matmul_at_b(&a, &b).unwrap(), &expected, 1e-4));
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let mut rng = crate::rng::seeded(3);
        let a = crate::rng::normal(&[5, 7], 1.0, &mut rng);
        let b = crate::rng::normal(&[4, 7], 1.0, &mut rng);
        let expected = matmul(&a, &transpose(&b).unwrap()).unwrap();
        assert!(close(&matmul_a_bt(&a, &b).unwrap(), &expected, 1e-4));
    }

    #[test]
    fn packed_a_bt_is_bitwise_dot_kernel() {
        // The packed-Bᵀ path must reproduce the register-dot kernel to the
        // last bit — for zeroed C (matmul_a_bt) AND for destinations that
        // already hold partial sums (conv2d_backward_weight accumulates
        // per-image gradients straight into dW).
        let mut rng = crate::rng::seeded(11);
        for &(m, k, n) in &[
            (8, 1, 1),
            (8, 4, 3),
            (9, 7, 5),
            (33, 13, 150),
            (64, 32, 257),
        ] {
            let a = crate::rng::normal(&[m, n], 1.0, &mut rng);
            let b = crate::rng::normal(&[k, n], 1.0, &mut rng);
            let seed = crate::rng::normal(&[m, k], 1.0, &mut rng);

            let mut packed = seed.data().to_vec();
            gemm_a_bt(a.data(), b.data(), &mut packed, m, k, n);
            assert!(
                m >= ABT_PACK_MIN_ROWS,
                "shape must exercise the packed path"
            );

            let mut dotk = seed.data().to_vec();
            a_bt_rows(a.data(), b.data(), &mut dotk, 0, k, n);

            assert!(packed
                .iter()
                .zip(dotk.iter())
                .all(|(x, y)| x.to_bits() == y.to_bits()));
        }
    }

    #[test]
    fn packed_a_bt_matches_explicit_transpose() {
        let mut rng = crate::rng::seeded(12);
        let a = crate::rng::normal(&[16, 40], 1.0, &mut rng);
        let b = crate::rng::normal(&[9, 40], 1.0, &mut rng);
        let expected = matmul(&a, &transpose(&b).unwrap()).unwrap();
        assert!(close(&matmul_a_bt(&a, &b).unwrap(), &expected, 1e-4));
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3]).unwrap();
        let c = matmul(&a, &Tensor::eye(3)).unwrap();
        assert_eq!(c.data(), a.data());
    }

    #[test]
    fn zero_times_nan_in_b_reaches_c() {
        // Regression: the old kernel's `aik == 0.0` early-continue dropped
        // the 0·NaN product, so a NaN planted in B was invisible whenever
        // the matching A element was zero — corruption the integrity
        // sentinels could never see. IEEE-754 says 0·NaN = NaN.
        let a = Tensor::from_vec(vec![0.0, 1.0], &[1, 2]).unwrap();
        let b = Tensor::from_vec(vec![f32::NAN, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert!(c.data()[0].is_nan(), "0·NaN must poison C in matmul");
        assert_eq!(c.data()[1], 1.0 * 4.0 + 0.0 * 2.0);

        // Aᵀ·B: A = [[0], [1]] (stored [2×1]), NaN in B row 0.
        let a_t = Tensor::from_vec(vec![0.0, 1.0], &[2, 1]).unwrap();
        let c = matmul_at_b(&a_t, &b).unwrap();
        assert!(c.data()[0].is_nan(), "0·NaN must poison C in matmul_at_b");

        // A·Bᵀ: zero in A meets NaN in the matching B column.
        let b_t = Tensor::from_vec(vec![f32::NAN, 3.0], &[1, 2]).unwrap();
        let c = matmul_a_bt(&a, &b_t).unwrap();
        assert!(c.data()[0].is_nan(), "0·NaN must poison C in matmul_a_bt");
    }

    #[test]
    fn rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 5]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul_at_b(&a, &b).is_err());
        assert!(matmul_a_bt(&a, &b).is_err());
        let v = Tensor::zeros(&[3]);
        assert!(matmul(&v, &b).is_err());
        assert!(transpose(&v).is_err());
    }

    #[test]
    fn degenerate_dims_are_fine() {
        for &(m, k, n) in &[(0, 3, 4), (3, 0, 4), (3, 4, 0), (0, 0, 0), (1, 1, 1)] {
            let a = Tensor::zeros(&[m, k]);
            let b = Tensor::zeros(&[k, n]);
            let c = matmul(&a, &b).unwrap();
            assert_eq!(c.dims(), &[m, n]);
            let c = matmul_at_b(&a, &Tensor::zeros(&[m, n])).unwrap();
            assert_eq!(c.dims(), &[k, n]);
            let c = matmul_a_bt(&a, &Tensor::zeros(&[n, k])).unwrap();
            assert_eq!(c.dims(), &[m, n]);
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        let t = transpose(&a).unwrap();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(transpose(&t).unwrap().data(), a.data());
    }
}
