//! Dense matrix multiplication.
//!
//! Three kernels cover every use in the training stack:
//!
//! * [`matmul`] — `C = A·B` (forward pass of linear layers, im2col conv).
//! * [`matmul_at_b`] — `C = Aᵀ·B` (weight gradients).
//! * [`matmul_a_bt`] — `C = A·Bᵀ` (input gradients).
//!
//! The inner loop is the classic i-k-j ordering with an f32 accumulator row,
//! which keeps the B row hot in cache and autovectorises well — important
//! because the experiment harness runs whole training loops on one CPU core.

use crate::{Result, Tensor, TensorError};

fn check_matrix(op: &'static str, t: &Tensor) -> Result<(usize, usize)> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 2,
            actual: t.rank(),
        });
    }
    Ok((t.dims()[0], t.dims()[1]))
}

/// `C[m×n] = A[m×k] · B[k×n]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] unless both operands are rank 2 and
/// [`TensorError::ShapeMismatch`] unless the inner dimensions agree.
///
/// ```
/// use apt_tensor::{Tensor, ops};
/// let a = Tensor::from_vec(vec![1., 2., 3., 4.], &[2, 2])?;
/// let b = Tensor::from_vec(vec![5., 6., 7., 8.], &[2, 2])?;
/// let c = ops::matmul(&a, &b)?;
/// assert_eq!(c.data(), &[19., 22., 43., 50.]);
/// # Ok::<(), apt_tensor::TensorError>(())
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, ka) = check_matrix("matmul", a)?;
    let (kb, n) = check_matrix("matmul", b)?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut c = Tensor::zeros(&[m, n]);
    let (ad, bd, cd) = (a.data(), b.data(), c.data_mut());
    for i in 0..m {
        let c_row = &mut cd[i * n..(i + 1) * n];
        for (k, &aik) in ad[i * ka..(i + 1) * ka].iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let b_row = &bd[k * n..(k + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                *cv += aik * bv;
            }
        }
    }
    Ok(c)
}

/// `C[k×n] = Aᵀ[k×m] · B[m×n]` where `A` is stored as `[m×k]`.
///
/// Used for weight gradients (`dW = Xᵀ·dY`) without materialising a
/// transpose.
///
/// # Errors
///
/// Same contract as [`matmul`]; the shared dimension is `A`'s rows.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = check_matrix("matmul_at_b", a)?;
    let (mb, n) = check_matrix("matmul_at_b", b)?;
    if m != mb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_at_b",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut c = Tensor::zeros(&[k, n]);
    let (ad, bd, cd) = (a.data(), b.data(), c.data_mut());
    for i in 0..m {
        let b_row = &bd[i * n..(i + 1) * n];
        for (kk, &aik) in ad[i * k..(i + 1) * k].iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let c_row = &mut cd[kk * n..(kk + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                *cv += aik * bv;
            }
        }
    }
    Ok(c)
}

/// `C[m×k] = A[m×n] · Bᵀ[n×k]` where `B` is stored as `[k×n]`.
///
/// Used for input gradients (`dX = dY·Wᵀ`) without materialising a
/// transpose.
///
/// # Errors
///
/// Same contract as [`matmul`]; the shared dimension is both operands'
/// columns.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, n) = check_matrix("matmul_a_bt", a)?;
    let (k, nb) = check_matrix("matmul_a_bt", b)?;
    if n != nb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_a_bt",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut c = Tensor::zeros(&[m, k]);
    let (ad, bd, cd) = (a.data(), b.data(), c.data_mut());
    for i in 0..m {
        let a_row = &ad[i * n..(i + 1) * n];
        let c_row = &mut cd[i * k..(i + 1) * k];
        for (kk, cv) in c_row.iter_mut().enumerate() {
            let b_row = &bd[kk * n..(kk + 1) * n];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row.iter()) {
                acc += av * bv;
            }
            *cv += acc;
        }
    }
    Ok(c)
}

/// Transposes a rank-2 tensor.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] unless the input is rank 2.
pub fn transpose(a: &Tensor) -> Result<Tensor> {
    let (m, n) = check_matrix("transpose", a)?;
    let mut out = Tensor::zeros(&[n, m]);
    let (ad, od) = (a.data(), out.data_mut());
    for i in 0..m {
        for j in 0..n {
            od[j * m + i] = ad[i * n + j];
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut c = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for kk in 0..k {
                    s += a.data()[i * k + kk] * b.data()[kk * n + j];
                }
                c.data_mut()[i * n + j] = s;
            }
        }
        c
    }

    fn close(a: &Tensor, b: &Tensor, tol: f32) -> bool {
        a.dims() == b.dims()
            && a.data()
                .iter()
                .zip(b.data())
                .all(|(x, y)| (x - y).abs() <= tol)
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = crate::rng::seeded(1);
        for &(m, k, n) in &[(1, 1, 1), (3, 4, 5), (7, 2, 9), (16, 16, 16)] {
            let a = crate::rng::normal(&[m, k], 1.0, &mut rng);
            let b = crate::rng::normal(&[k, n], 1.0, &mut rng);
            assert!(close(&matmul(&a, &b).unwrap(), &naive(&a, &b), 1e-4));
        }
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let mut rng = crate::rng::seeded(2);
        let a = crate::rng::normal(&[6, 3], 1.0, &mut rng);
        let b = crate::rng::normal(&[6, 4], 1.0, &mut rng);
        let expected = matmul(&transpose(&a).unwrap(), &b).unwrap();
        assert!(close(&matmul_at_b(&a, &b).unwrap(), &expected, 1e-4));
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let mut rng = crate::rng::seeded(3);
        let a = crate::rng::normal(&[5, 7], 1.0, &mut rng);
        let b = crate::rng::normal(&[4, 7], 1.0, &mut rng);
        let expected = matmul(&a, &transpose(&b).unwrap()).unwrap();
        assert!(close(&matmul_a_bt(&a, &b).unwrap(), &expected, 1e-4));
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3]).unwrap();
        let c = matmul(&a, &Tensor::eye(3)).unwrap();
        assert_eq!(c.data(), a.data());
    }

    #[test]
    fn rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 5]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul_at_b(&a, &b).is_err());
        assert!(matmul_a_bt(&a, &b).is_err());
        let v = Tensor::zeros(&[3]);
        assert!(matmul(&v, &b).is_err());
        assert!(transpose(&v).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        let t = transpose(&a).unwrap();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(transpose(&t).unwrap().data(), a.data());
    }
}
