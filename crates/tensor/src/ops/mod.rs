//! Numerical kernels on [`Tensor`](crate::Tensor).
//!
//! Kernels are grouped by family:
//!
//! * [`elementwise`] — add/sub/mul/axpy/scale and friends.
//! * [`matmul`](self::matmul()) — cache-blocked GEMM plus transposed variants.
//! * [`int_gemm`] — integer-domain GEMM with fused per-channel rescale
//!   (the dequant-free serving lane's compute kernel).
//! * [`conv`] — 2-D convolution (im2col + GEMM) with both backward kernels.
//! * [`fused`] — single-pass conv/linear kernels with bias + activation
//!   epilogues for compiled inference plans.
//! * [`pool`] — max/average/global-average pooling with backward.
//! * [`reduce`] — sums, means, argmax and axis reductions.
//! * [`pad`] — zero-padding, cropping and flipping (data augmentation).
//! * [`softmax`] — row softmax / log-softmax and cross-entropy.
//!
//! All kernels validate shapes and return [`crate::Result`]; none panic on
//! malformed user input.

pub mod conv;
pub mod elementwise;
pub mod fused;
pub mod int_gemm;
mod matmul_impl;
pub mod pad;
pub mod pool;
pub mod reduce;
pub mod softmax;

pub use elementwise::{add, add_in_place, axpy, mul, scale, scale_in_place, sub};
pub use matmul_impl::{matmul, matmul_a_bt, matmul_at_b, transpose};
