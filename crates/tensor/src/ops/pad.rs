//! Spatial padding, cropping and flipping on NCHW/CHW tensors.
//!
//! These back the data-augmentation pipeline the paper uses for CIFAR
//! training (§IV): "4 pixels are padded on each side, and a 32x32 patch is
//! randomly cropped from the padded image or its horizontal flip".

use crate::{Result, Tensor, TensorError};

fn check_chw(op: &'static str, t: &Tensor) -> Result<(usize, usize, usize)> {
    if t.rank() != 3 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 3,
            actual: t.rank(),
        });
    }
    Ok((t.dims()[0], t.dims()[1], t.dims()[2]))
}

/// Zero-pads a CHW image by `p` pixels on each spatial side.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] unless the input is rank 3.
pub fn pad_chw(img: &Tensor, p: usize) -> Result<Tensor> {
    let (c, h, w) = check_chw("pad_chw", img)?;
    let (ph, pw) = (h + 2 * p, w + 2 * p);
    let mut out = Tensor::zeros(&[c, ph, pw]);
    let src = img.data();
    let dst = out.data_mut();
    for ch in 0..c {
        for i in 0..h {
            let s = ch * h * w + i * w;
            let d = ch * ph * pw + (i + p) * pw + p;
            dst[d..d + w].copy_from_slice(&src[s..s + w]);
        }
    }
    Ok(out)
}

/// Extracts an `[c, th, tw]` crop whose top-left corner is `(top, left)`.
///
/// # Errors
///
/// Returns an error if the crop window falls outside the image.
pub fn crop_chw(img: &Tensor, top: usize, left: usize, th: usize, tw: usize) -> Result<Tensor> {
    let (c, h, w) = check_chw("crop_chw", img)?;
    if top + th > h || left + tw > w {
        return Err(TensorError::InvalidArgument {
            op: "crop_chw",
            reason: format!("crop {th}x{tw}@({top},{left}) exceeds image {h}x{w}"),
        });
    }
    let mut out = Tensor::zeros(&[c, th, tw]);
    let src = img.data();
    let dst = out.data_mut();
    for ch in 0..c {
        for i in 0..th {
            let s = ch * h * w + (top + i) * w + left;
            let d = ch * th * tw + i * tw;
            dst[d..d + tw].copy_from_slice(&src[s..s + tw]);
        }
    }
    Ok(out)
}

/// Horizontally flips a CHW image (mirror along the width axis).
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] unless the input is rank 3.
pub fn hflip_chw(img: &Tensor) -> Result<Tensor> {
    let (c, h, w) = check_chw("hflip_chw", img)?;
    let mut out = Tensor::zeros(&[c, h, w]);
    let src = img.data();
    let dst = out.data_mut();
    for ch in 0..c {
        for i in 0..h {
            let row = ch * h * w + i * w;
            for j in 0..w {
                dst[row + j] = src[row + w - 1 - j];
            }
        }
    }
    Ok(out)
}

/// Stacks a batch of same-shaped CHW images into an NCHW tensor.
///
/// # Errors
///
/// Returns an error if the batch is empty or shapes disagree.
pub fn stack_chw(images: &[Tensor]) -> Result<Tensor> {
    let first = images.first().ok_or_else(|| TensorError::InvalidArgument {
        op: "stack_chw",
        reason: "empty batch".into(),
    })?;
    let (c, h, w) = check_chw("stack_chw", first)?;
    let mut out = Tensor::zeros(&[images.len(), c, h, w]);
    let item = c * h * w;
    for (idx, img) in images.iter().enumerate() {
        if img.dims() != [c, h, w] {
            return Err(TensorError::ShapeMismatch {
                op: "stack_chw",
                lhs: first.dims().to_vec(),
                rhs: img.dims().to_vec(),
            });
        }
        out.data_mut()[idx * item..(idx + 1) * item].copy_from_slice(img.data());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img2x2() -> Tensor {
        Tensor::from_vec(vec![1., 2., 3., 4.], &[1, 2, 2]).unwrap()
    }

    #[test]
    fn pad_places_image_centrally() {
        let p = pad_chw(&img2x2(), 1).unwrap();
        assert_eq!(p.dims(), &[1, 4, 4]);
        assert_eq!(p.at(&[0, 1, 1]).unwrap(), 1.0);
        assert_eq!(p.at(&[0, 2, 2]).unwrap(), 4.0);
        assert_eq!(p.at(&[0, 0, 0]).unwrap(), 0.0);
        assert_eq!(p.sum(), 10.0);
    }

    #[test]
    fn pad_zero_is_identity() {
        let x = img2x2();
        assert_eq!(pad_chw(&x, 0).unwrap(), x);
    }

    #[test]
    fn crop_inverse_of_pad() {
        let x = img2x2();
        let padded = pad_chw(&x, 2).unwrap();
        let back = crop_chw(&padded, 2, 2, 2, 2).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn crop_bounds_checked() {
        let x = img2x2();
        assert!(crop_chw(&x, 1, 1, 2, 2).is_err());
        assert!(crop_chw(&x, 0, 0, 3, 1).is_err());
    }

    #[test]
    fn hflip_mirrors_and_is_involutive() {
        let x = img2x2();
        let f = hflip_chw(&x).unwrap();
        assert_eq!(f.data(), &[2., 1., 4., 3.]);
        assert_eq!(hflip_chw(&f).unwrap(), x);
    }

    #[test]
    fn stack_builds_batch() {
        let x = img2x2();
        let b = stack_chw(&[x.clone(), x.clone(), x.clone()]).unwrap();
        assert_eq!(b.dims(), &[3, 1, 2, 2]);
        assert_eq!(b.sum(), 30.0);
        assert!(stack_chw(&[]).is_err());
        let y = Tensor::zeros(&[1, 3, 3]);
        assert!(stack_chw(&[x, y]).is_err());
    }

    #[test]
    fn rank_validation() {
        let bad = Tensor::zeros(&[2, 2]);
        assert!(pad_chw(&bad, 1).is_err());
        assert!(hflip_chw(&bad).is_err());
        assert!(crop_chw(&bad, 0, 0, 1, 1).is_err());
    }
}
