//! Pooling kernels (NCHW): max pooling, average pooling and global average
//! pooling, each with its backward pass.
//!
//! Forward passes and the dense backward passes parallelise over
//! `(image, channel)` planes — each plane owns a disjoint output slice
//! and is computed in serial order, so results are bit-identical for
//! every thread count. [`max_pool2d_backward`] stays serial: it scatters
//! through the argmax table, and scattered writes cannot be partitioned
//! by output region.

use crate::{par, Result, Tensor, TensorError};

fn check4(op: &'static str, t: &Tensor) -> Result<(usize, usize, usize, usize)> {
    if t.rank() != 4 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 4,
            actual: t.rank(),
        });
    }
    Ok((t.dims()[0], t.dims()[1], t.dims()[2], t.dims()[3]))
}

/// Result of a max-pool forward pass: the pooled tensor plus the argmax
/// indices needed by [`max_pool2d_backward`].
#[derive(Debug, Clone)]
pub struct MaxPoolOutput {
    /// Pooled activations `[n, c, oh, ow]`.
    pub output: Tensor,
    /// Flat input index of the winning element for every output element.
    pub argmax: Vec<usize>,
}

/// Max pooling with square window `k` and stride `k` (non-overlapping).
///
/// # Errors
///
/// Returns an error if the input is not rank 4, `k == 0`, or `k` does not
/// divide the spatial dimensions.
pub fn max_pool2d(input: &Tensor, k: usize) -> Result<MaxPoolOutput> {
    let (n, c, h, w) = check4("max_pool2d", input)?;
    if k == 0 || h % k != 0 || w % k != 0 {
        return Err(TensorError::InvalidArgument {
            op: "max_pool2d",
            reason: format!("window {k} must be >0 and divide {h}x{w}"),
        });
    }
    let (oh, ow) = (h / k, w / k);
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let mut argmax = vec![0usize; n * c * oh * ow];
    let x = input.data();
    let plane = oh * ow;
    if plane > 0 {
        let planes_per_chunk = par::chunk_items(n * c, h * w);
        par::for_each_chunk_mut2(
            out.data_mut(),
            planes_per_chunk * plane,
            &mut argmax,
            planes_per_chunk * plane,
            |ci, out_planes, arg_planes| {
                let p0 = ci * planes_per_chunk;
                for (local, (op, ap)) in out_planes
                    .chunks_mut(plane)
                    .zip(arg_planes.chunks_mut(plane))
                    .enumerate()
                {
                    let base = (p0 + local) * h * w;
                    for oi in 0..oh {
                        for oj in 0..ow {
                            let mut best = f32::NEG_INFINITY;
                            let mut best_idx = 0usize;
                            for di in 0..k {
                                for dj in 0..k {
                                    let idx = base + (oi * k + di) * w + oj * k + dj;
                                    if x[idx] > best {
                                        best = x[idx];
                                        best_idx = idx;
                                    }
                                }
                            }
                            op[oi * ow + oj] = best;
                            ap[oi * ow + oj] = best_idx;
                        }
                    }
                }
            },
        );
    }
    Ok(MaxPoolOutput {
        output: out,
        argmax,
    })
}

/// Backward pass of [`max_pool2d`]: routes each output gradient to the
/// winning input element.
///
/// # Errors
///
/// Returns an error if `grad_output` volume does not match `argmax` length.
pub fn max_pool2d_backward(
    grad_output: &Tensor,
    argmax: &[usize],
    input_dims: &[usize],
) -> Result<Tensor> {
    if grad_output.len() != argmax.len() {
        return Err(TensorError::LengthMismatch {
            expected: argmax.len(),
            actual: grad_output.len(),
        });
    }
    let mut grad_in = Tensor::zeros(input_dims);
    let gd = grad_in.data_mut();
    // Serial on purpose: this is a scatter through `argmax`, and nothing
    // bounds which input element a given output gradient lands on.
    for (&src, &g) in argmax.iter().zip(grad_output.data()) {
        if src >= gd.len() {
            return Err(TensorError::IndexOutOfBounds {
                index: src,
                bound: gd.len(),
            });
        }
        gd[src] += g;
    }
    Ok(grad_in)
}

/// Average pooling with square window `k` and stride `k`.
///
/// # Errors
///
/// Same contract as [`max_pool2d`].
pub fn avg_pool2d(input: &Tensor, k: usize) -> Result<Tensor> {
    let (n, c, h, w) = check4("avg_pool2d", input)?;
    if k == 0 || h % k != 0 || w % k != 0 {
        return Err(TensorError::InvalidArgument {
            op: "avg_pool2d",
            reason: format!("window {k} must be >0 and divide {h}x{w}"),
        });
    }
    let (oh, ow) = (h / k, w / k);
    let inv = 1.0 / (k * k) as f32;
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let x = input.data();
    let plane = oh * ow;
    if plane > 0 {
        let planes_per_chunk = par::chunk_items(n * c, h * w);
        par::for_each_chunk_mut(
            out.data_mut(),
            planes_per_chunk * plane,
            |ci, out_planes| {
                let p0 = ci * planes_per_chunk;
                for (local, op) in out_planes.chunks_mut(plane).enumerate() {
                    let base = (p0 + local) * h * w;
                    for oi in 0..oh {
                        for oj in 0..ow {
                            let mut acc = 0.0;
                            for di in 0..k {
                                for dj in 0..k {
                                    acc += x[base + (oi * k + di) * w + oj * k + dj];
                                }
                            }
                            op[oi * ow + oj] = acc * inv;
                        }
                    }
                }
            },
        );
    }
    Ok(out)
}

/// Backward pass of [`avg_pool2d`]: spreads each output gradient uniformly
/// over its window.
///
/// # Errors
///
/// Returns an error on rank/shape mismatch.
pub fn avg_pool2d_backward(grad_output: &Tensor, input_dims: &[usize], k: usize) -> Result<Tensor> {
    let (n, c, oh, ow) = check4("avg_pool2d_backward", grad_output)?;
    if input_dims.len() != 4 || input_dims[2] != oh * k || input_dims[3] != ow * k {
        return Err(TensorError::ShapeMismatch {
            op: "avg_pool2d_backward",
            lhs: grad_output.dims().to_vec(),
            rhs: input_dims.to_vec(),
        });
    }
    let (h, w) = (input_dims[2], input_dims[3]);
    let inv = 1.0 / (k * k) as f32;
    let mut grad_in = Tensor::zeros(input_dims);
    let go = grad_output.data();
    let plane = h * w;
    if plane > 0 && n * c > 0 {
        let planes_per_chunk = par::chunk_items(n * c, h * w);
        par::for_each_chunk_mut(
            grad_in.data_mut(),
            planes_per_chunk * plane,
            |ci, gi_planes| {
                let p0 = ci * planes_per_chunk;
                for (local, gp) in gi_planes.chunks_mut(plane).enumerate() {
                    let obase = (p0 + local) * oh * ow;
                    for oi in 0..oh {
                        for oj in 0..ow {
                            let g = go[obase + oi * ow + oj] * inv;
                            for di in 0..k {
                                for dj in 0..k {
                                    gp[(oi * k + di) * w + oj * k + dj] += g;
                                }
                            }
                        }
                    }
                }
            },
        );
    }
    Ok(grad_in)
}

/// Global average pooling: `[n, c, h, w] → [n, c]`.
///
/// # Errors
///
/// Returns an error unless the input is rank 4 with non-zero spatial size.
pub fn global_avg_pool(input: &Tensor) -> Result<Tensor> {
    let (n, c, h, w) = check4("global_avg_pool", input)?;
    if h * w == 0 {
        return Err(TensorError::InvalidArgument {
            op: "global_avg_pool",
            reason: "zero spatial size".into(),
        });
    }
    let inv = 1.0 / (h * w) as f32;
    let mut out = Tensor::zeros(&[n, c]);
    let x = input.data();
    let planes_per_chunk = par::chunk_items(n * c, h * w);
    par::for_each_chunk_mut(out.data_mut(), planes_per_chunk, |ci, planes| {
        let p0 = ci * planes_per_chunk;
        for (local, o) in planes.iter_mut().enumerate() {
            let base = (p0 + local) * h * w;
            let s: f32 = x[base..base + h * w].iter().sum();
            *o = s * inv;
        }
    });
    Ok(out)
}

/// Backward pass of [`global_avg_pool`].
///
/// # Errors
///
/// Returns an error on shape mismatch between `grad_output` (`[n, c]`) and
/// `input_dims`.
pub fn global_avg_pool_backward(grad_output: &Tensor, input_dims: &[usize]) -> Result<Tensor> {
    if grad_output.rank() != 2 || input_dims.len() != 4 {
        return Err(TensorError::ShapeMismatch {
            op: "global_avg_pool_backward",
            lhs: grad_output.dims().to_vec(),
            rhs: input_dims.to_vec(),
        });
    }
    let (n, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    if grad_output.dims() != [n, c] {
        return Err(TensorError::ShapeMismatch {
            op: "global_avg_pool_backward",
            lhs: grad_output.dims().to_vec(),
            rhs: vec![n, c],
        });
    }
    let inv = 1.0 / (h * w) as f32;
    let mut grad_in = Tensor::zeros(input_dims);
    let go = grad_output.data();
    let plane = h * w;
    if plane > 0 && n * c > 0 {
        let planes_per_chunk = par::chunk_items(n * c, plane);
        par::for_each_chunk_mut(
            grad_in.data_mut(),
            planes_per_chunk * plane,
            |ci, gi_planes| {
                let p0 = ci * planes_per_chunk;
                for (local, gp) in gi_planes.chunks_mut(plane).enumerate() {
                    gp.fill(go[p0 + local] * inv);
                }
            },
        );
    }
    Ok(grad_in)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_picks_maximum_and_routes_gradient() {
        let x = Tensor::from_vec(
            vec![
                1., 2., 3., 4., 5., 6., 7., 8., 9., 10., 11., 12., 13., 14., 15., 16.,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let MaxPoolOutput { output, argmax } = max_pool2d(&x, 2).unwrap();
        assert_eq!(output.data(), &[6., 8., 14., 16.]);
        let go = Tensor::from_vec(vec![1., 2., 3., 4.], &[1, 1, 2, 2]).unwrap();
        let gi = max_pool2d_backward(&go, &argmax, x.dims()).unwrap();
        assert_eq!(gi.at(&[0, 0, 1, 1]).unwrap(), 1.0);
        assert_eq!(gi.at(&[0, 0, 1, 3]).unwrap(), 2.0);
        assert_eq!(gi.at(&[0, 0, 3, 1]).unwrap(), 3.0);
        assert_eq!(gi.at(&[0, 0, 3, 3]).unwrap(), 4.0);
        assert_eq!(gi.sum(), 10.0);
    }

    #[test]
    fn avg_pool_and_backward_conserve_mass() {
        let x = Tensor::ones(&[2, 3, 4, 4]);
        let y = avg_pool2d(&x, 2).unwrap();
        assert_eq!(y.dims(), &[2, 3, 2, 2]);
        assert!(y.data().iter().all(|&v| (v - 1.0).abs() < 1e-6));
        let go = Tensor::ones(&[2, 3, 2, 2]);
        let gi = avg_pool2d_backward(&go, x.dims(), 2).unwrap();
        // each input cell receives 1/4 of one output gradient
        assert!(gi.data().iter().all(|&v| (v - 0.25).abs() < 1e-6));
        assert!((gi.sum() - go.sum()).abs() < 1e-4);
    }

    #[test]
    fn global_avg_pool_roundtrip() {
        let x = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[1, 2, 2, 2]).unwrap();
        let y = global_avg_pool(&x).unwrap();
        assert_eq!(y.dims(), &[1, 2]);
        assert_eq!(y.data(), &[1.5, 5.5]);
        let go = Tensor::from_vec(vec![4.0, 8.0], &[1, 2]).unwrap();
        let gi = global_avg_pool_backward(&go, x.dims()).unwrap();
        assert!(gi.data()[..4].iter().all(|&v| v == 1.0));
        assert!(gi.data()[4..].iter().all(|&v| v == 2.0));
    }

    #[test]
    fn invalid_windows_rejected() {
        let x = Tensor::zeros(&[1, 1, 5, 5]);
        assert!(max_pool2d(&x, 2).is_err());
        assert!(max_pool2d(&x, 0).is_err());
        assert!(avg_pool2d(&x, 3).is_err());
        let x3 = Tensor::zeros(&[5, 5]);
        assert!(max_pool2d(&x3, 1).is_err());
        assert!(global_avg_pool(&x3).is_err());
    }

    #[test]
    fn backward_shape_validation() {
        let go = Tensor::zeros(&[1, 1, 2, 2]);
        assert!(avg_pool2d_backward(&go, &[1, 1, 5, 5], 2).is_err());
        let go2 = Tensor::zeros(&[1, 2]);
        assert!(global_avg_pool_backward(&go2, &[1, 3, 2, 2]).is_err());
        assert!(max_pool2d_backward(&go, &[0, 1, 2], &[1, 1, 4, 4]).is_err());
    }
}
