//! Reductions: full-tensor and axis sums/means, argmax, and the row/column
//! reductions used by linear-layer backward passes.
//!
//! Axis reductions parallelise over **output** elements (columns for
//! [`sum_rows`], channels for [`sum_channels`] / [`channel_mean_var`],
//! rows for [`argmax_rows`]): each output element is reduced by one
//! thread in the same order as the serial loop, so results are
//! bit-identical for every thread count. Full-tensor scalar reductions
//! ([`mean_abs`]) stay serial — splitting them would need a reduction
//! tree, which changes the floating-point accumulation order.

use crate::{par, Result, Tensor, TensorError};

/// Sum over axis 0 of a rank-2 tensor: `[m, n] → [n]`.
///
/// Used for bias gradients (`db = Σ_rows dY`).
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] unless the input is rank 2.
pub fn sum_rows(a: &Tensor) -> Result<Tensor> {
    if a.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "sum_rows",
            expected: 2,
            actual: a.rank(),
        });
    }
    let (m, n) = (a.dims()[0], a.dims()[1]);
    let mut out = Tensor::zeros(&[n]);
    let ad = a.data();
    let cols_per_chunk = par::chunk_items(n, 2 * m.max(1));
    par::for_each_chunk_mut(out.data_mut(), cols_per_chunk, |ci, cols| {
        let col0 = ci * cols_per_chunk;
        for i in 0..m {
            let row = &ad[i * n + col0..i * n + col0 + cols.len()];
            for (o, &v) in cols.iter_mut().zip(row) {
                *o += v;
            }
        }
    });
    Ok(out)
}

/// Per-channel sum of an NCHW tensor: `[n, c, h, w] → [c]`.
///
/// Used for conv bias gradients and batch-norm statistics.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] unless the input is rank 4.
pub fn sum_channels(a: &Tensor) -> Result<Tensor> {
    if a.rank() != 4 {
        return Err(TensorError::RankMismatch {
            op: "sum_channels",
            expected: 4,
            actual: a.rank(),
        });
    }
    let (n, c, h, w) = (a.dims()[0], a.dims()[1], a.dims()[2], a.dims()[3]);
    let mut out = Tensor::zeros(&[c]);
    let x = a.data();
    let chans_per_chunk = par::chunk_items(c, n * h * w);
    par::for_each_chunk_mut(out.data_mut(), chans_per_chunk, |ci, chans| {
        let ch0 = ci * chans_per_chunk;
        for (k, o) in chans.iter_mut().enumerate() {
            let ch = ch0 + k;
            for img in 0..n {
                let base = (img * c + ch) * h * w;
                *o += x[base..base + h * w].iter().sum::<f32>();
            }
        }
    });
    Ok(out)
}

/// Row-wise argmax of a rank-2 tensor: `[m, n] → Vec<usize>` of length `m`.
///
/// Ties resolve to the lowest index. Used to compute classification
/// accuracy from logits.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] unless the input is rank 2 and
/// [`TensorError::InvalidArgument`] if `n == 0`.
pub fn argmax_rows(a: &Tensor) -> Result<Vec<usize>> {
    if a.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "argmax_rows",
            expected: 2,
            actual: a.rank(),
        });
    }
    let (m, n) = (a.dims()[0], a.dims()[1]);
    if n == 0 {
        return Err(TensorError::InvalidArgument {
            op: "argmax_rows",
            reason: "zero columns".into(),
        });
    }
    let mut out = vec![0usize; m];
    let ad = a.data();
    let rows_per_chunk = par::chunk_items(m, n);
    par::for_each_chunk_mut(&mut out, rows_per_chunk, |ci, rows| {
        let row0 = ci * rows_per_chunk;
        for (k, o) in rows.iter_mut().enumerate() {
            let i = row0 + k;
            let row = &ad[i * n..(i + 1) * n];
            let mut best = 0usize;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            *o = best;
        }
    });
    Ok(out)
}

/// Mean absolute value of all elements; 0.0 for empty tensors.
pub fn mean_abs(a: &Tensor) -> f32 {
    if a.is_empty() {
        return 0.0;
    }
    (a.data().iter().map(|&x| x.abs() as f64).sum::<f64>() / a.len() as f64) as f32
}

/// Per-channel mean and (biased) variance of an NCHW tensor, as used by
/// batch normalisation: returns `(mean[c], var[c])`.
///
/// # Errors
///
/// Returns errors for rank ≠ 4 or empty per-channel slices.
pub fn channel_mean_var(a: &Tensor) -> Result<(Tensor, Tensor)> {
    if a.rank() != 4 {
        return Err(TensorError::RankMismatch {
            op: "channel_mean_var",
            expected: 4,
            actual: a.rank(),
        });
    }
    let (n, c, h, w) = (a.dims()[0], a.dims()[1], a.dims()[2], a.dims()[3]);
    let count = n * h * w;
    if count == 0 {
        return Err(TensorError::InvalidArgument {
            op: "channel_mean_var",
            reason: "empty channel slices".into(),
        });
    }
    let mut mean = Tensor::zeros(&[c]);
    let mut var = Tensor::zeros(&[c]);
    let x = a.data();
    let chans_per_chunk = par::chunk_items(c, 4 * count);
    let (mean_d, var_d) = (mean.data_mut(), var.data_mut());
    par::for_each_chunk_mut2(
        mean_d,
        chans_per_chunk,
        var_d,
        chans_per_chunk,
        |ci, mean_c, var_c| {
            let ch0 = ci * chans_per_chunk;
            for (k, (mu_out, var_out)) in mean_c.iter_mut().zip(var_c.iter_mut()).enumerate() {
                let ch = ch0 + k;
                let mut s = 0.0f64;
                for img in 0..n {
                    let base = (img * c + ch) * h * w;
                    s += x[base..base + h * w].iter().map(|&v| v as f64).sum::<f64>();
                }
                let mu = s / count as f64;
                let mut sq = 0.0f64;
                for img in 0..n {
                    let base = (img * c + ch) * h * w;
                    sq += x[base..base + h * w]
                        .iter()
                        .map(|&v| {
                            let d = v as f64 - mu;
                            d * d
                        })
                        .sum::<f64>();
                }
                *mu_out = mu as f32;
                *var_out = (sq / count as f64) as f32;
            }
        },
    );
    Ok((mean, var))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_rows_basic() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3]).unwrap();
        assert_eq!(sum_rows(&a).unwrap().data(), &[5., 7., 9.]);
        assert!(sum_rows(&Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn sum_channels_basic() {
        let a = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[2, 2, 2, 2]).unwrap();
        let s = sum_channels(&a).unwrap();
        // channel 0: 0+1+2+3 + 8+9+10+11 = 44; channel 1: 4..7 + 12..15 = 76
        assert_eq!(s.data(), &[44.0, 76.0]);
        assert!(sum_channels(&Tensor::zeros(&[2, 2])).is_err());
    }

    #[test]
    fn argmax_rows_with_ties() {
        let a = Tensor::from_vec(vec![1., 3., 2., 5., 5., 0.], &[2, 3]).unwrap();
        assert_eq!(argmax_rows(&a).unwrap(), vec![1, 0]);
        assert!(argmax_rows(&Tensor::zeros(&[3])).is_err());
        assert!(argmax_rows(&Tensor::zeros(&[2, 0])).is_err());
    }

    #[test]
    fn mean_abs_basic() {
        let a = Tensor::from_slice(&[-2.0, 2.0, -4.0, 4.0]);
        assert_eq!(mean_abs(&a), 3.0);
        assert_eq!(mean_abs(&Tensor::from_vec(vec![], &[0]).unwrap()), 0.0);
    }

    #[test]
    fn channel_mean_var_matches_manual() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4., 10., 10., 10., 10.], &[1, 2, 2, 2]).unwrap();
        let (m, v) = channel_mean_var(&a).unwrap();
        assert_eq!(m.data(), &[2.5, 10.0]);
        assert!((v.data()[0] - 1.25).abs() < 1e-6);
        assert_eq!(v.data()[1], 0.0);
    }

    #[test]
    fn channel_mean_var_rejects_bad_input() {
        assert!(channel_mean_var(&Tensor::zeros(&[2, 2])).is_err());
        assert!(channel_mean_var(&Tensor::zeros(&[0, 2, 2, 2])).is_err());
    }
}
