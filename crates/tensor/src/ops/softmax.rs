//! Row softmax / log-softmax and cross-entropy loss with gradient.
//!
//! Implemented with the standard max-subtraction trick so large logits do
//! not overflow, and a fused softmax-cross-entropy backward
//! (`dlogits = (softmax − one_hot)/batch`) which is both faster and more
//! numerically stable than composing the two gradients.
//!
//! [`softmax_rows`] parallelises over rows (each row is normalised
//! independently, in serial order, so results are bit-identical for every
//! thread count); the scalar loss accumulation in [`cross_entropy`] stays
//! serial to pin its f64 summation order.

use crate::ops::elementwise;
use crate::{par, Result, Tensor, TensorError};

fn check_logits(op: &'static str, logits: &Tensor) -> Result<(usize, usize)> {
    if logits.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 2,
            actual: logits.rank(),
        });
    }
    let (m, n) = (logits.dims()[0], logits.dims()[1]);
    if n == 0 {
        return Err(TensorError::InvalidArgument {
            op,
            reason: "zero classes".into(),
        });
    }
    Ok((m, n))
}

/// Row-wise softmax of a `[batch, classes]` tensor.
///
/// # Errors
///
/// Returns an error unless the input is rank 2 with ≥ 1 column.
pub fn softmax_rows(logits: &Tensor) -> Result<Tensor> {
    let (m, n) = check_logits("softmax_rows", logits)?;
    let mut out = Tensor::zeros(&[m, n]);
    let ld = logits.data();
    let rows_per_chunk = par::chunk_items(m, 4 * n);
    par::for_each_chunk_mut(out.data_mut(), rows_per_chunk * n, |ci, out_rows| {
        let row0 = ci * rows_per_chunk;
        for (k, dst) in out_rows.chunks_mut(n).enumerate() {
            let i = row0 + k;
            let row = &ld[i * n..(i + 1) * n];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut z = 0.0f32;
            for (d, &x) in dst.iter_mut().zip(row) {
                *d = (x - max).exp();
                z += *d;
            }
            for d in dst.iter_mut() {
                *d /= z;
            }
        }
    });
    Ok(out)
}

/// Output of [`cross_entropy`]: mean loss plus the gradient w.r.t. logits.
#[derive(Debug, Clone)]
pub struct CrossEntropyOutput {
    /// Mean negative log-likelihood over the batch.
    pub loss: f32,
    /// `∂loss/∂logits`, shape `[batch, classes]` (already divided by batch).
    pub grad_logits: Tensor,
    /// Row-wise softmax probabilities (exposed per C-INTERMEDIATE; callers
    /// often want them for accuracy/confidence reporting).
    pub probs: Tensor,
}

/// Softmax cross-entropy between `logits` (`[batch, classes]`) and integer
/// `labels` (`len == batch`).
///
/// # Errors
///
/// Returns an error for rank/shape mismatches or out-of-range labels.
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<CrossEntropyOutput> {
    let (m, n) = check_logits("cross_entropy", logits)?;
    if labels.len() != m {
        return Err(TensorError::LengthMismatch {
            expected: m,
            actual: labels.len(),
        });
    }
    if m == 0 {
        return Err(TensorError::InvalidArgument {
            op: "cross_entropy",
            reason: "empty batch".into(),
        });
    }
    let probs = softmax_rows(logits)?;
    let mut grad = probs.clone();
    let mut loss = 0.0f64;
    let inv_m = 1.0 / m as f32;
    for (i, &label) in labels.iter().enumerate() {
        if label >= n {
            return Err(TensorError::IndexOutOfBounds {
                index: label,
                bound: n,
            });
        }
        let p = probs.data()[i * n + label].max(1e-12);
        loss -= (p as f64).ln();
        grad.data_mut()[i * n + label] -= 1.0;
    }
    elementwise::scale_in_place(&mut grad, inv_m);
    Ok(CrossEntropyOutput {
        loss: (loss / m as f64) as f32,
        grad_logits: grad,
        probs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = rng::normal(&[5, 7], 3.0, &mut rng::seeded(4));
        let s = softmax_rows(&x).unwrap();
        for i in 0..5 {
            let row_sum: f32 = s.data()[i * 7..(i + 1) * 7].iter().sum();
            assert!((row_sum - 1.0).abs() < 1e-5);
        }
        assert!(s.min().unwrap() >= 0.0);
    }

    #[test]
    fn softmax_is_shift_invariant_and_overflow_safe() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let b = a.map(|x| x + 1000.0);
        let sa = softmax_rows(&a).unwrap();
        let sb = softmax_rows(&b).unwrap();
        for (x, y) in sa.data().iter().zip(sb.data()) {
            assert!((x - y).abs() < 1e-6);
            assert!(x.is_finite());
        }
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Tensor::from_vec(vec![20.0, 0.0, 0.0, 0.0, 20.0, 0.0], &[2, 3]).unwrap();
        let out = cross_entropy(&logits, &[0, 1]).unwrap();
        assert!(out.loss < 1e-6);
    }

    #[test]
    fn cross_entropy_uniform_is_log_n() {
        let logits = Tensor::zeros(&[4, 10]);
        let out = cross_entropy(&logits, &[0, 3, 5, 9]).unwrap();
        assert!((out.loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut logits = rng::normal(&[3, 4], 1.0, &mut rng::seeded(6));
        let labels = [2usize, 0, 3];
        let out = cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3;
        for k in 0..logits.len() {
            let orig = logits.data()[k];
            logits.data_mut()[k] = orig + eps;
            let lp = cross_entropy(&logits, &labels).unwrap().loss;
            logits.data_mut()[k] = orig - eps;
            let lm = cross_entropy(&logits, &labels).unwrap().loss;
            logits.data_mut()[k] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - out.grad_logits.data()[k]).abs() < 1e-3,
                "k={k} fd={fd} an={}",
                out.grad_logits.data()[k]
            );
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = rng::normal(&[4, 6], 2.0, &mut rng::seeded(7));
        let out = cross_entropy(&logits, &[0, 1, 2, 3]).unwrap();
        for i in 0..4 {
            let s: f32 = out.grad_logits.data()[i * 6..(i + 1) * 6].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn validation_errors() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(cross_entropy(&logits, &[0]).is_err());
        assert!(cross_entropy(&logits, &[0, 5]).is_err());
        assert!(cross_entropy(&Tensor::zeros(&[3]), &[0]).is_err());
        assert!(cross_entropy(&Tensor::zeros(&[2, 0]), &[0, 0]).is_err());
        assert!(cross_entropy(&Tensor::zeros(&[0, 3]), &[]).is_err());
    }
}
