//! Deterministic in-tree thread pool and chunked-parallelism helpers.
//!
//! Every parallel kernel in this workspace partitions its **output** into
//! chunks whose boundaries depend only on the problem shape (never on the
//! thread count), and every chunk is computed with exactly the same
//! per-element accumulation order as the serial reference. Threads race
//! only for *which chunk to run next*, never for how a chunk is computed,
//! so results are bit-identical for every thread count — including one.
//! That property is what lets the PR 1/PR 2 resume- and integrity-digest
//! guarantees survive parallel execution unchanged.
//!
//! The pool is intentionally tiny: N−1 persistent workers fed over
//! `mpsc` channels, with the calling thread participating as the Nth
//! worker. There is no work stealing, no scoped-thread machinery and no
//! third-party dependency — chunk claiming is a single shared atomic
//! counter, and job completion is acknowledged over a per-job channel.
//!
//! Nested parallelism (e.g. conv parallelised over images calling matmul
//! internally) is handled with a thread-local re-entrancy flag: inside a
//! parallel region, further parallel calls run serially inline, which is
//! both deadlock-free and — by the determinism contract above —
//! observationally identical.

use std::cell::{Cell, RefCell};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::thread;

/// Target number of scalar operations per chunk. Chunk boundaries derive
/// from this constant and the problem shape only — **never** from the
/// thread count — which is the heart of the determinism contract.
const CHUNK_COST: usize = 16 * 1024;

/// Ops cheaper than this in total run inline without touching the pool.
const SERIAL_CUTOFF: usize = 32 * 1024;

thread_local! {
    /// True on pool workers (always) and on the caller while it
    /// participates in a parallel region; forces nested calls serial.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
    /// Stack of scoped pool overrides installed by [`with_pool`].
    static POOL_OVERRIDE: RefCell<Vec<Arc<ThreadPool>>> = const { RefCell::new(Vec::new()) };
}

/// Shared state of one in-flight parallel job, allocated on the caller's
/// stack and handed to workers as a raw pointer (the caller blocks until
/// every worker has acknowledged, so the borrow never dangles).
struct JobShared {
    /// The chunk body, lifetime-erased. Safety: see [`ThreadPool::run`].
    body: &'static (dyn Fn(usize) + Sync),
    /// Next unclaimed chunk index; `fetch_add` hands out each index once.
    next: AtomicUsize,
    n_chunks: usize,
    panicked: AtomicBool,
}

/// Raw pointer to a [`JobShared`], made sendable so it can cross the
/// channel into workers. Validity is enforced by the ack protocol.
struct JobPtr(*const JobShared);
// SAFETY: the pointee is only dereferenced between job receipt and ack
// send, and the caller keeps the pointee alive (blocked on the ack
// channel) for exactly that window. JobShared's fields are Sync.
#[allow(unsafe_code)]
unsafe impl Send for JobPtr {}

struct Job {
    shared: JobPtr,
    /// Dropped (not sent on) after the worker's final access to `shared`;
    /// the channel hangup is the completion signal and provides the
    /// happens-before edge back to the caller.
    _ack: mpsc::Sender<()>,
}

/// A fixed-size pool of persistent worker threads.
///
/// `ThreadPool::new(n)` spawns `n - 1` workers; the thread that submits a
/// job always participates as the `n`-th executor, so `new(1)` is a pure
/// serial pool with no threads at all.
pub struct ThreadPool {
    injectors: Vec<mpsc::Sender<Job>>,
    workers: Vec<thread::JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// Create a pool that executes jobs on `threads` threads (clamped to
    /// at least 1). Worker threads are spawned eagerly and live until the
    /// pool is dropped.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let mut injectors = Vec::with_capacity(threads - 1);
        let mut workers = Vec::with_capacity(threads - 1);
        for idx in 0..threads - 1 {
            let (tx, rx) = mpsc::channel::<Job>();
            let handle = thread::Builder::new()
                .name(format!("apt-par-{idx}"))
                .spawn(move || worker_loop(rx))
                .expect("apt-tensor: failed to spawn pool worker");
            injectors.push(tx);
            workers.push(handle);
        }
        Self {
            injectors,
            workers,
            threads,
        }
    }

    /// Number of threads (including the caller) this pool executes on.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `body(chunk_index)` for every index in `0..n_chunks`, spread
    /// across the pool. Chunk indices are claimed dynamically but each is
    /// executed exactly once; `body` must therefore write only to state
    /// owned by its chunk. Returns after every chunk has finished.
    ///
    /// Runs serially inline when the pool has one thread, when there is
    /// only one chunk, or when already inside a parallel region.
    pub fn run(&self, n_chunks: usize, body: &(dyn Fn(usize) + Sync)) {
        if n_chunks == 0 {
            return;
        }
        if self.injectors.is_empty() || n_chunks == 1 || IN_PARALLEL.with(Cell::get) {
            for i in 0..n_chunks {
                body(i);
            }
            return;
        }

        // SAFETY: we erase `body`'s lifetime to store it in JobShared.
        // The reference is only used by workers that hold a live Job, and
        // this function does not return until every such Job has been
        // dropped (observed via ack-channel hangup below), so the erased
        // reference never outlives the real borrow.
        #[allow(unsafe_code)]
        let body_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(body) };
        let shared = JobShared {
            body: body_static,
            next: AtomicUsize::new(0),
            n_chunks,
            panicked: AtomicBool::new(false),
        };

        let (ack_tx, ack_rx) = mpsc::channel::<()>();
        let mut dispatched = 0usize;
        for tx in &self.injectors {
            let job = Job {
                shared: JobPtr(&shared),
                _ack: ack_tx.clone(),
            };
            if tx.send(job).is_ok() {
                dispatched += 1;
            }
        }
        drop(ack_tx);

        // Participate as the Nth worker, with nested calls forced serial.
        IN_PARALLEL.with(|f| f.set(true));
        execute_chunks(&shared);
        IN_PARALLEL.with(|f| f.set(false));

        if dispatched > 0 {
            // Block until every worker has dropped its Job (and with it
            // the last reference to `shared`): the recv errors out only
            // once all ack senders are gone.
            while ack_rx.recv().is_ok() {}
        }

        if shared.panicked.load(Ordering::Acquire) {
            panic!("apt-tensor: a parallel kernel chunk panicked in a worker thread");
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Hang up the injectors so workers fall out of their recv loop,
        // then join them to guarantee no worker outlives the pool.
        self.injectors.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(rx: mpsc::Receiver<Job>) {
    // Workers only ever run inside a parallel region.
    IN_PARALLEL.with(|f| f.set(true));
    while let Ok(job) = rx.recv() {
        // SAFETY: the caller that sent this Job is blocked until we drop
        // it, so the JobShared behind the pointer is alive right now.
        #[allow(unsafe_code)]
        let shared: &JobShared = unsafe { &*job.shared.0 };
        execute_chunks(shared);
        drop(job); // last access to `shared`; hangup signals completion
    }
}

/// Claim and run chunks until none remain. Never unwinds: chunk panics
/// are caught and recorded so the pool survives and the caller re-raises.
fn execute_chunks(shared: &JobShared) {
    loop {
        let i = shared.next.fetch_add(1, Ordering::Relaxed);
        if i >= shared.n_chunks {
            break;
        }
        let body = shared.body;
        if catch_unwind(AssertUnwindSafe(|| body(i))).is_err() {
            shared.panicked.store(true, Ordering::Release);
        }
    }
}

// ---------------------------------------------------------------------------
// Global pool + scoped overrides
// ---------------------------------------------------------------------------

static GLOBAL_POOL: OnceLock<Mutex<Arc<ThreadPool>>> = OnceLock::new();

fn global_cell() -> &'static Mutex<Arc<ThreadPool>> {
    GLOBAL_POOL.get_or_init(|| Mutex::new(Arc::new(ThreadPool::new(default_threads()))))
}

/// Thread count used when nothing is configured: `APT_THREADS` if set to
/// a positive integer, otherwise the machine's available parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("APT_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Replace the global pool with one of `threads` threads (no-op when the
/// size already matches). Called from `--threads` CLI plumbing and the
/// trainer's `threads` config knob.
pub fn set_global_threads(threads: usize) {
    let cell = global_cell();
    let mut pool = cell.lock().unwrap_or_else(|e| e.into_inner());
    if pool.threads() != threads.max(1) {
        *pool = Arc::new(ThreadPool::new(threads));
    }
}

/// The pool the current thread's kernels will execute on: the innermost
/// [`with_pool`] override if one is active, else the global pool.
pub fn current_pool() -> Arc<ThreadPool> {
    if let Some(p) = POOL_OVERRIDE.with(|o| o.borrow().last().cloned()) {
        return p;
    }
    global_cell()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
}

/// Thread count kernels on this thread will currently use.
pub fn current_threads() -> usize {
    current_pool().threads()
}

/// Run `f` with `pool` installed as this thread's pool (scoped, nestable,
/// panic-safe). Used by determinism tests to compare thread counts.
pub fn with_pool<R>(pool: Arc<ThreadPool>, f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            POOL_OVERRIDE.with(|o| {
                o.borrow_mut().pop();
            });
        }
    }
    POOL_OVERRIDE.with(|o| o.borrow_mut().push(pool));
    let _guard = Guard;
    f()
}

/// Run `f` on a fresh scoped pool of `threads` threads.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    with_pool(Arc::new(ThreadPool::new(threads)), f)
}

// ---------------------------------------------------------------------------
// Chunking helpers
// ---------------------------------------------------------------------------

/// Items per chunk for `n_items` work items costing `cost_per_item`
/// scalar ops each. Depends only on the shape — never the thread count.
pub fn chunk_items(n_items: usize, cost_per_item: usize) -> usize {
    (CHUNK_COST / cost_per_item.max(1)).clamp(1, n_items.max(1))
}

/// Whether a kernel of `total_cost` scalar ops is worth parallelising at
/// all; below the cutoff the pool dispatch overhead dominates.
pub fn worth_parallelising(total_cost: usize) -> bool {
    total_cost >= SERIAL_CUTOFF
}

/// Mutable raw pointer wrapper that may cross threads. Safety rests on
/// the chunk helpers handing each chunk a disjoint range.
struct SendMutPtr<T>(*mut T);
// SAFETY: every use in this module derives disjoint subslices from the
// pointer (one per chunk index), and the underlying allocation outlives
// the parallel region because `ThreadPool::run` blocks until completion.
#[allow(unsafe_code)]
unsafe impl<T: Send> Send for SendMutPtr<T> {}
#[allow(unsafe_code)]
unsafe impl<T: Send> Sync for SendMutPtr<T> {}

impl<T> SendMutPtr<T> {
    /// Accessor (rather than field access) so closures capture the `Sync`
    /// wrapper, not the bare `!Sync` pointer inside it.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Split `out` into consecutive chunks of `chunk` elements (last chunk
/// ragged) and run `f(chunk_index, chunk_slice)` for each, in parallel on
/// the current pool. Chunk boundaries depend only on `out.len()` and
/// `chunk`, so any thread count produces identical writes.
pub fn for_each_chunk_mut<T, F>(out: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = out.len();
    if len == 0 {
        return;
    }
    let chunk = chunk.max(1);
    let n_chunks = len.div_ceil(chunk);
    if n_chunks == 1 {
        f(0, out);
        return;
    }
    let base = SendMutPtr(out.as_mut_ptr());
    current_pool().run(n_chunks, &|i| {
        let start = i * chunk;
        let end = (start + chunk).min(len);
        // SAFETY: chunk index `i` is claimed exactly once, so this range
        // [start, end) is written by exactly one thread; ranges of
        // distinct indices are disjoint; `out` outlives `run`.
        #[allow(unsafe_code)]
        let slice = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
        f(i, slice);
    });
}

/// Two-output variant of [`for_each_chunk_mut`] for kernels that fill a
/// pair of parallel arrays (e.g. max-pool output + argmax). `a` and `b`
/// must chunk into the same number of pieces.
pub fn for_each_chunk_mut2<A, B, F>(a: &mut [A], chunk_a: usize, b: &mut [B], chunk_b: usize, f: F)
where
    A: Send,
    B: Send,
    F: Fn(usize, &mut [A], &mut [B]) + Sync,
{
    let (la, lb) = (a.len(), b.len());
    if la == 0 && lb == 0 {
        return;
    }
    let chunk_a = chunk_a.max(1);
    let chunk_b = chunk_b.max(1);
    let n_chunks = la.div_ceil(chunk_a);
    assert_eq!(
        n_chunks,
        lb.div_ceil(chunk_b),
        "for_each_chunk_mut2: outputs disagree on chunk count"
    );
    if n_chunks == 1 {
        f(0, a, b);
        return;
    }
    let pa = SendMutPtr(a.as_mut_ptr());
    let pb = SendMutPtr(b.as_mut_ptr());
    current_pool().run(n_chunks, &|i| {
        let (sa, ea) = (i * chunk_a, ((i + 1) * chunk_a).min(la));
        let (sb, eb) = (i * chunk_b, ((i + 1) * chunk_b).min(lb));
        // SAFETY: as in `for_each_chunk_mut` — one claim per index, and
        // distinct indices map to disjoint ranges of both arrays.
        #[allow(unsafe_code)]
        let (slice_a, slice_b) = unsafe {
            (
                std::slice::from_raw_parts_mut(pa.get().add(sa), ea - sa),
                std::slice::from_raw_parts_mut(pb.get().add(sb), eb - sb),
            )
        };
        f(i, slice_a, slice_b);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn every_chunk_runs_exactly_once() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicU32> = (0..97).map(|_| AtomicU32::new(0)).collect();
        pool.run(hits.len(), &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn chunked_writes_cover_output() {
        for threads in [1, 2, 3, 7] {
            with_threads(threads, || {
                let mut out = vec![0u32; 1000];
                for_each_chunk_mut(&mut out, 13, |ci, chunk| {
                    for (j, v) in chunk.iter_mut().enumerate() {
                        *v = (ci * 13 + j) as u32;
                    }
                });
                assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32));
            });
        }
    }

    #[test]
    fn two_output_chunks_stay_aligned() {
        let mut a = vec![0u32; 60];
        let mut b = vec![0u64; 20];
        with_threads(3, || {
            for_each_chunk_mut2(&mut a, 6, &mut b, 2, |ci, ca, cb| {
                ca.fill(ci as u32);
                cb.fill(ci as u64);
            });
        });
        for i in 0..10 {
            assert!(a[i * 6..(i + 1) * 6].iter().all(|&v| v == i as u32));
            assert!(b[i * 2..(i + 1) * 2].iter().all(|&v| v == i as u64));
        }
    }

    #[test]
    fn nested_parallel_calls_run_inline() {
        with_threads(4, || {
            let mut outer = vec![0u32; 64];
            for_each_chunk_mut(&mut outer, 8, |_, chunk| {
                let mut inner = vec![0u32; 32];
                for_each_chunk_mut(&mut inner, 4, |ci, c| c.fill(ci as u32));
                chunk.fill(inner.iter().sum());
            });
            let expected: u32 = (0..8).map(|c| c * 4).sum();
            assert!(outer.iter().all(|&v| v == expected));
        });
    }

    #[test]
    fn worker_panic_is_reraised_and_pool_survives() {
        let pool = ThreadPool::new(3);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(16, &|i| {
                if i == 5 {
                    panic!("boom");
                }
            });
        }));
        assert!(caught.is_err());
        // The pool must still work after a panicked job.
        let hits: Vec<AtomicU32> = (0..8).map(|_| AtomicU32::new(0)).collect();
        pool.run(hits.len(), &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn chunk_items_is_shape_only() {
        assert_eq!(chunk_items(10, usize::MAX), 1);
        assert_eq!(chunk_items(10, 1), 10); // clamped to n_items
        assert_eq!(chunk_items(0, 1), 1);
        let a = chunk_items(1_000_000, 64);
        // Same shape, same answer — no thread-count input exists at all.
        assert_eq!(a, chunk_items(1_000_000, 64));
    }
}
