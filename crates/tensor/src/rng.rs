//! Deterministic random-tensor helpers.
//!
//! Every stochastic component of the reproduction (weight init, synthetic
//! data, shuffling, augmentation) draws from a seeded [`rand::rngs::StdRng`],
//! so experiments are bitwise reproducible given a seed. This module provides
//! the tensor-filling primitives on top of that.

use crate::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic RNG from a 64-bit seed.
///
/// ```
/// let mut a = apt_tensor::rng::seeded(42);
/// let mut b = apt_tensor::rng::seeded(42);
/// use rand::Rng;
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child RNG from a parent seed and a stream index so independent
/// components (data vs. init vs. shuffle) never share a stream.
pub fn substream(seed: u64, stream: u64) -> StdRng {
    // SplitMix64-style mixing keeps sub-streams decorrelated even for
    // adjacent (seed, stream) pairs.
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    StdRng::seed_from_u64(z)
}

/// Samples a standard normal value via Box–Muller.
pub fn standard_normal(rng: &mut StdRng) -> f32 {
    // Draw u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// Tensor with i.i.d. `N(0, std²)` entries.
pub fn normal(dims: &[usize], std: f32, rng: &mut StdRng) -> Tensor {
    let mut t = Tensor::zeros(dims);
    for x in t.data_mut() {
        *x = standard_normal(rng) * std;
    }
    t
}

/// Tensor with i.i.d. `U[lo, hi)` entries.
pub fn uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut StdRng) -> Tensor {
    let mut t = Tensor::zeros(dims);
    for x in t.data_mut() {
        *x = rng.gen_range(lo..hi);
    }
    t
}

/// He/Kaiming-normal initialisation for a weight tensor with `fan_in`
/// incoming connections (He et al. 2015, as used by the paper §IV).
pub fn he_normal(dims: &[usize], fan_in: usize, rng: &mut StdRng) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    normal(dims, std, rng)
}

/// In-place Fisher–Yates shuffle of an index vector.
pub fn shuffle_indices(indices: &mut [usize], rng: &mut StdRng) {
    for i in (1..indices.len()).rev() {
        let j = rng.gen_range(0..=i);
        indices.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let a = normal(&[32], 1.0, &mut seeded(7));
        let b = normal(&[32], 1.0, &mut seeded(7));
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn substreams_differ() {
        let a = normal(&[32], 1.0, &mut substream(7, 0));
        let b = normal(&[32], 1.0, &mut substream(7, 1));
        assert_ne!(a.data(), b.data());
    }

    #[test]
    fn normal_moments_are_plausible() {
        let t = normal(&[20_000], 2.0, &mut seeded(3));
        let mean = t.mean();
        let var = t
            .data()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / t.len() as f32;
        assert!(mean.abs() < 0.1, "mean={mean}");
        assert!((var - 4.0).abs() < 0.3, "var={var}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let t = uniform(&[10_000], -1.0, 2.0, &mut seeded(5));
        assert!(t.min().unwrap() >= -1.0);
        assert!(t.max().unwrap() < 2.0);
    }

    #[test]
    fn he_normal_scales_with_fan_in() {
        let wide = he_normal(&[5_000], 1000, &mut seeded(1));
        let narrow = he_normal(&[5_000], 10, &mut seeded(1));
        assert!(wide.l2_norm() < narrow.l2_norm());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut idx: Vec<usize> = (0..100).collect();
        shuffle_indices(&mut idx, &mut seeded(11));
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(idx, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn standard_normal_is_finite() {
        let mut rng = seeded(99);
        for _ in 0..10_000 {
            assert!(standard_normal(&mut rng).is_finite());
        }
    }
}
