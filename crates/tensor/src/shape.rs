use crate::TensorError;
use std::fmt;

/// A dynamically-ranked tensor shape (row-major / C order).
///
/// `Shape` owns its dimension list and provides the index arithmetic used by
/// every kernel in this crate: volume computation, row-major strides, and
/// flat-index conversion.
///
/// ```
/// use apt_tensor::Shape;
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.volume(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// assert_eq!(s.flat_index(&[1, 2, 3]).unwrap(), 23);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimensions.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// Returns the scalar shape (rank 0, volume 1).
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// The dimension list.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of dimensions; 1 for scalars).
    pub fn volume(&self) -> usize {
        self.dims.iter().product()
    }

    /// Size of axis `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index into a flat offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if `idx.len() != rank()` and
    /// [`TensorError::IndexOutOfBounds`] if any coordinate exceeds its axis.
    pub fn flat_index(&self, idx: &[usize]) -> crate::Result<usize> {
        if idx.len() != self.dims.len() {
            return Err(TensorError::RankMismatch {
                op: "flat_index",
                expected: self.dims.len(),
                actual: idx.len(),
            });
        }
        let mut flat = 0usize;
        let strides = self.strides();
        for (axis, (&i, &d)) in idx.iter().zip(self.dims.iter()).enumerate() {
            if i >= d {
                return Err(TensorError::IndexOutOfBounds { index: i, bound: d });
            }
            flat += i * strides[axis];
        }
        Ok(flat)
    }

    /// Inverse of [`flat_index`](Self::flat_index): converts a flat offset
    /// into per-axis coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `flat >= volume()`.
    pub fn multi_index(&self, flat: usize) -> crate::Result<Vec<usize>> {
        if flat >= self.volume() {
            return Err(TensorError::IndexOutOfBounds {
                index: flat,
                bound: self.volume(),
            });
        }
        let mut rem = flat;
        let mut out = vec![0usize; self.dims.len()];
        for (axis, &stride) in self.strides().iter().enumerate() {
            out[axis] = rem / stride;
            rem %= stride;
        }
        Ok(out)
    }

    /// `true` if the two shapes are element-wise compatible (identical dims).
    pub fn same_as(&self, other: &Shape) -> bool {
        self.dims == other.dims
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_strides() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.volume(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.volume(), 1);
        assert!(s.strides().is_empty());
    }

    #[test]
    fn flat_and_multi_index_roundtrip() {
        let s = Shape::new(&[3, 5, 7]);
        for flat in 0..s.volume() {
            let multi = s.multi_index(flat).unwrap();
            assert_eq!(s.flat_index(&multi).unwrap(), flat);
        }
    }

    #[test]
    fn flat_index_bounds() {
        let s = Shape::new(&[2, 2]);
        assert!(s.flat_index(&[2, 0]).is_err());
        assert!(s.flat_index(&[0]).is_err());
        assert!(s.multi_index(4).is_err());
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "(2, 3)");
        assert_eq!(Shape::scalar().to_string(), "()");
    }

    #[test]
    fn zero_dim_volume_is_zero() {
        let s = Shape::new(&[2, 0, 3]);
        assert_eq!(s.volume(), 0);
    }
}
