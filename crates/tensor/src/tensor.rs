use crate::{Shape, TensorError};
use std::fmt;

/// A contiguous, row-major, dynamically-shaped `f32` tensor.
///
/// `Tensor` is the single numerical container used across the APT
/// reproduction: activations, gradients, weights (in float view), images and
/// im2col buffers are all `Tensor`s. It is intentionally simple — contiguous
/// storage, no views/striding tricks — so every kernel in [`crate::ops`] can
/// be read top-to-bottom.
///
/// ```
/// use apt_tensor::Tensor;
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape().dims(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![0.0; shape.volume()],
            shape,
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![value; shape.volume()],
            shape,
        }
    }

    /// Creates a rank-0 (scalar) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            data: vec![value],
            shape: Shape::scalar(),
        }
    }

    /// Identity matrix of size `n × n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Builds a tensor from a data buffer and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not equal
    /// the shape volume.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> crate::Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor { data, shape })
    }

    /// Builds a 1-D tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            data: data.to_vec(),
            shape: Shape::new(&[data.len()]),
        }
    }

    /// The tensor shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Shorthand for `shape().dims()`.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Shorthand for `shape().rank()`.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying buffer (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Slice of the `i`-th entry along the first axis — for a `[n, d]`
    /// batch, row `i`'s `d` features; for `[n, c, h, w]`, image `i`'s
    /// `c·h·w` values. This is how the serving batcher splits a batched
    /// output back into per-request responses without copying twice.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for rank-0 tensors and
    /// [`TensorError::IndexOutOfBounds`] when `i` exceeds the first axis.
    pub fn row(&self, i: usize) -> crate::Result<&[f32]> {
        if self.rank() == 0 {
            return Err(TensorError::RankMismatch {
                op: "row",
                expected: 1,
                actual: 0,
            });
        }
        let n = self.shape.dims()[0];
        if i >= n {
            return Err(TensorError::IndexOutOfBounds { index: i, bound: n });
        }
        let stride = self.data.len() / n;
        Ok(&self.data[i * stride..(i + 1) * stride])
    }

    /// Element access by multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Propagates index errors from [`Shape::flat_index`].
    pub fn at(&self, idx: &[usize]) -> crate::Result<f32> {
        Ok(self.data[self.shape.flat_index(idx)?])
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Propagates index errors from [`Shape::flat_index`].
    pub fn set(&mut self, idx: &[usize], value: f32) -> crate::Result<()> {
        let flat = self.shape.flat_index(idx)?;
        self.data[flat] = value;
        Ok(())
    }

    /// Returns a tensor with the same data reinterpreted under a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the volumes differ.
    pub fn reshape(&self, dims: &[usize]) -> crate::Result<Tensor> {
        let shape = Shape::new(dims);
        if shape.volume() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: self.data.len(),
            });
        }
        Ok(Tensor {
            data: self.data.clone(),
            shape,
        })
    }

    /// In-place reshape (no data copy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the volumes differ.
    pub fn reshape_in_place(&mut self, dims: &[usize]) -> crate::Result<()> {
        let shape = Shape::new(dims);
        if shape.volume() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: self.data.len(),
            });
        }
        self.shape = shape;
        Ok(())
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors element-wise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> crate::Result<Tensor> {
        if !self.shape.same_as(&other.shape) {
            return Err(TensorError::ShapeMismatch {
                op: "zip",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Tensor {
            data,
            shape: self.shape.clone(),
        })
    }

    /// Fills the tensor with `value`.
    pub fn fill(&mut self, value: f32) {
        for x in &mut self.data {
            *x = value;
        }
    }

    /// Minimum element. Returns `None` for empty tensors.
    pub fn min(&self) -> Option<f32> {
        self.data.iter().copied().reduce(f32::min)
    }

    /// Maximum element. Returns `None` for empty tensors.
    pub fn max(&self) -> Option<f32> {
        self.data.iter().copied().reduce(f32::max)
    }

    /// Sum of all elements (f64 accumulator for stability).
    pub fn sum(&self) -> f32 {
        self.data.iter().map(|&x| x as f64).sum::<f64>() as f32
    }

    /// Mean of all elements; 0.0 for empty tensors.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// L2 norm of the flattened tensor.
    pub fn l2_norm(&self) -> f32 {
        self.data
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>()
            .sqrt() as f32
    }

    /// Maximum absolute element; 0.0 for empty tensors.
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::scalar(0.0)
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} [", self.shape)?;
        const MAX_SHOWN: usize = 8;
        for (i, x) in self.data.iter().take(MAX_SHOWN).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x:.4}")?;
        }
        if self.data.len() > MAX_SHOWN {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_slices_first_axis() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]).unwrap();
        assert_eq!(t.row(0).unwrap(), &[1.0, 2.0]);
        assert_eq!(t.row(2).unwrap(), &[5.0, 6.0]);
        assert!(t.row(3).is_err());
        let img = Tensor::zeros(&[2, 3, 4, 4]);
        assert_eq!(img.row(1).unwrap().len(), 48);
        assert!(Tensor::scalar(1.0).row(0).is_err());
    }

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros(&[2, 2]).sum(), 0.0);
        assert_eq!(Tensor::ones(&[3]).sum(), 3.0);
        assert_eq!(Tensor::full(&[2], 2.5).sum(), 5.0);
        assert_eq!(Tensor::scalar(7.0).data(), &[7.0]);
        let e = Tensor::eye(3);
        assert_eq!(e.sum(), 3.0);
        assert_eq!(e.at(&[1, 1]).unwrap(), 1.0);
        assert_eq!(e.at(&[0, 1]).unwrap(), 0.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).is_ok());
    }

    #[test]
    fn reshape_roundtrip() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]).unwrap();
        let r = t.reshape(&[2, 6]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[5]).is_err());
        let mut t2 = t.clone();
        t2.reshape_in_place(&[12]).unwrap();
        assert_eq!(t2.rank(), 1);
    }

    #[test]
    fn map_and_zip() {
        let a = Tensor::from_slice(&[1.0, -2.0, 3.0]);
        let b = a.map(f32::abs);
        assert_eq!(b.data(), &[1.0, 2.0, 3.0]);
        let c = a.zip(&b, |x, y| x + y).unwrap();
        assert_eq!(c.data(), &[2.0, 0.0, 6.0]);
        let bad = Tensor::zeros(&[2]);
        assert!(a.zip(&bad, |x, _| x).is_err());
    }

    #[test]
    fn statistics() {
        let t = Tensor::from_slice(&[-1.0, 0.0, 3.0]);
        assert_eq!(t.min(), Some(-1.0));
        assert_eq!(t.max(), Some(3.0));
        assert!((t.mean() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(t.abs_max(), 3.0);
        assert!((t.l2_norm() - 10.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(&[2]);
        assert!(!t.has_non_finite());
        t.data_mut()[0] = f32::NAN;
        assert!(t.has_non_finite());
        t.data_mut()[0] = f32::INFINITY;
        assert!(t.has_non_finite());
    }

    #[test]
    fn set_and_at() {
        let mut t = Tensor::zeros(&[2, 2]);
        t.set(&[1, 0], 5.0).unwrap();
        assert_eq!(t.at(&[1, 0]).unwrap(), 5.0);
        assert!(t.set(&[2, 0], 1.0).is_err());
    }

    #[test]
    fn display_truncates() {
        let t = Tensor::zeros(&[16]);
        let s = t.to_string();
        assert!(s.contains('…'));
        assert!(!Tensor::scalar(1.0).to_string().is_empty());
    }
}
