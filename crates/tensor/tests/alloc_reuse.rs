//! Verifies that the conv kernels reuse their thread-local im2col/col2im
//! scratch buffers instead of reallocating per call: after a warm-up call
//! has grown the scratch, steady-state conv calls may only allocate their
//! output tensors — never another column buffer.
//!
//! A single `#[test]` drives everything (integration tests in one binary
//! share the process allocator, so parallel tests would pollute the
//! counters).

use apt_tensor::ops::conv::{conv2d, conv2d_backward_input, conv2d_backward_weight, Conv2dParams};
use apt_tensor::{par, rng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATED: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size(), Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocated() -> usize {
    ALLOCATED.load(Ordering::Relaxed)
}

#[test]
fn conv_scratch_is_reused_across_calls() {
    // Geometry chosen so the im2col buffer (col_rows × col_w floats,
    // 16·3·3 × 16·16 = 147 KiB/image) dwarfs the outputs (c_out × col_w,
    // 16 KiB/image): a per-call scratch reallocation is unmissable.
    let (n, c_in, c_out, hw, k) = (2usize, 16usize, 4usize, 16usize, 3usize);
    let p = Conv2dParams::new(1, 1, 1);
    let col_bytes = (c_in * k * k) * (hw * hw) * std::mem::size_of::<f32>();

    par::with_threads(1, || {
        let mut r = rng::seeded(11);
        let x = rng::normal(&[n, c_in, hw, hw], 1.0, &mut r);
        let w = rng::normal(&[c_out, c_in, k, k], 1.0, &mut r);
        let y = conv2d(&x, &w, &p).unwrap();
        let go = rng::normal(y.dims(), 1.0, &mut r);

        // Warm up: grows the thread-local scratch to its steady-state size.
        conv2d(&x, &w, &p).unwrap();
        conv2d_backward_input(&go, &w, x.dims(), &p).unwrap();
        conv2d_backward_weight(&x, &go, w.dims(), &p).unwrap();

        const CALLS: usize = 10;
        let before = allocated();
        for _ in 0..CALLS {
            conv2d(&x, &w, &p).unwrap();
            conv2d_backward_input(&go, &w, x.dims(), &p).unwrap();
            conv2d_backward_weight(&x, &go, w.dims(), &p).unwrap();
        }
        let per_call = (allocated() - before) / CALLS;

        // Each iteration legitimately allocates its three output tensors
        // (~56 KiB here). One fresh col buffer per call would add
        // ≥ col_bytes (147 KiB); assert steady state stays well below that.
        assert!(
            per_call < col_bytes,
            "conv allocates {per_call} B/call — scratch is not being reused \
             (col buffer alone is {col_bytes} B)"
        );
    });
}
