//! Property-based tests of the tensor kernels.

use apt_tensor::ops::conv::{conv2d, Conv2dParams};
use apt_tensor::ops::{self, pad};
use apt_tensor::{rng, Shape, Tensor};
use proptest::prelude::*;

fn tensor_strategy(max_len: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-10.0f32..10.0, 1..max_len).prop_map(|v| Tensor::from_slice(&v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn flat_multi_index_roundtrip(dims in prop::collection::vec(1usize..6, 1..4)) {
        let s = Shape::new(&dims);
        for flat in 0..s.volume() {
            let multi = s.multi_index(flat).unwrap();
            prop_assert_eq!(s.flat_index(&multi).unwrap(), flat);
        }
    }

    #[test]
    fn add_is_commutative_and_sub_inverts(v in tensor_strategy(64)) {
        let w = v.map(|x| x * 0.5 - 1.0);
        let ab = ops::add(&v, &w).unwrap();
        let ba = ops::add(&w, &v).unwrap();
        prop_assert_eq!(ab.data(), ba.data());
        let back = ops::sub(&ab, &w).unwrap();
        for (x, y) in back.data().iter().zip(v.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn scale_distributes_over_add(v in tensor_strategy(64), s in -3.0f32..3.0) {
        let w = v.map(|x| x + 1.0);
        let lhs = ops::scale(&ops::add(&v, &w).unwrap(), s);
        let rhs = ops::add(&ops::scale(&v, s), &ops::scale(&w, s)).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn matmul_is_linear_in_first_argument(
        seed in 0u64..1000,
        alpha in -2.0f32..2.0,
    ) {
        let mut r = rng::seeded(seed);
        let a = rng::normal(&[3, 4], 1.0, &mut r);
        let b = rng::normal(&[3, 4], 1.0, &mut r);
        let m = rng::normal(&[4, 2], 1.0, &mut r);
        // (a + α·b)·m == a·m + α·(b·m)
        let lhs = ops::matmul(&ops::add(&a, &ops::scale(&b, alpha)).unwrap(), &m).unwrap();
        let rhs = ops::add(
            &ops::matmul(&a, &m).unwrap(),
            &ops::scale(&ops::matmul(&b, &m).unwrap(), alpha),
        )
        .unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_transpose_identity(seed in 0u64..1000) {
        // (A·B)ᵀ == Bᵀ·Aᵀ
        let mut r = rng::seeded(seed);
        let a = rng::normal(&[3, 5], 1.0, &mut r);
        let b = rng::normal(&[5, 2], 1.0, &mut r);
        let lhs = ops::transpose(&ops::matmul(&a, &b).unwrap()).unwrap();
        let rhs =
            ops::matmul(&ops::transpose(&b).unwrap(), &ops::transpose(&a).unwrap()).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn conv_is_linear_in_input(seed in 0u64..500, alpha in -2.0f32..2.0) {
        let mut r = rng::seeded(seed);
        let p = Conv2dParams::new(1, 1, 1);
        let x1 = rng::normal(&[1, 2, 5, 5], 1.0, &mut r);
        let x2 = rng::normal(&[1, 2, 5, 5], 1.0, &mut r);
        let w = rng::normal(&[3, 2, 3, 3], 1.0, &mut r);
        let lhs = conv2d(&ops::add(&x1, &ops::scale(&x2, alpha)).unwrap(), &w, &p).unwrap();
        let rhs = ops::add(
            &conv2d(&x1, &w, &p).unwrap(),
            &ops::scale(&conv2d(&x2, &w, &p).unwrap(), alpha),
        )
        .unwrap();
        for (a, b) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn pad_then_crop_is_identity(seed in 0u64..1000, p in 0usize..4) {
        let mut r = rng::seeded(seed);
        let img = rng::normal(&[3, 4, 4], 1.0, &mut r);
        let padded = pad::pad_chw(&img, p).unwrap();
        let back = pad::crop_chw(&padded, p, p, 4, 4).unwrap();
        prop_assert_eq!(back.data(), img.data());
    }

    #[test]
    fn hflip_is_involution(seed in 0u64..1000) {
        let mut r = rng::seeded(seed);
        let img = rng::normal(&[2, 3, 5], 1.0, &mut r);
        let twice = pad::hflip_chw(&pad::hflip_chw(&img).unwrap()).unwrap();
        prop_assert_eq!(twice.data(), img.data());
    }

    #[test]
    fn pad_preserves_sum(seed in 0u64..1000, p in 0usize..5) {
        let mut r = rng::seeded(seed);
        let img = rng::normal(&[1, 3, 3], 1.0, &mut r);
        let padded = pad::pad_chw(&img, p).unwrap();
        prop_assert!((padded.sum() - img.sum()).abs() < 1e-4);
    }

    #[test]
    fn softmax_rows_are_distributions(seed in 0u64..1000) {
        let mut r = rng::seeded(seed);
        let x = rng::normal(&[4, 7], 5.0, &mut r);
        let s = ops::softmax::softmax_rows(&x).unwrap();
        for i in 0..4 {
            let row = &s.data()[i * 7..(i + 1) * 7];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn i8_gemm_matches_naive_integer_reference(
        seed in 0u64..1000,
        k in 2u32..=8,
        m in 1usize..6,
        n in 1usize..6,
        kk in 1usize..48,
    ) {
        // Centered k-bit weight codes occupy [−2^(k−1), 2^(k−1)−1]; the
        // activation side always carries full 8-bit codes. The unrolled
        // kernel must agree bit-for-bit with the obvious triple loop.
        let mut r = rng::seeded(seed);
        let half = 1i32 << (k - 1);
        let code = |r: &mut _, lo: i32, hi: i32| -> i8 {
            let u = rng::normal(&[1], 1.0, r).data()[0];
            (((u * 64.0) as i32).clamp(lo, hi - 1)) as i8
        };
        let a: Vec<i8> = (0..m * kk).map(|_| code(&mut r, -128, 128)).collect();
        let w: Vec<i8> = (0..n * kk).map(|_| code(&mut r, -half, half)).collect();
        let mut got = vec![0i32; m * n];
        ops::int_gemm::gemm_i8(&a, &w, &mut got, m, n, kk);
        for i in 0..m {
            for o in 0..n {
                let mut acc = 0i32;
                for j in 0..kk {
                    acc += i32::from(a[i * kk + j]) * i32::from(w[o * kk + j]);
                }
                prop_assert_eq!(got[i * n + o], acc, "row {} col {} k {}", i, o, k);
            }
        }
    }

    #[test]
    fn shuffle_is_permutation(n in 1usize..200, seed in 0u64..1000) {
        let mut idx: Vec<usize> = (0..n).collect();
        rng::shuffle_indices(&mut idx, &mut rng::seeded(seed));
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }
}
