//! Determinism contract of the parallel compute backend: every
//! parallelised kernel must produce **bit-identical** output for every
//! thread count. Chunk boundaries derive only from the problem shape, and
//! per-element accumulation order never changes, so these properties must
//! hold exactly — `f32::to_bits` equality, no tolerances.

use apt_tensor::ops::conv::{conv2d, conv2d_backward_input, conv2d_backward_weight, Conv2dParams};
use apt_tensor::ops::pool::{avg_pool2d, global_avg_pool, max_pool2d};
use apt_tensor::ops::reduce::{argmax_rows, channel_mean_var, sum_channels, sum_rows};
use apt_tensor::ops::softmax::{cross_entropy, softmax_rows};
use apt_tensor::ops::{self};
use apt_tensor::{par, rng, Tensor};
use proptest::prelude::*;

/// Thread counts exercised against the 1-thread reference: even, odd, and
/// more threads than this machine (or most shapes) can use.
const THREADS: [usize; 3] = [2, 3, 7];

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

/// Runs `f` at 1 thread and at each count in [`THREADS`], asserting the
/// bit patterns agree everywhere.
fn assert_thread_invariant(label: &str, f: impl Fn() -> Vec<u32>) {
    let reference = par::with_threads(1, &f);
    for &t in &THREADS {
        let got = par::with_threads(t, &f);
        assert_eq!(reference, got, "{label}: output differs at {t} threads");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_family_is_thread_invariant(
        seed in 0u64..1000,
        m in 0usize..33,
        k in 0usize..17,
        n in 1usize..29,
    ) {
        let mut r = rng::seeded(seed);
        let a = rng::normal(&[m, k], 1.0, &mut r);
        let b = rng::normal(&[k, n], 1.0, &mut r);
        assert_thread_invariant("matmul", || bits(&ops::matmul(&a, &b).unwrap()));

        let g = rng::normal(&[m, n], 1.0, &mut r);
        assert_thread_invariant("matmul_at_b", || bits(&ops::matmul_at_b(&a, &g).unwrap()));
        let bt = rng::normal(&[n, k], 1.0, &mut r);
        assert_thread_invariant("matmul_a_bt", || bits(&ops::matmul_a_bt(&a, &bt).unwrap()));
    }

    #[test]
    fn conv_family_is_thread_invariant(
        seed in 0u64..1000,
        imgs in 1usize..5,
        c_in in 1usize..4,
        c_out in 1usize..4,
        hw in 3usize..8,
    ) {
        let mut r = rng::seeded(seed);
        let p = Conv2dParams::new(1, 1, 1);
        let x = rng::normal(&[imgs, c_in, hw, hw], 1.0, &mut r);
        let w = rng::normal(&[c_out, c_in, 3, 3], 1.0, &mut r);
        let y = conv2d(&x, &w, &p).unwrap();
        let go = rng::normal(y.dims(), 1.0, &mut r);

        assert_thread_invariant("conv2d", || bits(&conv2d(&x, &w, &p).unwrap()));
        assert_thread_invariant("conv2d_backward_input", || {
            bits(&conv2d_backward_input(&go, &w, x.dims(), &p).unwrap())
        });
        assert_thread_invariant("conv2d_backward_weight", || {
            bits(&conv2d_backward_weight(&x, &go, w.dims(), &p).unwrap())
        });
    }

    #[test]
    fn elementwise_and_softmax_are_thread_invariant(
        seed in 0u64..1000,
        m in 1usize..20,
        n in 1usize..20,
        s in -3.0f32..3.0,
    ) {
        let mut r = rng::seeded(seed);
        let a = rng::normal(&[m, n], 2.0, &mut r);
        let b = rng::normal(&[m, n], 2.0, &mut r);

        assert_thread_invariant("add", || bits(&ops::add(&a, &b).unwrap()));
        assert_thread_invariant("mul", || bits(&ops::mul(&a, &b).unwrap()));
        assert_thread_invariant("scale", || bits(&ops::scale(&a, s)));
        assert_thread_invariant("axpy", || {
            let mut y = b.clone();
            ops::axpy(s, &a, &mut y).unwrap();
            bits(&y)
        });
        assert_thread_invariant("relu_backward", || {
            bits(&ops::elementwise::relu_backward(&a, &b).unwrap())
        });
        assert_thread_invariant("softmax_rows", || bits(&softmax_rows(&a).unwrap()));

        let labels: Vec<usize> = (0..m).map(|i| i % n).collect();
        assert_thread_invariant("cross_entropy", || {
            let out = cross_entropy(&a, &labels).unwrap();
            let mut v = bits(&out.grad_logits);
            v.push(out.loss.to_bits());
            v
        });
    }

    #[test]
    fn reductions_and_pools_are_thread_invariant(
        seed in 0u64..1000,
        imgs in 1usize..4,
        c in 1usize..5,
        hw in 2usize..7,
    ) {
        let mut r = rng::seeded(seed);
        let x = rng::normal(&[imgs, c, 2 * hw, 2 * hw], 1.5, &mut r);
        let flat = rng::normal(&[c * hw, hw], 1.5, &mut r);

        assert_thread_invariant("sum_rows", || bits(&sum_rows(&flat).unwrap()));
        assert_thread_invariant("sum_channels", || bits(&sum_channels(&x).unwrap()));
        assert_thread_invariant("channel_mean_var", || {
            let (mu, var) = channel_mean_var(&x).unwrap();
            let mut v = bits(&mu);
            v.extend(bits(&var));
            v
        });
        assert_thread_invariant("argmax_rows", || {
            argmax_rows(&flat).unwrap().iter().map(|&i| i as u32).collect()
        });
        assert_thread_invariant("max_pool2d", || {
            let out = max_pool2d(&x, 2).unwrap();
            let mut v = bits(&out.output);
            v.extend(out.argmax.iter().map(|&i| i as u32));
            v
        });
        assert_thread_invariant("avg_pool2d", || bits(&avg_pool2d(&x, 2).unwrap()));
        assert_thread_invariant("global_avg_pool", || bits(&global_avg_pool(&x).unwrap()));
    }
}
