//! Automatic `T_min` selection — the paper's stated future work (§V),
//! implemented as pilot-run search in `apt::core::autotune`.
//!
//! ```bash
//! cargo run --release --example auto_tmin
//! ```
//!
//! Two application stories:
//! 1. "I need ≥ 85 % accuracy — find the cheapest `T_min`."
//! 2. "I have 10 % of the fp32 energy budget — what accuracy can I buy?"

use apt::core::{autotune_t_min, AutoTuneConfig, TrainConfig, TuneObjective};
use apt::data::{SynthCifar, SynthCifarConfig};
use apt::nn::models;
use apt::optim::LrSchedule;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = SynthCifar::generate(&SynthCifarConfig {
        num_classes: 10,
        train_per_class: 40,
        test_per_class: 12,
        img_size: 12,
        seed: 31,
        ..Default::default()
    })?;
    let base = TrainConfig {
        epochs: 10,
        batch_size: 32,
        schedule: LrSchedule::paper_cifar10(10),
        seed: 33,
        ..Default::default()
    };

    // Story 1: quality bar.
    let cfg = AutoTuneConfig::new(TuneObjective::ReachAccuracy(0.85));
    let report = autotune_t_min(
        &cfg,
        |scheme, rng| models::cifarnet(10, 12, 0.25, scheme, rng),
        &data.train,
        &data.test,
        &base,
    )?;
    println!("objective: reach 85% accuracy");
    for p in &report.pilots {
        println!(
            "  pilot T_min={:<6} acc={:>5.1}%  energy={:>8.1} µJ",
            p.t_min,
            100.0 * p.accuracy,
            p.energy_pj / 1e6
        );
    }
    println!("  -> recommended T_min = {}\n", report.chosen_t_min);

    // Story 2: battery bar.
    let cfg = AutoTuneConfig::new(TuneObjective::EnergyBudget { fraction: 0.10 });
    let report = autotune_t_min(
        &cfg,
        |scheme, rng| models::cifarnet(10, 12, 0.25, scheme, rng),
        &data.train,
        &data.test,
        &base,
    )?;
    println!(
        "objective: spend at most 10% of fp32's energy ({:.1} µJ of {:.1} µJ)",
        0.10 * report.fp32_energy_pj / 1e6,
        report.fp32_energy_pj / 1e6
    );
    for p in &report.pilots {
        println!(
            "  pilot T_min={:<6} acc={:>5.1}%  energy={:>8.1} µJ ({:.1}% of fp32)",
            p.t_min,
            100.0 * p.accuracy,
            p.energy_pj / 1e6,
            100.0 * p.energy_pj / report.fp32_energy_pj
        );
    }
    println!("  -> recommended T_min = {}", report.chosen_t_min);
    Ok(())
}
