//! Head-to-head with the quantised-training literature (paper Table I):
//! run every re-implemented comparator on the same task, same optimiser,
//! same data order, and print accuracy alongside the *structural* training
//! memory cost — the column the paper's argument hinges on.
//!
//! ```bash
//! cargo run --release --example compare_baselines
//! ```

use apt::baselines::{run_baseline, BaselineSpec};
use apt::core::TrainConfig;
use apt::data::{SynthCifar, SynthCifarConfig};
use apt::metrics::Table;
use apt::nn::models;
use apt::optim::LrSchedule;
use apt::quant::Bitwidth;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = SynthCifar::generate(&SynthCifarConfig {
        num_classes: 10,
        train_per_class: 50,
        test_per_class: 15,
        img_size: 12,
        seed: 21,
        ..Default::default()
    })?;
    let cfg = TrainConfig {
        epochs: 12,
        batch_size: 32,
        schedule: LrSchedule::paper_cifar10(12),
        seed: 17,
        ..Default::default()
    };

    let arms = [
        BaselineSpec::bnn(),
        BaselineSpec::twn(),
        BaselineSpec::ttq(),
        BaselineSpec::dorefa(Bitwidth::new(8)?, Bitwidth::new(8)?),
        BaselineSpec::terngrad(),
        BaselineSpec::wage(),
        BaselineSpec::fp32(),
        BaselineSpec::apt(6.0, f64::INFINITY),
    ];

    let mut fp32_mem = 0u64;
    let mut table = Table::new(&[
        "method",
        "bprop precision",
        "accuracy",
        "train-mem (KiB)",
        "vs fp32",
    ]);
    let mut rows = Vec::new();
    for spec in &arms {
        let r = run_baseline(
            spec,
            |scheme, rng| models::cifarnet(10, 12, 0.25, scheme, rng),
            &data.train,
            &data.test,
            &cfg,
            23,
        )?;
        if spec.name() == "fp32" {
            fp32_mem = r.peak_memory_bits;
        }
        rows.push((spec, r));
    }
    for (spec, r) in &rows {
        table.push_row(vec![
            spec.name().to_string(),
            spec.bprop_precision(),
            format!("{:.1}%", 100.0 * r.final_accuracy),
            format!("{:.1}", r.peak_memory_bits as f64 / 8192.0),
            format!("{:.2}x", r.peak_memory_bits as f64 / fp32_mem as f64),
        ]);
    }
    println!("{table}");
    println!(
        "Every fp32-master method sits above 1.00x — keeping a master copy erases\n\
         the training-memory saving. APT is the only arm below 1.00x that still\n\
         adapts its precision upward when layers starve (paper §IV-C, Table I)."
    );
    Ok(())
}
