//! Train → ship → resume: the deployment loop an edge fleet needs.
//!
//! ```bash
//! cargo run --release --example deploy_checkpoint
//! ```
//!
//! Trains a model with APT, saves it **at its adapted per-layer bitwidths**
//! (integer codes, no fp32 anywhere), "ships" the blob into a frozen
//! [`InferenceSession`] (the serving runtime's loader), verifies bit-exact
//! behaviour, then resumes in-situ training from the same checkpoint — the
//! paper's §I scenario of a device that "has to learn in-situ frequently
//! after deployment".

use apt::core::{PolicyConfig, TrainConfig, Trainer};
use apt::data::{SynthCifar, SynthCifarConfig};
use apt::nn::{checkpoint, models, Mode, QuantScheme};
use apt::optim::LrSchedule;
use apt::serve::{InferenceSession, ModelArch, ModelSpec};
use apt::tensor::rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = SynthCifar::generate(&SynthCifarConfig {
        num_classes: 10,
        train_per_class: 50,
        test_per_class: 15,
        img_size: 12,
        seed: 41,
        ..Default::default()
    })?;

    // Phase 1: train with APT "at the factory".
    let net = models::cifarnet(10, 12, 0.25, &QuantScheme::paper_apt(), &mut rng::seeded(1))?;
    let cfg = TrainConfig {
        epochs: 12,
        batch_size: 32,
        schedule: LrSchedule::paper_cifar10(12),
        policy: Some(PolicyConfig::paper_default()),
        seed: 2,
        ..Default::default()
    };
    let mut trainer = Trainer::new(net, cfg.clone())?;
    let report = trainer.train(&data.train, &data.test)?;
    println!(
        "factory training: {:.1}% accuracy, adapted bits: {:?}",
        100.0 * report.final_accuracy,
        trainer.layer_bits()
    );

    // Phase 2: checkpoint at the adapted precision.
    let mut trained = trainer.into_network();
    let blob = checkpoint::save_full(&mut trained);
    let fp32_equiv = trained.num_params() * 4;
    println!(
        "checkpoint: {} bytes on flash ({} bytes would hold the fp32 weights alone)",
        blob.len(),
        fp32_equiv
    );

    // Phase 3: "ship" — the device loads the blob into a frozen inference
    // session (exactly what `apt serve` does); behaviour must be bit-exact.
    let spec = ModelSpec {
        arch: ModelArch::Cifarnet,
        classes: 10,
        img_size: 12,
        width_mult: 0.25,
    };
    let session = InferenceSession::from_checkpoint(&spec, &blob)?;
    let x = data.test.image(0).clone().reshape(&[1, 3, 12, 12])?;
    let a = trained.forward(&x, Mode::Eval)?;
    let b = session.infer_batch(&x)?;
    assert_eq!(a.data(), b.data(), "shipped model must match bit-exactly");
    let logits = session.infer_one(x.data())?;
    assert_eq!(
        logits,
        b.data(),
        "single-sample path matches the batch path"
    );
    println!(
        "shipped model verified bit-exact in the serving session \
         ({} resident bytes, {} outputs)",
        session.network().resident_bytes(),
        session.num_outputs()
    );

    // Phase 4: resume learning in-situ on the device's own (shifted) data.
    // Training needs a mutable network, so load the same blob once more.
    let mut device = models::cifarnet(
        10,
        12,
        0.25,
        &QuantScheme::paper_apt(),
        &mut rng::seeded(99),
    )?;
    checkpoint::load(&mut device, &blob)?;
    let local = SynthCifar::generate(&SynthCifarConfig {
        num_classes: 10,
        train_per_class: 20,
        test_per_class: 10,
        img_size: 12,
        seed: 43, // different environment
        ..Default::default()
    })?;
    let mut onboard = Trainer::new(
        device,
        TrainConfig {
            epochs: 6,
            schedule: LrSchedule::Constant(0.01),
            ..cfg
        },
    )?;
    let before = onboard.evaluate(&local.test)?;
    let resumed = onboard.train(&local.train, &local.test)?;
    println!(
        "in-situ adaptation on new environment: {:.1}% -> {:.1}% using {:.1} µJ",
        100.0 * before,
        100.0 * resumed.final_accuracy,
        resumed.total_energy_pj / 1e6
    );
    Ok(())
}
