//! Edge personalisation: the in-situ learning scenario that motivates the
//! paper (§I) — a model deployed on a battery-powered device must adapt to
//! a *shifted* local data distribution, and every joule counts.
//!
//! ```bash
//! cargo run --release --example edge_personalization
//! ```
//!
//! We pre-train a model on the "factory" distribution, then fine-tune on a
//! personalised distribution (same classes, shifted appearance) under
//! three regimes — fp32, fixed 8-bit, and APT — and compare the energy,
//! memory and accuracy of the *adaptation* phase, which is what the edge
//! device actually pays for.

use apt::baselines::{run_baseline, BaselineSpec};
use apt::core::TrainConfig;
use apt::data::{SynthCifar, SynthCifarConfig};
use apt::nn::models;
use apt::optim::LrSchedule;
use apt::quant::Bitwidth;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The user's local distribution: same task family, different seed ⇒
    // different class appearance (a distribution shift, like new lighting
    // or a new accent).
    let personal = SynthCifar::generate(&SynthCifarConfig {
        num_classes: 10,
        train_per_class: 40, // personalisation data is scarce on-device
        test_per_class: 15,
        img_size: 12,
        seed: 2024,
        ..Default::default()
    })?;

    let adapt_cfg = TrainConfig {
        epochs: 25,
        batch_size: 16,
        schedule: LrSchedule::paper_cifar10(25),
        seed: 3,
        ..Default::default()
    };

    println!("fine-tuning on-device with three regimes (CifarNet backbone):\n");
    println!(
        "{:<10} {:>9} {:>14} {:>13}",
        "regime", "accuracy", "energy (µJ)", "memory (KiB)"
    );
    let mut rows = Vec::new();
    for spec in [
        BaselineSpec::fp32(),
        BaselineSpec::fixed(Bitwidth::new(8)?),
        BaselineSpec::apt(6.0, f64::INFINITY),
    ] {
        let report = run_baseline(
            &spec,
            |scheme, rng| models::cifarnet(10, 12, 0.25, scheme, rng),
            &personal.train,
            &personal.test,
            &adapt_cfg,
            9,
        )?;
        println!(
            "{:<10} {:>8.1}% {:>14.2} {:>13.1}",
            spec.name(),
            100.0 * report.final_accuracy,
            report.total_energy_pj / 1e6,
            report.peak_memory_bits as f64 / 8192.0
        );
        rows.push((spec.name().to_string(), report));
    }

    let fp32 = &rows[0].1;
    let apt = &rows[2].1;
    println!(
        "\nAPT adapts with {:.0}% of fp32's energy and {:.0}% of its memory, \
         reaching {:.1}% vs fp32's {:.1}%.",
        100.0 * apt.total_energy_pj / fp32.total_energy_pj,
        100.0 * apt.peak_memory_bits as f64 / fp32.peak_memory_bits as f64,
        100.0 * apt.final_accuracy,
        100.0 * fp32.final_accuracy
    );
    println!(
        "That is the paper's pitch: learn in-situ, spend battery only where \
         gradients actually need precision."
    );
    Ok(())
}
