//! The T_min trade-off frontier (paper Figure 5, §IV-B): sweep the
//! application-specific threshold and print the accuracy / energy / memory
//! frontier an application designer would tune against.
//!
//! ```bash
//! cargo run --release --example precision_tradeoff
//! ```

use apt::baselines::{run_baseline, BaselineSpec};
use apt::core::TrainConfig;
use apt::data::{SynthCifar, SynthCifarConfig};
use apt::metrics::Table;
use apt::nn::models;
use apt::optim::LrSchedule;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = SynthCifar::generate(&SynthCifarConfig {
        num_classes: 10,
        train_per_class: 50,
        test_per_class: 15,
        img_size: 12,
        seed: 11,
        ..Default::default()
    })?;
    let cfg = TrainConfig {
        epochs: 12,
        batch_size: 32,
        schedule: LrSchedule::paper_cifar10(12),
        seed: 5,
        ..Default::default()
    };

    // fp32 reference for normalisation, as in the paper's figure.
    let fp32 = run_baseline(
        &BaselineSpec::fp32(),
        |scheme, rng| models::cifarnet(10, 12, 0.25, scheme, rng),
        &data.train,
        &data.test,
        &cfg,
        13,
    )?;

    let mut table = Table::new(&[
        "t_min",
        "accuracy",
        "energy/fp32",
        "memory/fp32",
        "mean bits",
    ]);
    for t_min in [0.1, 1.0, 6.0, 30.0, 100.0] {
        let r = run_baseline(
            &BaselineSpec::apt(t_min, f64::INFINITY),
            |scheme, rng| models::cifarnet(10, 12, 0.25, scheme, rng),
            &data.train,
            &data.test,
            &cfg,
            13,
        )?;
        let last = r.epochs.last().expect("epochs");
        let mean_bits = last.layer_bits.iter().map(|&(_, b)| b as f64).sum::<f64>()
            / last.layer_bits.len().max(1) as f64;
        table.push_row(vec![
            format!("{t_min}"),
            format!("{:.1}%", 100.0 * r.final_accuracy),
            format!("{:.3}", r.total_energy_pj / fp32.total_energy_pj),
            format!(
                "{:.3}",
                r.peak_memory_bits as f64 / fp32.peak_memory_bits as f64
            ),
            format!("{mean_bits:.2}"),
        ]);
    }
    println!("{table}");
    println!(
        "Raising T_min buys accuracy with energy/memory; past the knee the returns\n\
         flatten — pick the row that fits your battery (paper Figure 5)."
    );
    Ok(())
}
