//! Quickstart: train a small CNN with Adaptive Precision Training in under
//! a minute on one CPU core.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full APT workflow (paper Algorithm 2): build a model whose
//! weights are stored *only* as 6-bit integer codes, train it with plain
//! SGD while profiling the Gavg underflow metric (Eq. 4), and let the
//! Algorithm 1 policy raise layer precision exactly where gradients start
//! underflowing.

use apt::core::{PolicyConfig, TrainConfig, Trainer};
use apt::data::{SynthCifar, SynthCifarConfig};
use apt::nn::{models, QuantScheme};
use apt::optim::LrSchedule;
use apt::tensor::rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A CIFAR-like synthetic task: 10 classes of 3×12×12 images.
    let data = SynthCifar::generate(&SynthCifarConfig {
        num_classes: 10,
        train_per_class: 60,
        test_per_class: 15,
        img_size: 12,
        seed: 7,
        ..Default::default()
    })?;
    println!(
        "dataset: {} train / {} test images",
        data.train.len(),
        data.test.len()
    );

    // 2. A CifarNet whose weights start as 6-bit integer codes — no fp32
    //    master copy anywhere (the paper's memory saving).
    let mut rng = rng::seeded(0);
    let net = models::cifarnet(10, 12, 0.25, &QuantScheme::paper_apt(), &mut rng)?;
    println!(
        "model: {} params, {:.1} KiB training memory (vs {:.1} KiB at fp32)",
        net.num_params(),
        net.memory_bits() as f64 / 8192.0,
        net.num_params() as f64 * 32.0 / 8192.0
    );

    // 3. Train with APT: the (T_min, T_max) threshold pair is the paper's
    //    application-specific knob.
    let cfg = TrainConfig {
        epochs: 15,
        batch_size: 32,
        schedule: LrSchedule::paper_cifar10(15),
        policy: Some(PolicyConfig::paper_default()), // (6.0, ∞)
        seed: 1,
        ..Default::default()
    };
    let mut trainer = Trainer::new(net, cfg)?;
    let report = trainer.train(&data.train, &data.test)?;

    // 4. Inspect what APT did.
    println!("\nepoch  acc     mean-bits  underflow  energy(µJ)");
    for e in &report.epochs {
        let mean_bits = e.layer_bits.iter().map(|&(_, b)| b as f64).sum::<f64>()
            / e.layer_bits.len().max(1) as f64;
        println!(
            "{:>5}  {:>5.1}%  {:>9.2}  {:>8.1}%  {:>10.2}",
            e.epoch,
            100.0 * e.test_accuracy,
            mean_bits,
            100.0 * e.underflow_rate,
            e.cumulative_energy_pj / 1e6,
        );
    }
    println!(
        "\nfinal accuracy {:.1}% | peak training memory {:.1} KiB | total energy {:.2} µJ",
        100.0 * report.final_accuracy,
        report.peak_memory_bits as f64 / 8192.0,
        report.total_energy_pj / 1e6
    );
    println!("precision changes made by Algorithm 1:");
    for e in &report.epochs {
        for c in &e.changes {
            println!(
                "  epoch {:>2}: {:<18} {} -> {} (Gavg was {:.3})",
                e.epoch, c.layer, c.from, c.to, c.gavg
            );
        }
    }
    Ok(())
}
