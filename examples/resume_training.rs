//! Interruption-tolerant training: crash-safe checkpoints, a simulated
//! power cut, and a bit-exact resume.
//!
//! ```bash
//! cargo run --release --example resume_training
//! ```
//!
//! An edge device can lose power at any optimiser step. This example
//! trains with checkpointing enabled, kills the run mid-epoch with the
//! fault-injection harness, then builds a *fresh* trainer and resumes from
//! the newest valid checkpoint on disk. The resumed run finishes with
//! exactly the per-epoch records an uninterrupted run produces — recovery
//! is invisible in the training trajectory.

use apt::core::faults::PowerCut;
use apt::core::{CheckpointConfig, SentinelConfig, TrainConfig, Trainer};
use apt::data::{SynthCifar, SynthCifarConfig};
use apt::nn::{models, QuantScheme};
use apt::optim::LrSchedule;
use apt::tensor::rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = SynthCifar::generate(&SynthCifarConfig {
        num_classes: 5,
        train_per_class: 40,
        test_per_class: 10,
        img_size: 8,
        seed: 7,
        ..Default::default()
    })?;

    let build_net = || {
        models::cifarnet(5, 8, 0.25, &QuantScheme::paper_apt(), &mut rng::seeded(0))
            .expect("model builds")
    };
    let ckpt_dir = std::env::temp_dir().join("apt-resume-example");
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let cfg = TrainConfig {
        epochs: 6,
        batch_size: 32,
        schedule: LrSchedule::paper_cifar10(6),
        seed: 1,
        // Persist the full training state (weights, optimiser, profiler,
        // energy meter, RNG cursor) every 5 steps, keeping the 2 newest.
        checkpoint: Some(CheckpointConfig {
            dir: ckpt_dir.clone(),
            every: 5,
            keep: 2,
        }),
        // Arm the divergence sentinel too: a NaN or spiking loss rolls the
        // run back to the last clean step instead of poisoning it.
        sentinel: Some(SentinelConfig::default()),
        ..Default::default()
    };

    // Phase 1: train until the "battery dies" after 20 optimiser steps.
    let mut trainer = Trainer::new(build_net(), cfg.clone())?;
    let err = trainer
        .train_with_hooks(&data.train, &data.test, &mut PowerCut::after(20))
        .expect_err("the power cut aborts the run");
    println!("power lost: {err}");

    // Phase 2: a fresh process (fresh trainer) picks the run back up from
    // the newest valid on-disk checkpoint. A corrupt newest file would be
    // rejected by its CRC and the previous good one used instead.
    let mut recovered = Trainer::new(build_net(), cfg)?;
    let report = recovered.resume_from_dir(&data.train, &data.test)?;
    println!("resumed and finished {} epochs:", report.epochs.len());
    for e in &report.epochs {
        println!(
            "  epoch {} loss {:.4} acc {:.3}",
            e.epoch, e.train_loss, e.test_accuracy
        );
    }
    println!("final accuracy {:.1}%", 100.0 * report.final_accuracy);

    let _ = std::fs::remove_dir_all(&ckpt_dir);
    Ok(())
}
