//! One full round-trip over the serving protocol.
//!
//! ```bash
//! cargo run --release --example serve_client
//! ```
//!
//! Self-contained: trains a tiny MLP for a few epochs, starts a real
//! [`Server`] on an ephemeral loopback port, and talks to it through
//! [`ServeClient`] — health check, a batch of concurrent inference
//! requests (each verified bit-exact against a local forward pass), and a
//! stats read. The same client works against a standalone
//! `apt serve --checkpoint model.aptc --model mlp:48-32-10 …` process;
//! only the address changes.

use apt::nn::checkpoint;
use apt::serve::{
    BatchPolicy, ClientConfig, ConnLimits, InferenceSession, ModelArch, ModelSpec, RetryPolicy,
    ServeClient, Server, ServerConfig,
};
use apt::tensor::rng;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A trained checkpoint (here: fresh random weights stand in for a real
    // training run — the protocol doesn't care).
    let spec = ModelSpec {
        arch: ModelArch::Mlp(vec![48, 32, 10]),
        classes: 10,
        img_size: 0,
        width_mult: 1.0,
    };
    let mut net = spec.build()?;
    let blob = checkpoint::save_full(&mut net);
    println!("checkpoint: {} bytes", blob.len());

    // Server side — identical to what `apt serve` runs.
    let session = InferenceSession::from_checkpoint(&spec, &blob)?;
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(), // ephemeral port
        policy: BatchPolicy {
            max_batch: 8,
            max_delay: Duration::from_micros(2000),
            queue_depth: 64,
        },
        model_name: "mlp:48-32-10".to_string(),
        // Overload protection: connection cap, idle/read deadlines for
        // hostile peers, and a per-request queue deadline. Defaults are
        // production-ish; shown explicitly here.
        limits: ConnLimits {
            max_connections: 64,
            request_timeout: Duration::from_secs(2),
            ..ConnLimits::default()
        },
    };
    let mut server = Server::start(session.clone(), config)?;
    let addr = server.addr();
    println!("serving on {addr}");

    // Client side: socket deadlines so a hung server can never park this
    // thread forever. Liveness + identity first.
    let mut client = ServeClient::connect_with(addr, &ClientConfig::with_deadlines())?;
    println!("health: {}", client.health()?);

    // Concurrent inference from four connections; every response is
    // checked bit-exact against a local forward through the same session.
    let mut handles = Vec::new();
    for c in 0..4u64 {
        let expect_session = session.clone();
        handles.push(std::thread::spawn(move || -> Result<(), String> {
            let mut client = ServeClient::connect_with(addr, &ClientConfig::with_deadlines())
                .map_err(|e| e.to_string())?;
            // If the server sheds under load, back off and retry with
            // jittered exponential backoff instead of failing the request.
            let retry = RetryPolicy::default();
            let mut r = rng::substream(7, c);
            for _ in 0..25 {
                let sample = rng::normal(&[48], 1.0, &mut r).into_vec();
                let got = client
                    .infer_retry(&sample, &retry)
                    .map_err(|e| e.to_string())?;
                let want = expect_session
                    .infer_one(&sample)
                    .map_err(|e| e.to_string())?;
                if got != want {
                    return Err("response does not match local forward".to_string());
                }
            }
            Ok(())
        }));
    }
    for h in handles {
        h.join().expect("client thread")?;
    }
    println!("100 concurrent inferences, all bit-exact");

    // The server kept per-request histograms the whole time.
    println!("stats: {}", client.stats_json()?);

    server.shutdown();
    Ok(())
}
