//! # apt — Adaptive Precision Training, reproduced in Rust
//!
//! Facade crate for the full-stack reproduction of *Adaptive Precision
//! Training for Resource Constrained Devices* (Huang, Luo, Zhou — ICDCS
//! 2020). It re-exports every subsystem crate under one roof so examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`tensor`] | `apt-tensor` | dense f32 tensors, GEMM, conv, pooling |
//! | [`quant`] | `apt-quant` | affine quantisation, Eq. 3 updates |
//! | [`nn`] | `apt-nn` | layers, ResNet/MobileNetV2/CifarNet models |
//! | [`data`] | `apt-data` | SynthCifar datasets + paper augmentation |
//! | [`optim`] | `apt-optim` | SGD w/ momentum + LR schedules |
//! | [`energy`] | `apt-energy` | bit-accurate energy & memory cost model |
//! | [`metrics`] | `apt-metrics` | curves, records, CSV export |
//! | [`core`] | `apt-core` | **the paper**: Gavg, Alg. 1 policy, Alg. 2 trainer |
//! | [`baselines`] | `apt-baselines` | fixed-bit & fp32-master-copy comparators |
//! | [`serve`] | `apt-serve` | inference sessions, micro-batching, TCP serving |
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`, or run:
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use apt_baselines as baselines;
pub use apt_core as core;
pub use apt_data as data;
pub use apt_energy as energy;
pub use apt_metrics as metrics;
pub use apt_nn as nn;
pub use apt_optim as optim;
pub use apt_quant as quant;
pub use apt_serve as serve;
pub use apt_tensor as tensor;
