//! `apt` — the command-line front door to the APT runtime.
//!
//! ```text
//! apt serve --checkpoint results/run.aptc --model cifarnet --classes 10 \
//!     --img-size 12 --width-mult 0.25 --addr 127.0.0.1:7878
//! ```
//!
//! The CLI has three subcommands. `serve` loads one trained `.aptc`
//! checkpoint (`--checkpoint`) or a whole directory of them
//! (`--model-dir`, one model per file) into an
//! [`apt_serve::ModelRegistry`] and exposes the fleet over the
//! length-prefixed TCP protocol; by default every ingested model is
//! compiled into a frozen plan (BN folded, activations fused,
//! arena-planned) — `--no-freeze` pins the legacy layer-replay path.
//! `freeze` compiles a checkpoint without serving it and prints the plan
//! report (step counts, fusions, arena size, achieved lane). `train`
//! trains on the synthetic-CIFAR workload, data-parallel across
//! `--workers N` in-process ranks exchanging `--grad-bits k` quantised
//! gradients (one worker takes the exact single-process path); the
//! figure/table experiment harness stays with the bench binaries
//! (`cargo run -p apt-bench --bin train`).
//!
//! Every malformed invocation exits with a one-line message and usage
//! text (exit code 2); runtime failures exit 1. Nothing in this binary
//! panics on bad user input. `SIGINT`/`SIGTERM` trigger a graceful
//! shutdown: stop accepting, drain in-flight work, print a final stats
//! snapshot.

use apt_serve::{
    BatchPolicy, ConnLimits, KernelLane, ModelArch, ModelRegistry, ModelSpec, RegistryConfig,
    Server, ServerConfig,
};
use std::fmt;
use std::path::PathBuf;
use std::str::FromStr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Typed CLI failure: either a usage mistake (bad flag, missing value,
/// unparseable number — exit 2 with usage text) or a runtime failure
/// (unreadable checkpoint, bind error — exit 1).
#[derive(Debug)]
enum CliError {
    /// The invocation itself is malformed.
    Usage(String),
    /// The invocation was well-formed but execution failed.
    Runtime(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Runtime(m) => write!(f, "{m}"),
        }
    }
}

const USAGE: &str = "usage: apt serve (--checkpoint PATH | --model-dir DIR) --model MODEL [options]

required:
  --checkpoint PATH     one trained .aptc checkpoint (v1/v2/v3), or
  --model-dir DIR       directory of .aptc checkpoints (model id = file
                        stem); bad files are quarantined, OP_RELOAD rescans
  --model MODEL         cifarnet | vgg_small | resnet20 | resnet110 |
                        mobilenet_v2 | mlp:IN-HIDDEN-...-OUT

fleet:
  --default-model ID    model answering plain INFER requests
                        [default: checkpoint file stem / first ingested]
  --resident-budget-mb N  resident-bytes budget across models; coldest
                        models are evicted past it        [default 0 = off]
  --quarantine-dir DIR  where rejected checkpoints move   [default DIR/quarantine]

model geometry (must match how the checkpoint was trained):
  --classes N           classifier outputs            [default 10]
  --img-size N          input image side length       [default 12]
  --width-mult F        channel width multiplier      [default 0.25]

serving:
  --addr HOST:PORT      bind address                  [default 127.0.0.1:7878]
  --lane LANE           compute kernel lane: fp32 | dequant-cache | int-gemm
                        (int-gemm serves straight from packed integer codes;
                        bit-close, not bit-exact)     [default dequant-cache]
  --no-freeze           serve by layer-by-layer replay instead of compiling
                        checkpoints into fused frozen plans
  --max-batch N         micro-batch coalescing cap    [default 8]
  --max-delay-us N      batching window in microsecs  [default 2000]
  --queue-depth N       admission queue bound         [default 128]
  --threads N           compute pool size             [default all cores]
  --stats-every SECS    print serving stats period    [default 10, 0 = off]

overload protection:
  --max-conns N         concurrent connection cap     [default 1024]
  --idle-timeout-ms N   reap silent connections after [default 60000, 0 = off]
  --read-timeout-ms N   reap mid-frame stalls after   [default 10000, 0 = off]
  --request-timeout-ms N  shed queued requests after  [default 5000, 0 = off]
  --max-pipeline N      per-connection in-flight cap  [default 32]";

const FREEZE_USAGE: &str = "usage: apt freeze CHECKPOINT --model MODEL [options]

Compiles a trained .aptc checkpoint into a frozen inference plan without
serving it, and prints the compile report: steps lowered vs kept,
BN folds, activation fusions, packed weight panels, arena size, and the
achieved kernel lane.

required:
  CHECKPOINT            a trained .aptc checkpoint (v1/v2/v3)
  --model MODEL         cifarnet | vgg_small | resnet20 | resnet110 |
                        mobilenet_v2 | mlp:IN-HIDDEN-...-OUT

model geometry (must match how the checkpoint was trained):
  --classes N           classifier outputs            [default 10]
  --img-size N          input image side length       [default 12]
  --width-mult F        channel width multiplier      [default 0.25]

compilation:
  --lane LANE           fp32 | dequant-cache | int-gemm [default dequant-cache]";

const TRAIN_USAGE: &str = "usage: apt train --model MODEL [options]

Trains a model data-parallel across N in-process worker ranks that
exchange k-bit quantised gradients through a deterministic flat-tree
all-reduce (exact integer-domain accumulation). One worker takes the
exact single-process training path; N workers train on disjoint shards
and are bit-reproducible run-to-run. With --checkpoint-dir, every rank
writes APTS checkpoints on a lockstep cadence and a crashed fleet
resumes from them automatically on the next invocation.

required:
  --model MODEL         cifarnet | vgg_small | resnet20 | resnet110 |
                        mobilenet_v2 | mlp:IN-HIDDEN-...-OUT
                        (an MLP input must equal 3 x img-size^2)

fleet:
  --workers N           worker ranks (data-parallel replicas) [default 1]
  --grad-bits K         gradient exchange bitwidth, 2..=16    [default 4]
  --recovery-rounds N   fleet rollback budget after a crash   [default 3]
  --checkpoint-dir DIR  per-rank checkpoint root (rank0/, rank1/, ...)

training:
  --epochs N            [default 10]
  --batch-size N        [default 8]
  --seed N              shuffle/augmentation seed             [default 42]
  --threads N           inner-op compute pool size            [default 1]

data (synthetic CIFAR, sharded disjointly across ranks):
  --classes N           [default 10]
  --img-size N          [default 12]
  --per-class N         training samples per class            [default 32]
  --data-seed N         generator seed                        [default 3]";

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let code = match argv.get(1).map(String::as_str) {
        Some("serve") => match run_serve(&argv[2..]) {
            Ok(()) => 0,
            Err(CliError::Usage(m)) => {
                eprintln!("apt serve: {m}\n\n{USAGE}");
                2
            }
            Err(CliError::Runtime(m)) => {
                eprintln!("apt serve: {m}");
                1
            }
        },
        Some("freeze") => match run_freeze(&argv[2..]) {
            Ok(()) => 0,
            Err(CliError::Usage(m)) => {
                eprintln!("apt freeze: {m}\n\n{FREEZE_USAGE}");
                2
            }
            Err(CliError::Runtime(m)) => {
                eprintln!("apt freeze: {m}");
                1
            }
        },
        Some("train") => match run_train(&argv[2..]) {
            Ok(()) => 0,
            Err(CliError::Usage(m)) => {
                eprintln!("apt train: {m}\n\n{TRAIN_USAGE}");
                2
            }
            Err(CliError::Runtime(m)) => {
                eprintln!("apt train: {m}");
                1
            }
        },
        Some("--help") | Some("-h") | None => {
            eprintln!("{USAGE}\n\n{TRAIN_USAGE}\n\n{FREEZE_USAGE}");
            if argv.len() < 2 {
                2
            } else {
                0
            }
        }
        Some(other) => {
            eprintln!(
                "apt: unknown subcommand `{other}` (have: serve, train, freeze)\n\n{USAGE}\n\n{TRAIN_USAGE}\n\n{FREEZE_USAGE}"
            );
            2
        }
    };
    std::process::exit(code);
}

/// Parses one flag value with a typed error naming the flag.
fn parse_flag<T: FromStr>(flag: &str, value: &str) -> Result<T, CliError>
where
    T::Err: fmt::Display,
{
    value
        .parse::<T>()
        .map_err(|e| CliError::Usage(format!("bad value `{value}` for {flag}: {e}")))
}

/// Everything `apt serve` needs, parsed and validated.
struct ServeArgs {
    checkpoint: Option<String>,
    model_dir: Option<String>,
    quarantine_dir: Option<String>,
    default_model: Option<String>,
    budget_mb: u64,
    model: ModelArch,
    classes: usize,
    img_size: usize,
    width_mult: f32,
    addr: String,
    lane: KernelLane,
    policy: BatchPolicy,
    limits: ConnLimits,
    threads: Option<usize>,
    stats_every: u64,
    freeze: bool,
}

fn parse_serve_args(args: &[String]) -> Result<ServeArgs, CliError> {
    let mut model: Option<ModelArch> = None;
    let mut out = ServeArgs {
        checkpoint: None,
        model_dir: None,
        quarantine_dir: None,
        default_model: None,
        budget_mb: 0,
        model: ModelArch::Cifarnet,
        classes: 10,
        img_size: 12,
        width_mult: 0.25,
        addr: "127.0.0.1:7878".to_string(),
        lane: KernelLane::default(),
        policy: BatchPolicy::default(),
        limits: ConnLimits::default(),
        threads: None,
        stats_every: 10,
        freeze: true,
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--help" || flag == "-h" {
            eprintln!("{USAGE}");
            std::process::exit(0);
        }
        if flag == "--no-freeze" {
            out.freeze = false;
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| CliError::Usage(format!("missing value for {flag}")))?;
        match flag {
            "--checkpoint" => out.checkpoint = Some(value.clone()),
            "--model-dir" => out.model_dir = Some(value.clone()),
            "--quarantine-dir" => out.quarantine_dir = Some(value.clone()),
            "--default-model" => out.default_model = Some(value.clone()),
            "--resident-budget-mb" => out.budget_mb = parse_flag(flag, value)?,
            "--model" => {
                model = Some(
                    value
                        .parse::<ModelArch>()
                        .map_err(|e| CliError::Usage(e.to_string()))?,
                )
            }
            "--classes" => out.classes = parse_flag(flag, value)?,
            "--img-size" => out.img_size = parse_flag(flag, value)?,
            "--width-mult" => out.width_mult = parse_flag(flag, value)?,
            "--addr" => out.addr = value.clone(),
            "--lane" => {
                out.lane = KernelLane::parse(value).ok_or_else(|| {
                    CliError::Usage(format!(
                        "bad value `{value}` for --lane (want fp32 | dequant-cache | int-gemm)"
                    ))
                })?
            }
            "--max-batch" => out.policy.max_batch = parse_flag(flag, value)?,
            "--max-delay-us" => {
                out.policy.max_delay = Duration::from_micros(parse_flag(flag, value)?)
            }
            "--queue-depth" => out.policy.queue_depth = parse_flag(flag, value)?,
            "--max-conns" => out.limits.max_connections = parse_flag(flag, value)?,
            "--idle-timeout-ms" => {
                out.limits.idle_timeout = Duration::from_millis(parse_flag(flag, value)?)
            }
            "--read-timeout-ms" => {
                out.limits.read_timeout = Duration::from_millis(parse_flag(flag, value)?)
            }
            "--request-timeout-ms" => {
                out.limits.request_timeout = Duration::from_millis(parse_flag(flag, value)?)
            }
            "--max-pipeline" => out.limits.max_pipeline = parse_flag(flag, value)?,
            "--threads" => {
                let n: usize = parse_flag(flag, value)?;
                if n == 0 {
                    return Err(CliError::Usage("--threads needs a value ≥ 1".into()));
                }
                out.threads = Some(n);
            }
            "--stats-every" => out.stats_every = parse_flag(flag, value)?,
            other => return Err(CliError::Usage(format!("unknown flag `{other}`"))),
        }
        i += 2;
    }
    match (&out.checkpoint, &out.model_dir) {
        (None, None) => {
            return Err(CliError::Usage(
                "one of --checkpoint or --model-dir is required".into(),
            ))
        }
        (Some(_), Some(_)) => {
            return Err(CliError::Usage(
                "--checkpoint and --model-dir are mutually exclusive".into(),
            ))
        }
        _ => {}
    }
    out.model = model.ok_or_else(|| CliError::Usage("--model is required".into()))?;
    out.policy
        .validate()
        .map_err(|e| CliError::Usage(e.to_string()))?;
    out.limits
        .validate()
        .map_err(|e| CliError::Usage(e.to_string()))?;
    Ok(out)
}

fn run_serve(args: &[String]) -> Result<(), CliError> {
    let a = parse_serve_args(args)?;
    if let Some(n) = a.threads {
        apt_tensor::par::set_global_threads(n);
    }

    let spec = ModelSpec {
        arch: a.model.clone(),
        classes: a.classes,
        img_size: a.img_size,
        width_mult: a.width_mult,
    };
    let registry = Arc::new(ModelRegistry::new(RegistryConfig {
        budget_bytes: a.budget_mb * 1024 * 1024,
        model_dir: a.model_dir.clone().map(PathBuf::from),
        quarantine_dir: a.quarantine_dir.clone().map(PathBuf::from),
        spec: Some(spec.clone()),
        lane: a.lane,
        freeze: a.freeze,
    }));

    // Populate the fleet: one validated checkpoint, or a directory scan
    // that quarantines what fails the ingestion ladder.
    let default_model = if let Some(ckpt) = &a.checkpoint {
        let id = a.default_model.clone().unwrap_or_else(|| {
            std::path::Path::new(ckpt)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("default")
                .to_string()
        });
        registry
            .ingest_file(&id, std::path::Path::new(ckpt))
            .map_err(|e| {
                CliError::Runtime(format!(
                    "cannot load `{ckpt}` as {:?} (classes {}, img {}, width {}): {e}",
                    a.model, a.classes, a.img_size, a.width_mult
                ))
            })?;
        id
    } else {
        let report = registry
            .rescan()
            .map_err(|e| CliError::Runtime(format!("cannot scan model directory: {e}")))?;
        for (file, reason) in &report.rejected {
            eprintln!("apt serve: quarantined `{file}`: {reason}");
        }
        for id in &report.ingested {
            println!("ingested model `{id}`");
        }
        match a
            .default_model
            .clone()
            .or_else(|| report.ingested.first().cloned())
        {
            Some(id) => id,
            None => {
                return Err(CliError::Runtime(
                    "no model survived ingestion; nothing to serve".into(),
                ))
            }
        }
    };
    let session = registry.get(&default_model).map_err(|e| {
        CliError::Runtime(format!(
            "default model `{default_model}` is not resident: {e}"
        ))
    })?;

    let config = ServerConfig {
        addr: a.addr.clone(),
        policy: a.policy.clone(),
        model_name: default_model.clone(),
        limits: a.limits.clone(),
    };
    let mut server = Server::start_with_registry(Arc::clone(&registry), config)
        .map_err(|e| CliError::Runtime(format!("cannot start server on `{}`: {e}", a.addr)))?;
    println!(
        "serving {default_model} [{:?}] ({} inputs → {} outputs, {} resident bytes, {} models, lane {}, {}) on {}",
        a.model,
        session.sample_len(),
        session.num_outputs(),
        registry.resident_bytes(),
        registry.models().len(),
        session.lane().as_str(),
        if session.is_frozen() {
            "frozen plan".to_string()
        } else {
            format!(
                "layer replay: {}",
                session.freeze_reason().unwrap_or("unknown reason")
            )
        },
        server.addr()
    );
    if let Some(report) = session.plan_report() {
        println!(
            "frozen plan: {} steps (from {}), {} bn folds, {} act fusions, {} packed panels, arena {} floats/sample",
            report.steps,
            report.lowered_steps,
            report.bn_folds,
            report.act_fusions,
            report.packed_panels,
            report.arena_floats_per_sample
        );
    }
    println!(
        "policy: max_batch {}, max_delay {}µs, queue_depth {}",
        a.policy.max_batch,
        a.policy.max_delay.as_micros(),
        a.policy.queue_depth
    );
    println!(
        "limits: max_conns {}, idle {}ms, read {}ms, request {}ms, pipeline {}",
        a.limits.max_connections,
        a.limits.idle_timeout.as_millis(),
        a.limits.read_timeout.as_millis(),
        a.limits.request_timeout.as_millis(),
        a.limits.max_pipeline
    );
    if a.budget_mb > 0 {
        println!("budget: {} MiB resident; LRU eviction past it", a.budget_mb);
    }

    // Foreground loop: the server runs on its own threads; this thread
    // polls for SIGINT/SIGTERM and periodically reports stats.
    signals::install();
    let mut last_stats = Instant::now();
    while !signals::stop_requested() {
        std::thread::sleep(Duration::from_millis(100));
        if a.stats_every > 0 && last_stats.elapsed() >= Duration::from_secs(a.stats_every) {
            print_stats(&server.stats());
            last_stats = Instant::now();
        }
    }

    // Graceful shutdown: refuse new connections, drain everything already
    // in flight, then report the final counters.
    println!("shutdown requested; draining in-flight requests...");
    server.shutdown();
    let s = server.stats();
    print_stats(&s);
    println!(
        "final: {} responses delivered, {} swaps, {} evictions, {} quarantined, {} unavailable",
        s.completed, s.swaps, s.evictions, s.quarantines, s.model_unavailable
    );
    Ok(())
}

fn print_stats(s: &apt_serve::StatsSnapshot) {
    println!(
        "stats: {} ok / {} shed / {} expired / {} errors | p50 {}µs p90 {}µs p99 {}µs | mean batch {:.2} | conns {} open, {} refused, {} idle-reaped, {} slow-reaped | fleet {} resident ({} bytes), {} swaps, {} evictions, {} quarantined | plans {} frozen, {} fallbacks",
        s.completed,
        s.shed,
        s.deadline_expired,
        s.errors,
        s.p50_us,
        s.p90_us,
        s.p99_us,
        s.mean_batch,
        s.open_conns,
        s.refused_accept,
        s.idle_reaped,
        s.slow_reaped,
        s.models_resident,
        s.resident_bytes,
        s.swaps,
        s.evictions,
        s.quarantines,
        s.plans_frozen,
        s.freeze_fallbacks
    );
}

/// `apt freeze CHECKPOINT --model …` — compile a checkpoint into a frozen
/// plan and print the compile report without serving anything.
fn run_freeze(args: &[String]) -> Result<(), CliError> {
    let mut checkpoint_path: Option<String> = None;
    let mut model: Option<ModelArch> = None;
    let mut classes = 10usize;
    let mut img_size = 12usize;
    let mut width_mult = 0.25f32;
    let mut lane = KernelLane::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--help" || flag == "-h" {
            eprintln!("{FREEZE_USAGE}");
            std::process::exit(0);
        }
        if !flag.starts_with("--") {
            if checkpoint_path.is_some() {
                return Err(CliError::Usage(format!(
                    "unexpected extra positional argument `{flag}`"
                )));
            }
            checkpoint_path = Some(flag.to_string());
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| CliError::Usage(format!("missing value for {flag}")))?;
        match flag {
            "--model" => {
                model = Some(
                    value
                        .parse::<ModelArch>()
                        .map_err(|e| CliError::Usage(e.to_string()))?,
                )
            }
            "--classes" => classes = parse_flag(flag, value)?,
            "--img-size" => img_size = parse_flag(flag, value)?,
            "--width-mult" => width_mult = parse_flag(flag, value)?,
            "--lane" => {
                lane = KernelLane::parse(value).ok_or_else(|| {
                    CliError::Usage(format!(
                        "bad value `{value}` for --lane (want fp32 | dequant-cache | int-gemm)"
                    ))
                })?
            }
            other => return Err(CliError::Usage(format!("unknown flag `{other}`"))),
        }
        i += 2;
    }
    let ckpt = checkpoint_path.ok_or_else(|| CliError::Usage("CHECKPOINT is required".into()))?;
    let arch = model.ok_or_else(|| CliError::Usage("--model is required".into()))?;
    let spec = ModelSpec {
        arch: arch.clone(),
        classes,
        img_size,
        width_mult,
    };
    let blob = std::fs::read(&ckpt)
        .map_err(|e| CliError::Runtime(format!("cannot read `{ckpt}`: {e}")))?;
    let mut net = spec
        .build()
        .map_err(|e| CliError::Runtime(format!("cannot build {arch:?}: {e}")))?;
    apt_nn::checkpoint::load(&mut net, &blob).map_err(|e| {
        CliError::Runtime(format!(
            "cannot load `{ckpt}` as {arch:?} (classes {classes}, img {img_size}, width {width_mult}): {e}"
        ))
    })?;
    let plan = net
        .freeze(&spec.sample_dims(), lane)
        .map_err(|e| CliError::Runtime(format!("cannot freeze `{ckpt}`: {e}")))?;
    println!(
        "frozen {} [{arch:?}] from `{ckpt}` (requested lane {})",
        net.name(),
        lane.as_str()
    );
    println!("{}", plan.report());
    println!("steps: {}", plan.step_mnemonics().join(" → "));
    println!(
        "resident: {} plan bytes; arena {} floats per sample ({} inputs → {} outputs)",
        plan.resident_bytes(),
        plan.arena_floats_per_sample(),
        plan.sample_len(),
        plan.output_len()
    );
    Ok(())
}

/// `apt train --model … --workers N --grad-bits K` — deterministic
/// data-parallel training with k-bit gradient exchange on the synthetic
/// CIFAR workload.
fn run_train(args: &[String]) -> Result<(), CliError> {
    let mut model: Option<ModelArch> = None;
    let mut workers = 1usize;
    let mut grad_bits = 4u32;
    let mut recovery_rounds = 3usize;
    let mut checkpoint_dir: Option<String> = None;
    let mut checkpoint_every = 50usize;
    let mut epochs = 10usize;
    let mut batch_size = 8usize;
    let mut seed = 42u64;
    let mut threads = 1usize;
    let mut classes = 10usize;
    let mut img_size = 12usize;
    let mut per_class = 32usize;
    let mut data_seed = 3u64;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--help" || flag == "-h" {
            eprintln!("{TRAIN_USAGE}");
            std::process::exit(0);
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| CliError::Usage(format!("missing value for {flag}")))?;
        match flag {
            "--model" => {
                model = Some(
                    value
                        .parse::<ModelArch>()
                        .map_err(|e| CliError::Usage(e.to_string()))?,
                )
            }
            "--workers" => workers = parse_flag(flag, value)?,
            "--grad-bits" => grad_bits = parse_flag(flag, value)?,
            "--recovery-rounds" => recovery_rounds = parse_flag(flag, value)?,
            "--checkpoint-dir" => checkpoint_dir = Some(value.clone()),
            "--checkpoint-every" => checkpoint_every = parse_flag(flag, value)?,
            "--epochs" => epochs = parse_flag(flag, value)?,
            "--batch-size" => batch_size = parse_flag(flag, value)?,
            "--seed" => seed = parse_flag(flag, value)?,
            "--threads" => threads = parse_flag(flag, value)?,
            "--classes" => classes = parse_flag(flag, value)?,
            "--img-size" => img_size = parse_flag(flag, value)?,
            "--per-class" => per_class = parse_flag(flag, value)?,
            "--data-seed" => data_seed = parse_flag(flag, value)?,
            other => return Err(CliError::Usage(format!("unknown flag `{other}`"))),
        }
        i += 2;
    }
    let arch = model.ok_or_else(|| CliError::Usage("--model is required".into()))?;
    if workers == 0 {
        return Err(CliError::Usage("--workers must be at least 1".into()));
    }
    if !(2..=16).contains(&grad_bits) {
        return Err(CliError::Usage(format!(
            "--grad-bits must be in 2..=16, got {grad_bits}"
        )));
    }
    if let ModelArch::Mlp(dims) = &arch {
        let want = 3 * img_size * img_size;
        if dims.first() != Some(&want) {
            return Err(CliError::Usage(format!(
                "mlp input must match the flattened image: want {want} (3 x {img_size}^2), got {:?}",
                dims.first()
            )));
        }
    }
    if threads >= 1 {
        apt_tensor::par::set_global_threads(threads);
    }

    let data = apt_data::SynthCifar::generate(&apt_data::SynthCifarConfig {
        num_classes: classes,
        train_per_class: per_class,
        test_per_class: (per_class / 4).max(1),
        img_size,
        seed: data_seed,
        ..apt_data::SynthCifarConfig::default()
    })
    .map_err(|e| CliError::Runtime(format!("cannot generate dataset: {e}")))?;

    let bits = apt_quant::Bitwidth::new(grad_bits)
        .map_err(|e| CliError::Usage(format!("bad --grad-bits: {e}")))?;
    let cfg = apt_dist::DistConfig {
        world: workers,
        grad_bits: bits,
        train: apt_core::TrainConfig {
            epochs,
            batch_size,
            seed,
            policy: Some(apt_core::PolicyConfig::default()),
            checkpoint: checkpoint_dir
                .as_ref()
                .map(|dir| apt_core::CheckpointConfig {
                    dir: PathBuf::from(dir),
                    every: checkpoint_every,
                    keep: 3,
                }),
            ..apt_core::TrainConfig::default()
        },
        max_recovery_rounds: recovery_rounds,
    };
    let spec = ModelSpec {
        arch: arch.clone(),
        classes,
        img_size,
        width_mult: 0.25,
    };
    let net_fn = move || {
        spec.build().map_err(|e| apt_core::CoreError::BadConfig {
            reason: format!("cannot build replica: {e}"),
        })
    };

    println!(
        "training {arch:?} on synthetic CIFAR ({} train / {} test), {workers} worker(s), \
         {grad_bits}-bit gradient exchange",
        data.train.len(),
        data.test.len()
    );
    let start = Instant::now();
    let report = apt_dist::DistTrainer::new(cfg, net_fn)
        .map_err(|e| CliError::Usage(format!("bad fleet configuration: {e}")))?
        .train(&data.train, &data.test)
        .map_err(|e| CliError::Runtime(format!("training failed: {e}")))?;
    let wall = start.elapsed().as_secs_f64();

    for e in &report.report().epochs {
        println!(
            "epoch {:>3}: lr {:.4} loss {:.4} acc {:.3} energy {:.0} pJ",
            e.epoch, e.lr, e.train_loss, e.test_accuracy, e.cumulative_energy_pj
        );
    }
    let r = report.report();
    println!(
        "done in {wall:.1}s: final acc {:.3} (best {:.3}), energy {:.0} pJ, peak {} bits",
        r.final_accuracy, r.best_accuracy, r.total_energy_pj, r.peak_memory_bits
    );
    if workers > 1 {
        let ex = report.exchange();
        println!(
            "exchange: {} steps, {} digest checks, {} bytes on wire ({:.3}x fp32), \
             recovery rounds {}",
            ex.steps,
            ex.digest_checks,
            ex.bytes_on_wire,
            ex.wire_ratio(),
            report.recovery_rounds
        );
        if !report.replicas_in_lockstep() {
            return Err(CliError::Runtime(
                "replicas finished out of lockstep (this is a bug)".into(),
            ));
        }
    }
    if let Some(dir) = &checkpoint_dir {
        println!("per-rank checkpoints under {dir}/rank<r>/");
    }
    Ok(())
}

/// Minimal `SIGINT`/`SIGTERM` latching without any signal-handling crate:
/// the handler only sets an atomic flag, which is async-signal-safe; the
/// foreground loop polls it.
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static STOP: AtomicBool = AtomicBool::new(false);

    extern "C" fn latch_stop(_signum: i32) {
        STOP.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        // SIGINT = 2 and SIGTERM = 15 on every Unix this builds for.
        unsafe {
            signal(2, latch_stop as *const () as usize);
            signal(15, latch_stop as *const () as usize);
        }
    }

    pub fn stop_requested() -> bool {
        STOP.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod signals {
    pub fn install() {}

    pub fn stop_requested() -> bool {
        false
    }
}
