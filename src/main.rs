//! `apt` — the command-line front door to the APT runtime.
//!
//! ```text
//! apt serve --checkpoint results/run.aptc --model cifarnet --classes 10 \
//!     --img-size 12 --width-mult 0.25 --addr 127.0.0.1:7878
//! ```
//!
//! Today the CLI has one subcommand, `serve`, which loads a trained
//! `.aptc` checkpoint into an [`apt_serve::InferenceSession`] and exposes
//! it over the length-prefixed TCP protocol. Training stays with the
//! `train` bench binary (`cargo run -p apt-bench --bin train`).
//!
//! Every malformed invocation exits with a one-line message and usage
//! text (exit code 2); runtime failures exit 1. Nothing in this binary
//! panics on bad user input.

use apt_serve::{
    BatchPolicy, ConnLimits, InferenceSession, ModelArch, ModelSpec, Server, ServerConfig,
};
use std::fmt;
use std::str::FromStr;
use std::time::Duration;

/// Typed CLI failure: either a usage mistake (bad flag, missing value,
/// unparseable number — exit 2 with usage text) or a runtime failure
/// (unreadable checkpoint, bind error — exit 1).
#[derive(Debug)]
enum CliError {
    /// The invocation itself is malformed.
    Usage(String),
    /// The invocation was well-formed but execution failed.
    Runtime(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Runtime(m) => write!(f, "{m}"),
        }
    }
}

const USAGE: &str = "usage: apt serve --checkpoint PATH --model MODEL [options]

required:
  --checkpoint PATH     trained .aptc checkpoint (v1/v2/v3)
  --model MODEL         cifarnet | vgg_small | resnet20 | resnet110 |
                        mobilenet_v2 | mlp:IN-HIDDEN-...-OUT

model geometry (must match how the checkpoint was trained):
  --classes N           classifier outputs            [default 10]
  --img-size N          input image side length       [default 12]
  --width-mult F        channel width multiplier      [default 0.25]

serving:
  --addr HOST:PORT      bind address                  [default 127.0.0.1:7878]
  --max-batch N         micro-batch coalescing cap    [default 8]
  --max-delay-us N      batching window in microsecs  [default 2000]
  --queue-depth N       admission queue bound         [default 128]
  --threads N           compute pool size             [default all cores]
  --stats-every SECS    print serving stats period    [default 10, 0 = off]

overload protection:
  --max-conns N         concurrent connection cap     [default 1024]
  --idle-timeout-ms N   reap silent connections after [default 60000, 0 = off]
  --read-timeout-ms N   reap mid-frame stalls after   [default 10000, 0 = off]
  --request-timeout-ms N  shed queued requests after  [default 5000, 0 = off]
  --max-pipeline N      per-connection in-flight cap  [default 32]";

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let code = match argv.get(1).map(String::as_str) {
        Some("serve") => match run_serve(&argv[2..]) {
            Ok(()) => 0,
            Err(CliError::Usage(m)) => {
                eprintln!("apt serve: {m}\n\n{USAGE}");
                2
            }
            Err(CliError::Runtime(m)) => {
                eprintln!("apt serve: {m}");
                1
            }
        },
        Some("--help") | Some("-h") | None => {
            eprintln!("{USAGE}");
            if argv.len() < 2 {
                2
            } else {
                0
            }
        }
        Some(other) => {
            eprintln!("apt: unknown subcommand `{other}` (only `serve` exists)\n\n{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

/// Parses one flag value with a typed error naming the flag.
fn parse_flag<T: FromStr>(flag: &str, value: &str) -> Result<T, CliError>
where
    T::Err: fmt::Display,
{
    value
        .parse::<T>()
        .map_err(|e| CliError::Usage(format!("bad value `{value}` for {flag}: {e}")))
}

/// Everything `apt serve` needs, parsed and validated.
struct ServeArgs {
    checkpoint: String,
    model: ModelArch,
    classes: usize,
    img_size: usize,
    width_mult: f32,
    addr: String,
    policy: BatchPolicy,
    limits: ConnLimits,
    threads: Option<usize>,
    stats_every: u64,
}

fn parse_serve_args(args: &[String]) -> Result<ServeArgs, CliError> {
    let mut checkpoint: Option<String> = None;
    let mut model: Option<ModelArch> = None;
    let mut out = ServeArgs {
        checkpoint: String::new(),
        model: ModelArch::Cifarnet,
        classes: 10,
        img_size: 12,
        width_mult: 0.25,
        addr: "127.0.0.1:7878".to_string(),
        policy: BatchPolicy::default(),
        limits: ConnLimits::default(),
        threads: None,
        stats_every: 10,
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--help" || flag == "-h" {
            eprintln!("{USAGE}");
            std::process::exit(0);
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| CliError::Usage(format!("missing value for {flag}")))?;
        match flag {
            "--checkpoint" => checkpoint = Some(value.clone()),
            "--model" => {
                model = Some(
                    value
                        .parse::<ModelArch>()
                        .map_err(|e| CliError::Usage(e.to_string()))?,
                )
            }
            "--classes" => out.classes = parse_flag(flag, value)?,
            "--img-size" => out.img_size = parse_flag(flag, value)?,
            "--width-mult" => out.width_mult = parse_flag(flag, value)?,
            "--addr" => out.addr = value.clone(),
            "--max-batch" => out.policy.max_batch = parse_flag(flag, value)?,
            "--max-delay-us" => {
                out.policy.max_delay = Duration::from_micros(parse_flag(flag, value)?)
            }
            "--queue-depth" => out.policy.queue_depth = parse_flag(flag, value)?,
            "--max-conns" => out.limits.max_connections = parse_flag(flag, value)?,
            "--idle-timeout-ms" => {
                out.limits.idle_timeout = Duration::from_millis(parse_flag(flag, value)?)
            }
            "--read-timeout-ms" => {
                out.limits.read_timeout = Duration::from_millis(parse_flag(flag, value)?)
            }
            "--request-timeout-ms" => {
                out.limits.request_timeout = Duration::from_millis(parse_flag(flag, value)?)
            }
            "--max-pipeline" => out.limits.max_pipeline = parse_flag(flag, value)?,
            "--threads" => {
                let n: usize = parse_flag(flag, value)?;
                if n == 0 {
                    return Err(CliError::Usage("--threads needs a value ≥ 1".into()));
                }
                out.threads = Some(n);
            }
            "--stats-every" => out.stats_every = parse_flag(flag, value)?,
            other => return Err(CliError::Usage(format!("unknown flag `{other}`"))),
        }
        i += 2;
    }
    out.checkpoint =
        checkpoint.ok_or_else(|| CliError::Usage("--checkpoint is required".into()))?;
    out.model = model.ok_or_else(|| CliError::Usage("--model is required".into()))?;
    out.policy
        .validate()
        .map_err(|e| CliError::Usage(e.to_string()))?;
    out.limits
        .validate()
        .map_err(|e| CliError::Usage(e.to_string()))?;
    Ok(out)
}

fn run_serve(args: &[String]) -> Result<(), CliError> {
    let a = parse_serve_args(args)?;
    if let Some(n) = a.threads {
        apt_tensor::par::set_global_threads(n);
    }

    let blob = std::fs::read(&a.checkpoint).map_err(|e| {
        CliError::Runtime(format!("cannot read checkpoint `{}`: {e}", a.checkpoint))
    })?;
    let spec = ModelSpec {
        arch: a.model.clone(),
        classes: a.classes,
        img_size: a.img_size,
        width_mult: a.width_mult,
    };
    let session = InferenceSession::from_checkpoint(&spec, &blob).map_err(|e| {
        CliError::Runtime(format!(
            "cannot load `{}` as {:?} (classes {}, img {}, width {}): {e}",
            a.checkpoint, a.model, a.classes, a.img_size, a.width_mult
        ))
    })?;

    let model_name = format!("{:?}", a.model);
    let config = ServerConfig {
        addr: a.addr.clone(),
        policy: a.policy.clone(),
        model_name: model_name.clone(),
        limits: a.limits.clone(),
    };
    let server = Server::start(session.clone(), config)
        .map_err(|e| CliError::Runtime(format!("cannot start server on `{}`: {e}", a.addr)))?;
    println!(
        "serving {model_name} ({} inputs → {} outputs, {} resident bytes) on {}",
        session.sample_len(),
        session.num_outputs(),
        session.network().resident_bytes(),
        server.addr()
    );
    println!(
        "policy: max_batch {}, max_delay {}µs, queue_depth {}",
        a.policy.max_batch,
        a.policy.max_delay.as_micros(),
        a.policy.queue_depth
    );
    println!(
        "limits: max_conns {}, idle {}ms, read {}ms, request {}ms, pipeline {}",
        a.limits.max_connections,
        a.limits.idle_timeout.as_millis(),
        a.limits.read_timeout.as_millis(),
        a.limits.request_timeout.as_millis(),
        a.limits.max_pipeline
    );

    // Foreground loop: the server runs on its own threads; this thread
    // periodically reports stats until the process is killed.
    loop {
        std::thread::sleep(Duration::from_secs(a.stats_every.max(1)));
        if a.stats_every > 0 {
            let s = server.stats();
            println!(
                "stats: {} ok / {} shed / {} expired / {} errors | p50 {}µs p90 {}µs p99 {}µs | mean batch {:.2} | conns {} open, {} refused, {} idle-reaped, {} slow-reaped",
                s.completed,
                s.shed,
                s.deadline_expired,
                s.errors,
                s.p50_us,
                s.p90_us,
                s.p99_us,
                s.mean_batch,
                s.open_conns,
                s.refused_accept,
                s.idle_reaped,
                s.slow_reaped
            );
        }
    }
}
