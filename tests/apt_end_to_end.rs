//! End-to-end integration of the full APT stack through the `apt` facade:
//! data generation → quantised model → Algorithm 2 training → report.

use apt::core::{PolicyConfig, TrainConfig, Trainer};
use apt::data::{SynthCifar, SynthCifarConfig};
use apt::nn::{models, QuantScheme};
use apt::optim::LrSchedule;
use apt::tensor::rng;

fn tiny_synth(seed: u64) -> SynthCifar {
    SynthCifar::generate(&SynthCifarConfig {
        num_classes: 4,
        train_per_class: 20,
        test_per_class: 8,
        img_size: 8,
        seed,
        ..Default::default()
    })
    .expect("dataset")
}

fn cfg(epochs: usize, policy: Option<PolicyConfig>) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 16,
        schedule: LrSchedule::paper_cifar10(epochs),
        policy,
        seed: 7,
        ..Default::default()
    }
}

#[test]
fn apt_learns_and_adapts_on_synth_cifar() {
    let data = tiny_synth(1);
    let net = models::cifarnet(4, 8, 0.25, &QuantScheme::paper_apt(), &mut rng::seeded(2))
        .expect("model");
    let mut trainer =
        Trainer::new(net, cfg(12, Some(PolicyConfig::paper_default()))).expect("trainer");
    let report = trainer.train(&data.train, &data.test).expect("train");

    // Learns well above 4-class chance.
    assert!(report.final_accuracy > 0.5, "acc={}", report.final_accuracy);
    // Starts at the paper's 6 bits and adapts upward somewhere.
    let first = &report.epochs[0];
    let last = report.epochs.last().unwrap();
    assert!(first.layer_bits.iter().all(|&(_, b)| b <= 7));
    let grew = last.layer_bits.iter().any(|&(_, b)| b > 6);
    assert!(
        grew,
        "at least one layer should gain precision: {:?}",
        last.layer_bits
    );
    // Gavg profile exists for every quantised weight layer.
    assert_eq!(last.gavg.len(), last.layer_bits.len());
    // Energy/memory accounting is live.
    assert!(report.total_energy_pj > 0.0);
    assert!(report.peak_memory_bits > 0);
}

#[test]
fn apt_saves_memory_and_energy_against_fp32() {
    let data = tiny_synth(3);
    let run = |scheme: &QuantScheme, policy| {
        let net = models::cifarnet(4, 8, 0.25, scheme, &mut rng::seeded(4)).expect("model");
        let mut t = Trainer::new(net, cfg(8, policy)).expect("trainer");
        t.train(&data.train, &data.test).expect("train")
    };
    let apt = run(
        &QuantScheme::paper_apt(),
        Some(PolicyConfig::paper_default()),
    );
    let fp32 = run(&QuantScheme::float32(), None);
    // The paper's headline: >50% savings on both axes with bounded loss.
    assert!(
        apt.peak_memory_bits * 2 < fp32.peak_memory_bits,
        "memory: apt={} fp32={}",
        apt.peak_memory_bits,
        fp32.peak_memory_bits
    );
    assert!(
        apt.total_energy_pj * 2.0 < fp32.total_energy_pj,
        "energy: apt={} fp32={}",
        apt.total_energy_pj,
        fp32.total_energy_pj
    );
}

#[test]
fn reports_are_bitwise_reproducible() {
    let data = tiny_synth(5);
    let run = || {
        let net = models::cifarnet(4, 8, 0.25, &QuantScheme::paper_apt(), &mut rng::seeded(6))
            .expect("model");
        let mut t =
            Trainer::new(net, cfg(5, Some(PolicyConfig::paper_default()))).expect("trainer");
        t.train(&data.train, &data.test).expect("train")
    };
    let (a, b) = (run(), run());
    assert_eq!(a.final_accuracy, b.final_accuracy);
    assert_eq!(a.total_energy_pj, b.total_energy_pj);
    for (ea, eb) in a.epochs.iter().zip(&b.epochs) {
        assert_eq!(ea.train_loss, eb.train_loss);
        assert_eq!(ea.layer_bits, eb.layer_bits);
        assert_eq!(ea.gavg, eb.gavg);
    }
}

#[test]
fn resnet_and_mobilenet_backbones_run_under_apt() {
    let data = tiny_synth(8);
    for (name, net) in [
        (
            "resnet20",
            models::resnet20(4, 0.25, &QuantScheme::paper_apt(), &mut rng::seeded(9))
                .expect("resnet"),
        ),
        (
            "mobilenet_v2",
            models::mobilenet_v2(4, 0.25, &QuantScheme::paper_apt(), &mut rng::seeded(10))
                .expect("mobilenet"),
        ),
    ] {
        let mut t =
            Trainer::new(net, cfg(3, Some(PolicyConfig::paper_default()))).expect("trainer");
        let report = t.train(&data.train, &data.test).expect(name);
        assert_eq!(report.epochs.len(), 3, "{name}");
        assert!(report.final_accuracy >= 0.0 && report.final_accuracy <= 1.0);
    }
}

#[test]
fn tmax_enables_precision_reduction() {
    // With a very low T_max every layer's Gavg exceeds it, so the policy
    // walks precision *down* toward the 2-bit floor.
    let data = tiny_synth(11);
    let net = models::mlp(
        "m",
        &[192, 16, 4],
        &QuantScheme::fixed(apt::quant::Bitwidth::new(12).unwrap()),
        &mut rng::seeded(12),
    )
    .expect("model");
    let policy = PolicyConfig::new(0.0, 1e-9).expect("policy");
    let mut t = Trainer::new(net, cfg(6, Some(policy))).expect("trainer");
    let report = t.train(&data.train, &data.test).expect("train");
    let first: u32 = report.epochs[0].layer_bits.iter().map(|&(_, b)| b).sum();
    let last: u32 = report
        .epochs
        .last()
        .unwrap()
        .layer_bits
        .iter()
        .map(|&(_, b)| b)
        .sum();
    assert!(
        last < first,
        "T_max should shed precision: {first} -> {last}"
    );
}
