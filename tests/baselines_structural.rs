//! Structural Table I assertions across all baseline arms: BPROP precision
//! labels, training-memory ordering, and that every comparator actually
//! trains through the shared machinery.

use apt::baselines::{run_baseline, BaselineSpec};
use apt::core::TrainConfig;
use apt::data::blobs;
use apt::nn::models;
use apt::optim::{LrSchedule, SgdConfig};
use apt::quant::Bitwidth;

fn toy() -> (apt::data::Dataset, apt::data::Dataset) {
    blobs(3, 30, 6, 0.35, 1)
        .unwrap()
        .split_shuffled(70, 2)
        .unwrap()
}

fn cfg() -> TrainConfig {
    TrainConfig {
        epochs: 6,
        batch_size: 16,
        schedule: LrSchedule::Constant(0.05),
        sgd: SgdConfig {
            momentum: 0.9,
            weight_decay: 0.0,
            ..Default::default()
        },
        augment: None,
        seed: 3,
        ..Default::default()
    }
}

fn all_arms() -> Vec<BaselineSpec> {
    vec![
        BaselineSpec::fp32(),
        BaselineSpec::fixed(Bitwidth::new(12).unwrap()),
        BaselineSpec::bnn(),
        BaselineSpec::twn(),
        BaselineSpec::ttq(),
        BaselineSpec::dorefa(Bitwidth::new(8).unwrap(), Bitwidth::new(8).unwrap()),
        BaselineSpec::terngrad(),
        BaselineSpec::wage(),
        BaselineSpec::apt(6.0, f64::INFINITY),
    ]
}

#[test]
fn memory_ordering_matches_table1_structure() {
    let (train, test) = toy();
    let mut mem = std::collections::HashMap::new();
    for spec in all_arms() {
        let r = run_baseline(
            &spec,
            |scheme, rng| models::mlp("m", &[6, 16, 3], scheme, rng),
            &train,
            &test,
            &cfg(),
            5,
        )
        .unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
        mem.insert(spec.name().to_string(), r.peak_memory_bits);
    }
    let fp32 = mem["fp32"];
    // Integer-codes arms save memory; master-copy arms cost extra.
    assert!(mem["apt"] < fp32);
    assert!(mem["12bit-fixed"] < fp32);
    assert!(mem["wage"] < fp32);
    for master in ["bnn", "twn", "ttq", "dorefa-w8g8"] {
        assert!(
            mem[master] > fp32,
            "{master} must exceed fp32: {} vs {fp32}",
            mem[master]
        );
    }
    // TernGrad quantises only gradients ⇒ same model memory as fp32.
    assert_eq!(mem["terngrad"], fp32);
    // WAGE (8-bit) is the smallest fixed footprint here except APT's start.
    assert!(mem["wage"] < mem["12bit-fixed"]);
}

#[test]
fn bprop_precision_labels() {
    let labels: std::collections::HashMap<_, _> = all_arms()
        .iter()
        .map(|s| (s.name().to_string(), s.bprop_precision()))
        .collect();
    for fp in ["fp32", "bnn", "twn", "ttq", "dorefa-w8g8", "terngrad"] {
        assert_eq!(labels[fp], "FP32", "{fp}");
    }
    assert_eq!(labels["wage"], "8-bit");
    assert_eq!(labels["12bit-fixed"], "12-bit");
    assert_eq!(labels["apt"], "Adaptive");
}

#[test]
fn shared_machinery_gives_identical_data_order() {
    // Two very different arms still consume identical batches: the fp32 and
    // APT training losses at epoch 0 start from the same forward data, so
    // their first-epoch losses are close (same init values up to 6-bit
    // rounding, same batches).
    let (train, test) = toy();
    let fp32 = run_baseline(
        &BaselineSpec::fp32(),
        |scheme, rng| models::mlp("m", &[6, 16, 3], scheme, rng),
        &train,
        &test,
        &cfg(),
        9,
    )
    .unwrap();
    let apt = run_baseline(
        &BaselineSpec::apt(6.0, f64::INFINITY),
        |scheme, rng| models::mlp("m", &[6, 16, 3], scheme, rng),
        &train,
        &test,
        &cfg(),
        9,
    )
    .unwrap();
    let (a, b) = (fp32.epochs[0].train_loss, apt.epochs[0].train_loss);
    assert!(
        (a - b).abs() < 0.5,
        "first-epoch losses too far apart: {a} vs {b}"
    );
}

#[test]
fn grad_quantised_arms_still_learn() {
    let (train, test) = toy();
    // TernGrad/DoReFa train with Adam at the conventional 1e-3 rate (their
    // papers' recipes), which needs a longer toy budget than SGD@0.05.
    for spec in [
        BaselineSpec::terngrad(),
        BaselineSpec::dorefa(Bitwidth::new(8).unwrap(), Bitwidth::new(8).unwrap()),
        BaselineSpec::wage(),
    ] {
        let mut c = cfg();
        c.epochs = 60;
        let r = run_baseline(
            &spec,
            |scheme, rng| models::mlp("m", &[6, 16, 3], scheme, rng),
            &train,
            &test,
            &c,
            7,
        )
        .unwrap();
        assert!(
            r.final_accuracy > 0.5,
            "{} should beat 3-class chance solidly: {}",
            spec.name(),
            r.final_accuracy
        );
    }
}
