//! Failure injection across the public API: malformed inputs must surface
//! as typed errors, never panics, on every library code path that returns
//! `Result`.

use apt::core::{PolicyConfig, TrainConfig, Trainer};
use apt::data::{Batcher, Dataset, SynthCifar, SynthCifarConfig};
use apt::nn::{models, Mode, ParamKind, QuantScheme};
use apt::optim::{Sgd, SgdConfig};
use apt::quant::{AffineQuantizer, Bitwidth, QuantizedTensor, RoundingMode};
use apt::tensor::{ops, rng, Tensor};

#[test]
fn non_finite_inputs_are_rejected_not_propagated() {
    // Quantiser calibration.
    assert!(AffineQuantizer::from_range(f32::NAN, 1.0, Bitwidth::default()).is_err());
    assert!(AffineQuantizer::from_range(0.0, f32::INFINITY, Bitwidth::default()).is_err());
    // Quantised update with NaN gradient.
    let w = Tensor::from_slice(&[0.0, 1.0]);
    let mut q = QuantizedTensor::from_tensor(&w, Bitwidth::default()).unwrap();
    let mut bad = Tensor::from_slice(&[1.0, 1.0]);
    bad.data_mut()[1] = f32::NAN;
    assert!(q
        .sgd_update(&bad, 0.1, RoundingMode::Truncate, &mut rng::seeded(0))
        .is_err());
    // NaN gradient through the optimiser.
    let mut net =
        models::mlp("m", &[2, 2], &QuantScheme::paper_apt(), &mut rng::seeded(1)).unwrap();
    net.visit_params(&mut |p| {
        if p.kind() == ParamKind::Weight {
            p.grad_mut().data_mut()[0] = f32::INFINITY;
        }
    });
    let mut sgd = Sgd::new(
        SgdConfig {
            momentum: 0.0,
            ..Default::default()
        },
        0,
    );
    assert!(sgd.step(&mut net, 0.1).is_err());
}

#[test]
fn empty_and_degenerate_datasets() {
    let empty = Dataset::new(vec![], vec![], 2).unwrap();
    assert!(empty.is_empty());
    // Trainer refuses an empty training split.
    let net = models::mlp("m", &[2, 2], &QuantScheme::float32(), &mut rng::seeded(2)).unwrap();
    let mut t = Trainer::new(
        net,
        TrainConfig {
            epochs: 1,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(t.train(&empty, &empty).is_err());
    // Evaluation of an empty set is defined (0.0), not a crash.
    let net = models::mlp("m", &[2, 2], &QuantScheme::float32(), &mut rng::seeded(2)).unwrap();
    let mut t = Trainer::new(
        net,
        TrainConfig {
            epochs: 1,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(t.evaluate(&empty).unwrap(), 0.0);
    // Degenerate single-value weight tensors still quantise (ε floor).
    let constant = Tensor::full(&[16], 3.0);
    let q = QuantizedTensor::from_tensor(&constant, Bitwidth::default()).unwrap();
    assert!(q.eps() > 0.0);
}

#[test]
fn config_validation_everywhere() {
    // Dataset configs.
    assert!(SynthCifar::generate(&SynthCifarConfig {
        num_classes: 0,
        ..Default::default()
    })
    .is_err());
    assert!(Batcher::new(0, None, 1).is_err());
    // Policy configs.
    assert!(PolicyConfig::new(5.0, 1.0).is_err());
    assert!(PolicyConfig::new(f64::NAN, 1.0).is_err());
    // Bitwidths.
    assert!(Bitwidth::new(1).is_err());
    assert!(Bitwidth::new(33).is_err());
    // Model configs.
    assert!(models::resnet(13, 10, 1.0, &QuantScheme::float32(), &mut rng::seeded(0)).is_err());
    assert!(models::cifarnet(10, 13, 1.0, &QuantScheme::float32(), &mut rng::seeded(0)).is_err());
    assert!(models::mlp("m", &[4], &QuantScheme::float32(), &mut rng::seeded(0)).is_err());
    // Trainer configs.
    let net = models::mlp("m", &[2, 2], &QuantScheme::float32(), &mut rng::seeded(0)).unwrap();
    assert!(Trainer::new(
        net,
        TrainConfig {
            epochs: 0,
            ..Default::default()
        }
    )
    .is_err());
    let net = models::mlp("m", &[2, 2], &QuantScheme::float32(), &mut rng::seeded(0)).unwrap();
    assert!(Trainer::new(
        net,
        TrainConfig {
            ema_alpha: 2.0,
            ..Default::default()
        }
    )
    .is_err());
}

#[test]
fn shape_mismatches_surface_as_errors() {
    let mut net =
        models::cifarnet(4, 8, 0.25, &QuantScheme::float32(), &mut rng::seeded(3)).unwrap();
    // Wrong channel count.
    assert!(net
        .forward(&Tensor::zeros(&[1, 1, 8, 8]), Mode::Train)
        .is_err());
    // Wrong rank.
    assert!(net.forward(&Tensor::zeros(&[8, 8]), Mode::Train).is_err());
    // Backward before forward.
    let mut fresh =
        models::cifarnet(4, 8, 0.25, &QuantScheme::float32(), &mut rng::seeded(3)).unwrap();
    assert!(fresh.backward(&Tensor::zeros(&[1, 4])).is_err());
    // Tensor-level mismatches.
    assert!(ops::add(&Tensor::zeros(&[2]), &Tensor::zeros(&[3])).is_err());
    assert!(ops::matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[2, 3])).is_err());
}

#[test]
fn errors_format_and_chain() {
    // Every public error type renders and exposes sources where wrapped.
    let e = models::mlp("m", &[1], &QuantScheme::float32(), &mut rng::seeded(0)).unwrap_err();
    assert!(!e.to_string().is_empty());
    let e = SynthCifar::generate(&SynthCifarConfig {
        num_classes: 0,
        ..Default::default()
    })
    .unwrap_err();
    assert!(!e.to_string().is_empty());
    let e = Bitwidth::new(99).unwrap_err();
    assert!(e.to_string().contains("99"));
}
