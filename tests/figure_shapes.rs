//! Micro-scale checks of the *shapes* each paper figure claims, run fast
//! enough for CI. The full-size regenerations live in `apt-bench`'s
//! binaries; these tests pin the qualitative behaviour.

use apt::baselines::{run_baseline, BaselineSpec};
use apt::core::TrainConfig;
use apt::data::{SynthCifar, SynthCifarConfig};
use apt::nn::models;
use apt::optim::{LrSchedule, SgdConfig};

fn data() -> SynthCifar {
    SynthCifar::generate(&SynthCifarConfig {
        num_classes: 4,
        train_per_class: 24,
        test_per_class: 8,
        img_size: 8,
        seed: 17,
        ..Default::default()
    })
    .unwrap()
}

fn cfg(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 16,
        schedule: LrSchedule::paper_cifar10(epochs),
        sgd: SgdConfig::default(),
        seed: 19,
        ..Default::default()
    }
}

fn run(spec: &BaselineSpec, d: &SynthCifar, epochs: usize) -> apt::core::TrainReport {
    run_baseline(
        spec,
        |scheme, rng| models::cifarnet(4, 8, 0.25, scheme, rng),
        &d.train,
        &d.test,
        &cfg(epochs),
        23,
    )
    .unwrap()
}

#[test]
fn fig1_shape_policy_lifts_gavg_starved_layers() {
    // Under APT every layer that dips below T_min gains bits the next
    // epoch (Algorithm 1) — check the recorded changes agree.
    let d = data();
    let report = run(&BaselineSpec::apt(1.0, f64::INFINITY), &d, 8);
    let mut starved_then_raised = 0;
    for e in &report.epochs {
        for c in &e.changes {
            assert!(c.gavg < 1.0, "only starving layers change: gavg={}", c.gavg);
            assert_eq!(c.to.get(), c.from.get() + 1);
            starved_then_raised += 1;
        }
    }
    assert!(
        starved_then_raised > 0,
        "some layer must have starved in 8 epochs"
    );
}

#[test]
fn fig2_shape_apt_beats_a_stalled_low_bit_arm() {
    let d = data();
    let low = run(
        &BaselineSpec::fixed(apt::quant::Bitwidth::new(4).unwrap()),
        &d,
        10,
    );
    let apt = run(&BaselineSpec::apt(6.0, f64::INFINITY), &d, 10);
    assert!(
        apt.best_accuracy >= low.best_accuracy,
        "apt={} low={}",
        apt.best_accuracy,
        low.best_accuracy
    );
}

#[test]
fn fig4_shape_energy_to_unreachable_target_is_absent() {
    let d = data();
    let r = run(
        &BaselineSpec::fixed(apt::quant::Bitwidth::new(4).unwrap()),
        &d,
        6,
    );
    assert_eq!(r.energy_to_accuracy(1.01), None, "no arm reaches >100%");
    let reachable = r.energy_to_accuracy(0.0);
    assert!(reachable.is_some());
}

#[test]
fn fig5_shape_tmin_monotone_in_memory_and_energy() {
    // Higher T_min can only request ≥ precision at each decision point, so
    // at equal seeds/epochs memory and energy are non-decreasing in T_min.
    let d = data();
    let lo = run(&BaselineSpec::apt(0.1, f64::INFINITY), &d, 8);
    let hi = run(&BaselineSpec::apt(50.0, f64::INFINITY), &d, 8);
    assert!(
        hi.peak_memory_bits >= lo.peak_memory_bits,
        "memory: hi={} lo={}",
        hi.peak_memory_bits,
        lo.peak_memory_bits
    );
    assert!(
        hi.total_energy_pj >= lo.total_energy_pj,
        "energy: hi={} lo={}",
        hi.total_energy_pj,
        lo.total_energy_pj
    );
}

#[test]
fn table1_shape_apt_memory_below_fp32_with_sgd() {
    let d = data();
    let fp32 = run(&BaselineSpec::fp32(), &d, 6);
    let apt = run(&BaselineSpec::apt(6.0, f64::INFINITY), &d, 6);
    assert!(apt.peak_memory_bits < fp32.peak_memory_bits);
    // And the label row matches the paper's table.
    assert_eq!(
        BaselineSpec::apt(6.0, f64::INFINITY).bprop_precision(),
        "Adaptive"
    );
}
