//! End-to-end checks of the per-channel calibration ablation through the
//! public facade: training, APT adaptation, energy/memory accounting and
//! checkpoint roundtrip all work with per-channel stores.

use apt::core::{PolicyConfig, TrainConfig, Trainer};
use apt::data::blobs;
use apt::nn::{checkpoint, models, Mode, ParamKind, QuantScheme};
use apt::optim::{LrSchedule, SgdConfig};
use apt::quant::Bitwidth;
use apt::tensor::rng::seeded;

fn toy() -> (apt::data::Dataset, apt::data::Dataset) {
    blobs(3, 40, 6, 0.35, 21)
        .unwrap()
        .split_shuffled(90, 22)
        .unwrap()
}

fn cfg(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 16,
        schedule: LrSchedule::Constant(0.05),
        sgd: SgdConfig {
            momentum: 0.9,
            weight_decay: 0.0,
            ..Default::default()
        },
        augment: None,
        seed: 23,
        ..Default::default()
    }
}

#[test]
fn per_channel_network_trains_and_adapts() {
    let (train, test) = toy();
    let scheme = QuantScheme::per_channel(Bitwidth::new(4).unwrap());
    let net = models::mlp("m", &[6, 16, 3], &scheme, &mut seeded(1)).unwrap();
    let mut c = cfg(12);
    c.policy = Some(PolicyConfig::paper_default());
    let mut t = Trainer::new(net, c).unwrap();
    let r = t.train(&train, &test).unwrap();
    assert!(r.final_accuracy > 0.6, "acc={}", r.final_accuracy);
    // Per-channel stores are profiled and adapted by Algorithm 1 too.
    assert!(!r.epochs.last().unwrap().gavg.is_empty());
    let grew = r
        .epochs
        .last()
        .unwrap()
        .layer_bits
        .iter()
        .any(|&(_, b)| b > 4);
    assert!(
        grew,
        "policy should adapt per-channel bits: {:?}",
        r.epochs.last().unwrap().layer_bits
    );
}

#[test]
fn per_channel_memory_includes_calibration_overhead() {
    let scheme_pc = QuantScheme::per_channel(Bitwidth::new(6).unwrap());
    let scheme_pt = QuantScheme::paper_apt();
    let pc = models::mlp("m", &[6, 16, 3], &scheme_pc, &mut seeded(2)).unwrap();
    let pt = models::mlp("m", &[6, 16, 3], &scheme_pt, &mut seeded(2)).unwrap();
    // Same code bits; per-channel pays one (S, Z) pair per output row.
    assert!(pc.memory_bits() > pt.memory_bits());
    assert!(pc.memory_bits() < pt.memory_bits() + 96 * (16 + 3) + 1);
}

#[test]
fn per_channel_checkpoint_roundtrips_bit_exactly() {
    let scheme = QuantScheme::per_channel(Bitwidth::new(5).unwrap());
    let mut net = models::cifarnet(4, 8, 0.25, &scheme, &mut seeded(3)).unwrap();
    let x = apt::tensor::rng::normal(&[2, 3, 8, 8], 1.0, &mut seeded(4));
    let _ = net.forward(&x, Mode::Train).unwrap();
    let expected = net.forward(&x, Mode::Eval).unwrap();
    let blob = checkpoint::save_full(&mut net);
    let mut fresh = models::cifarnet(4, 8, 0.25, &scheme, &mut seeded(99)).unwrap();
    checkpoint::load(&mut fresh, &blob).unwrap();
    let got = fresh.forward(&x, Mode::Eval).unwrap();
    assert_eq!(got.data(), expected.data());
}

#[test]
fn per_channel_weights_have_channelwise_levels() {
    // Each output row of a 3-bit per-channel weight has ≤ 8 distinct
    // values, but the rows use *different* grids.
    let scheme = QuantScheme::per_channel(Bitwidth::new(3).unwrap());
    let net = models::mlp("m", &[32, 8, 3], &scheme, &mut seeded(5)).unwrap();
    net.visit_params_ref(&mut |p| {
        if p.kind() != ParamKind::Weight || p.dims()[0] < 2 {
            return;
        }
        let v = p.value();
        let cols = v.len() / v.dims()[0];
        let mut row_grids = Vec::new();
        for row in 0..v.dims()[0] {
            let mut levels: Vec<i64> = v.data()[row * cols..(row + 1) * cols]
                .iter()
                .map(|&x| (x * 1e6) as i64)
                .collect();
            levels.sort_unstable();
            levels.dedup();
            assert!(
                levels.len() <= 8,
                "{}: row {row} has {} levels",
                p.name(),
                levels.len()
            );
            row_grids.push(levels);
        }
        assert!(
            row_grids.windows(2).any(|w| w[0] != w[1]),
            "{}: rows should have distinct grids",
            p.name()
        );
    });
}
