//! Property test for the interruption-tolerant runtime: killing a run at a
//! random step and resuming from its newest on-disk checkpoint must be
//! invisible — the resumed run's report *and* final weights are bit-exact
//! copies of an uninterrupted run with the same seed.

use apt::core::faults::PowerCut;
use apt::core::{CheckpointConfig, CoreError, TrainConfig, TrainReport, Trainer};
use apt::data::{blobs, Dataset};
use apt::nn::{checkpoint, models, Network, QuantScheme};
use apt::optim::LrSchedule;
use apt::tensor::rng;
use proptest::prelude::*;
use std::path::PathBuf;

fn data() -> (Dataset, Dataset) {
    let all = blobs(3, 40, 6, 0.4, 2).unwrap();
    all.split_shuffled(90, 7).unwrap()
}

fn net(seed: u64) -> Network {
    models::mlp(
        "m",
        &[6, 16, 3],
        &QuantScheme::paper_apt(),
        &mut rng::seeded(seed),
    )
    .unwrap()
}

fn cfg(seed: u64, dir: Option<PathBuf>) -> TrainConfig {
    TrainConfig {
        epochs: 3,
        batch_size: 16,
        schedule: LrSchedule::Constant(0.05),
        augment: None,
        interval: 2,
        seed,
        checkpoint: dir.map(|d| CheckpointConfig {
            dir: d,
            every: 2,
            keep: 3,
        }),
        ..Default::default()
    }
}

/// Trains uninterrupted and returns the report plus the final weight blob.
fn uninterrupted(seed: u64) -> (TrainReport, Vec<u8>) {
    let (train, test) = data();
    let mut t = Trainer::new(net(seed), cfg(seed, None)).unwrap();
    let report = t.train(&train, &test).unwrap();
    let blob = checkpoint::save_full(t.network_mut());
    (report, blob)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // 3 epochs × 6 batches = 18 steps; kill anywhere in the run, including
    // step 0 (before the first checkpoint ever lands on disk).
    #[test]
    fn kill_and_resume_reproduces_the_uninterrupted_run(
        seed in 0u64..64,
        kill_at in 0u64..18,
    ) {
        let (reference, ref_blob) = uninterrupted(seed);
        let (train, test) = data();
        let dir = std::env::temp_dir().join(format!(
            "apt-resume-prop-{}-{seed}-{kill_at}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let wired = cfg(seed, Some(dir.clone()));

        let mut t = Trainer::new(net(seed), wired.clone()).unwrap();
        let err = t
            .train_with_hooks(&train, &test, &mut PowerCut::after(kill_at))
            .unwrap_err();
        prop_assert!(matches!(err, CoreError::Interrupted { .. }), "{err:?}");

        let mut resumed = Trainer::new(net(seed), wired).unwrap();
        let report = resumed.resume_from_dir(&train, &test).unwrap();
        prop_assert_eq!(&report, &reference, "report diverged");
        let blob = checkpoint::save_full(resumed.network_mut());
        prop_assert_eq!(blob, ref_blob, "final weights diverged");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
