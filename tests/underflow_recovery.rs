//! The paper's core phenomenon, §III-A: quantisation underflow freezes
//! low-precision layers ("driving the training into a dead state"), and
//! APT's Gavg-driven policy is exactly the escape hatch.

use apt::core::{GradQuant, PolicyConfig, TrainConfig, Trainer};
use apt::data::blobs;
use apt::nn::{models, ParamKind, QuantScheme};
use apt::optim::{LrSchedule, SgdConfig};
use apt::quant::{Bitwidth, QuantizedTensor, RoundingMode};
use apt::tensor::{rng, Tensor};

#[test]
fn eq3_underflow_threshold_is_exactly_eps() {
    // Updates of magnitude just below ε vanish; just above ε land.
    let w = Tensor::from_slice(&[-1.0, 0.0, 0.25, 1.0]);
    let mut q = QuantizedTensor::from_tensor(&w, Bitwidth::new(5).unwrap()).unwrap();
    let eps = q.eps();
    let below = Tensor::full(&[4], 0.99 * eps);
    let above = Tensor::from_slice(&[0.0, 1.01 * eps, 1.01 * eps, 1.01 * eps]);
    let s1 = q
        .sgd_update(&below, 1.0, RoundingMode::Truncate, &mut rng::seeded(0))
        .unwrap();
    assert_eq!(s1.underflowed, 4);
    let s2 = q
        .sgd_update(&above, 1.0, RoundingMode::Truncate, &mut rng::seeded(0))
        .unwrap();
    assert_eq!(s2.underflowed, 0);
}

fn stall_setup(policy: Option<PolicyConfig>) -> apt::core::TrainReport {
    // 2-bit weights: ε is enormous, almost every update underflows — the
    // paper's "dead state". Identical everything except the policy.
    let (train, test) = blobs(3, 40, 6, 0.3, 3)
        .unwrap()
        .split_shuffled(90, 4)
        .unwrap();
    let scheme = QuantScheme::fixed(Bitwidth::MIN);
    let net = models::mlp("m", &[6, 16, 3], &scheme, &mut rng::seeded(1)).unwrap();
    let cfg = TrainConfig {
        epochs: 14,
        batch_size: 16,
        schedule: LrSchedule::Constant(0.05),
        sgd: SgdConfig {
            momentum: 0.9,
            weight_decay: 0.0,
            ..Default::default()
        },
        policy,
        augment: None,
        grad_quant: GradQuant::None,
        seed: 6,
        ..Default::default()
    };
    let mut t = Trainer::new(net, cfg).unwrap();
    t.train(&train, &test).unwrap()
}

#[test]
fn two_bit_training_stalls_but_apt_escapes() {
    let stalled = stall_setup(None);
    let rescued = stall_setup(Some(PolicyConfig::paper_default()));

    // The fixed 2-bit arm underflows massively and stays near chance.
    let stalled_underflow: f64 =
        stalled.epochs.iter().map(|e| e.underflow_rate).sum::<f64>() / stalled.epochs.len() as f64;
    assert!(stalled_underflow > 0.5, "underflow={stalled_underflow}");

    // APT detects the starvation (Gavg < T_min) and raises precision...
    let last = rescued.epochs.last().unwrap();
    assert!(
        last.layer_bits.iter().all(|&(_, b)| b > 2),
        "bits={:?}",
        last.layer_bits
    );
    // ...and converts that into real accuracy.
    assert!(
        rescued.final_accuracy > stalled.final_accuracy + 0.15,
        "rescued={} stalled={}",
        rescued.final_accuracy,
        stalled.final_accuracy
    );
}

#[test]
fn gavg_collapse_precedes_the_stall() {
    // In the stalled arm the recorded Gavg should sit below the paper's
    // T_min = 6 threshold — the signal APT keys on.
    let stalled = stall_setup(None);
    let last = stalled.epochs.last().unwrap();
    assert!(!last.gavg.is_empty());
    let min_gavg = last
        .gavg
        .iter()
        .map(|&(_, g)| g)
        .fold(f64::INFINITY, f64::min);
    assert!(min_gavg < 6.0, "min gavg = {min_gavg}");
}

#[test]
fn frozen_layers_have_zero_effective_updates() {
    // Direct check of §III-A: with 2-bit weights and realistic gradient
    // scales, the weight tensor does not move at all.
    let mut net = models::mlp(
        "m",
        &[6, 8, 3],
        &QuantScheme::fixed(Bitwidth::MIN),
        &mut rng::seeded(1),
    )
    .unwrap();
    let before: Vec<Tensor> = {
        let mut v = Vec::new();
        net.visit_params_ref(&mut |p| {
            if p.kind() == ParamKind::Weight {
                v.push(p.value());
            }
        });
        v
    };
    // One training step with small gradients.
    let x = rng::normal(&[4, 6], 1.0, &mut rng::seeded(2));
    let y = net.forward(&x, apt::nn::Mode::Train).unwrap();
    let grad = Tensor::full(y.dims(), 1e-4);
    net.backward(&grad).unwrap();
    let mut sgd = apt::optim::Sgd::new(
        SgdConfig {
            momentum: 0.0,
            weight_decay: 0.0,
            ..Default::default()
        },
        0,
    );
    let stats = sgd.step(&mut net, 0.01).unwrap();
    // Every non-zero-gradient element underflows (exactly-zero gradients —
    // dead ReLU paths — are not counted as underflow by definition).
    assert!(stats.underflowed > 0);
    assert!(stats.underflowed <= stats.quantized_total);
    let mut i = 0;
    net.visit_params_ref(&mut |p| {
        if p.kind() == ParamKind::Weight {
            assert_eq!(p.value().data(), before[i].data(), "weights must be frozen");
            i += 1;
        }
    });
}
