//! Offline stand-in for the `criterion` crate covering the API surface this
//! workspace's benches use: `Criterion::default()` with the
//! `sample_size`/`warm_up_time`/`measurement_time` builders,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId::from_parameter`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery, each benchmark runs its
//! closure `sample_size` times and prints the mean wall-clock time — a
//! smoke-level timing that keeps `cargo bench` (and, more importantly,
//! `cargo test --benches`, which compiles benches with `harness = false`)
//! working in a build environment with no registry access. Wired in via
//! `[patch.crates-io]`.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Entry point mirroring upstream's `Criterion` manager.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up budget (used here as an upper bound on warm-up
    /// iterations' total time).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Accepted for API compatibility; this stub always runs exactly
    /// `sample_size` iterations rather than filling a time budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(self, id, f);
        self
    }

    fn final_summary(&self) {
        // Upstream prints an overall summary; nothing to aggregate here.
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(c: &Criterion, id: &str, mut f: F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(c.sample_size),
        sample_size: c.sample_size,
        warm_up_time: c.warm_up_time,
    };
    f(&mut b);
    let total: Duration = b.samples.iter().sum();
    let mean = total.checked_div(b.samples.len().max(1) as u32).unwrap_or_default();
    println!("{id:<40} mean {mean:>12.2?}  ({} samples)", b.samples.len());
}

/// A named group of benchmarks (subset of upstream's `BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_bench(self.criterion, &full, f);
        self
    }

    /// Runs one parameterised benchmark in this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.0);
        run_bench(self.criterion, &full, |b| f(b, input));
        self
    }

    /// Ends the group (upstream finalises reports here; a no-op in the
    /// stub, kept so callers' `g.finish()` lines compile unchanged).
    pub fn finish(&mut self) {}
}

/// Identifier for a parameterised benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id that is just the parameter's `Display` form.
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// An id combining a function name and a parameter.
    pub fn new(name: impl Display, p: impl Display) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
}

impl Bencher {
    /// Times `routine`: a bounded warm-up, then `sample_size` timed runs.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_start = Instant::now();
        for _ in 0..3 {
            black_box(routine());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }
}

/// Opaque value barrier discouraging the optimiser from deleting the
/// benchmarked computation (best-effort without intrinsics).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions with a `Criterion` configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        }
    };
}

/// Generates `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
            $crate::Criterion::default().final_summary_public();
        }
    };
}

impl Criterion {
    /// Public hook used by [`criterion_main!`]; mirrors upstream's final
    /// summary step.
    pub fn final_summary_public(&self) {
        self.final_summary();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut counter = 0u32;
        let mut c = Criterion::default().sample_size(4);
        c.bench_function("count", |b| b.iter(|| counter += 1));
        // 3 warm-up (bounded by time, at most 3) + 4 timed runs.
        assert!(counter >= 4);
    }

    #[test]
    fn group_runs_parameterised() {
        let mut hits = Vec::new();
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("grp");
        for p in [1u32, 2] {
            g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
                b.iter(|| hits.push(p))
            });
        }
        g.finish();
        assert!(hits.contains(&1) && hits.contains(&2));
    }
}
