//! Offline stand-in for the `proptest` crate covering the API surface this
//! workspace's property tests use: the `proptest!` macro, `prop_assert*`,
//! `prop_assume`, range and `prop::collection::vec` strategies, `prop_map`,
//! `any::<bool>()` and `ProptestConfig::with_cases`.
//!
//! Sampling is deterministic (per-case SplitMix64 streams) and there is no
//! shrinking: a failing case panics with its case index and message, which
//! is enough signal for this repository's CI. The workspace vendors this
//! via `[patch.crates-io]` because the build environment has no registry
//! access.

#![forbid(unsafe_code)]

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of one type (subset of upstream's
    /// `Strategy`; here a strategy samples directly instead of producing a
    /// value tree, so there is no shrinking).
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    let span = (hi - lo).max(1) as u128;
                    (lo + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let lo = *self.start() as i128;
                    let hi = *self.end() as i128;
                    let span = (hi - lo + 1).max(1) as u128;
                    (lo + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    self.start + rng.unit_f64() as $t * (self.end - self.start)
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    self.start() + rng.unit_f64() as $t * (self.end() - self.start())
                }
            }
        )*};
    }
    impl_float_range!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),*) => {
            impl<$($name: Strategy),*> Strategy for ($($name,)*) {
                type Value = ($($name::Value,)*);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)*) = self;
                    ($($name.sample(rng),)*)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    /// Strategy for a constant value (upstream's `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Vec`s of `element` with length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Default-strategy lookup for `any::<T>()`.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy (subset of upstream's `Arbitrary`).
    pub trait Arbitrary: Sized {
        /// The canonical strategy for the type.
        type Strategy: Strategy<Value = Self>;
        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Canonical `bool` strategy: a fair coin.
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }
}

/// The canonical strategy for `T`.
pub fn any<T: arbitrary::Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Test-runner plumbing used by the generated tests.
pub mod test_runner {
    /// Per-test configuration (subset of upstream's `ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    impl TestCaseError {
        /// An assertion failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// An input rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Deterministic SplitMix64 stream feeding the strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Stream for one (property, case) pair.
        pub fn for_case(case: u64) -> Self {
            TestRng {
                state: 0xA076_1D64_78BD_642F ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform f64 in [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident
        ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..u64::from(config.cases) {
                    let mut __rng = $crate::test_runner::TestRng::for_case(case);
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject(_)) => continue,
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("property failed at case {case}: {msg}");
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::any;
    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u32..10, y in -1.0f32..1.0, b in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
            prop_assert!(b || !b);
        }

        #[test]
        fn vec_and_map_compose(v in prop::collection::vec(0u64..5, 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn prop_map_transforms() {
        use crate::strategy::Strategy;
        let s = (1u32..4).prop_map(|x| x * 10);
        let mut rng = crate::test_runner::TestRng::for_case(0);
        for _ in 0..50 {
            let v = s.sample(&mut rng);
            assert!(v == 10 || v == 20 || v == 30);
        }
    }
}
