//! Offline stand-in for the `rand` crate covering exactly the API surface
//! this workspace uses: [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`] and the concrete
//! [`rngs::StdRng`] generator.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal implementation via `[patch.crates-io]`. Streams are
//! deterministic (xoshiro256++ seeded through SplitMix64) which is the only
//! property the reproduction relies on — every experiment seeds its own
//! generator and compares runs against other runs of the same binary, never
//! against upstream `rand`'s bit streams.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random-number source: a stream of `u64`s (subset of upstream's
/// `RngCore`).
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset of upstream's `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, expanding it to the full
    /// internal state deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

mod sample {
    use super::RngCore;

    /// Uniform f64 in [0, 1) from 53 random bits.
    pub fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform f32 in [0, 1) from 24 random bits.
    pub fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types samplable from the "standard" distribution (`Rng::gen`): uniform
/// bits for integers, `[0, 1)` for floats, fair coin for `bool`.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        sample::unit_f64(rng)
    }
}
impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        sample::unit_f32(rng)
    }
}
impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with uniform range sampling (subset of upstream's
/// `SampleUniform`).
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`; `inclusive` widens to `[lo, hi]`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
        -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = (hi_w - lo_w + if inclusive { 1 } else { 0 }).max(1) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo_w + draw as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($t:ty, $unit:path) => {
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                lo + $unit(rng) * (hi - lo)
            }
        }
    };
}
impl_uniform_float!(f64, sample::unit_f64);
impl_uniform_float!(f32, sample::unit_f32);

/// Range arguments accepted by [`Rng::gen_range`] (subset of upstream's
/// `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// User-facing generator methods (subset of upstream's `Rng`).
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        sample::unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for upstream's
    /// ChaCha12-based `StdRng`; same API, different — but still
    /// deterministic — stream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, as recommended by the xoshiro
            // authors (and what upstream does for small seeds).
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(3u32..7);
            assert!((3..7).contains(&x));
            let y = r.gen_range(-2i64..=2);
            assert!((-2..=2).contains(&y));
            let f = r.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = r.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }
}
